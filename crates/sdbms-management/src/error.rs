//! Error type for the Management Database.

use std::fmt;

use sdbms_data::DataError;

/// Errors raised by the Management Database.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagementError {
    /// No view with this name in the catalog.
    NoSuchView(String),
    /// A view with this name already exists.
    ViewExists(String),
    /// A rollback target version does not exist in the history.
    NoSuchVersion {
        /// The requested version.
        version: u64,
        /// The current (latest) version.
        current: u64,
    },
    /// No rule registered for this derived attribute.
    NoSuchRule {
        /// View name.
        view: String,
        /// Attribute name.
        attribute: String,
    },
    /// The aggregate expression contains a subterm with no incremental
    /// form (§4.2: "it is not clear … whether finite differencing can
    /// be applied to more complicated functions such as median").
    NotDifferentiable(&'static str),
    /// Underlying data-model failure.
    Data(DataError),
}

impl fmt::Display for ManagementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagementError::NoSuchView(name) => write!(f, "no view named {name:?}"),
            ManagementError::ViewExists(name) => write!(f, "view {name:?} already exists"),
            ManagementError::NoSuchVersion { version, current } => {
                write!(f, "no version {version} (history is at {current})")
            }
            ManagementError::NoSuchRule { view, attribute } => {
                write!(
                    f,
                    "no rule for derived attribute {attribute:?} of view {view:?}"
                )
            }
            ManagementError::NotDifferentiable(what) => {
                write!(f, "no incremental form: {what}")
            }
            ManagementError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for ManagementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ManagementError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for ManagementError {
    fn from(e: DataError) -> Self {
        ManagementError::Data(e)
    }
}

/// Convenient result alias for Management Database operations.
pub type Result<T> = std::result::Result<T, ManagementError>;
