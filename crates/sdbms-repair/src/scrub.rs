//! Background scrubbing: cursor state, durable cursor storage, and the
//! report/finding types the scrubber produces.
//!
//! The scrub walk itself lives in `sdbms-core` (it needs the whole
//! `StatDbms` — views, caches, catalog); this module owns the pieces
//! that don't: the **cursor** describing where a paused scrub resumes,
//! a **durable cursor store** (one disk page written directly through
//! the `DiskManager`, same protocol as the summary intent log, so the
//! cursor survives crashes and restarts), and the **findings** a pass
//! reports.
//!
//! A scrub runs on a cooperative budget counted in pages/entries
//! verified. Exhausting the budget persists the cursor and returns;
//! the next call picks up where this one stopped. All scrub I/O goes
//! through the environment's `DiskManager`, so it is charged to the
//! shared cost tracker like any other work.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use sdbms_storage::{DiskManager, Page, PageId, Result, StorageError, PAGE_SIZE};

use crate::triage::Component;

/// Magic marking a valid scrub-cursor page ("SCR1").
const MAGIC: u32 = 0x5343_5231;

/// Which class of pages the scrubber is currently walking within a
/// view. Ordered: data pages, then zone-map pages, then Summary-DB
/// entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubPhase {
    /// Table-store data pages.
    Data,
    /// Persisted zone-map pages.
    Zones,
    /// Summary-DB entries (checksum via read + sampled recompute).
    Summary,
}

impl ScrubPhase {
    fn to_byte(self) -> u8 {
        match self {
            ScrubPhase::Data => 0,
            ScrubPhase::Zones => 1,
            ScrubPhase::Summary => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ScrubPhase::Data),
            1 => Some(ScrubPhase::Zones),
            2 => Some(ScrubPhase::Summary),
            _ => None,
        }
    }
}

impl fmt::Display for ScrubPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScrubPhase::Data => "data",
            ScrubPhase::Zones => "zones",
            ScrubPhase::Summary => "summary",
        })
    }
}

/// Resume point of a paused scrub: the view being walked (`None`
/// before the first view / after a completed cycle), the phase within
/// it, and the index of the next page/entry to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubCursor {
    /// View currently being scrubbed, `None` at cycle start.
    pub view: Option<String>,
    /// Phase within that view.
    pub phase: ScrubPhase,
    /// Next page/entry index within the phase.
    pub index: u64,
}

impl Default for ScrubCursor {
    fn default() -> Self {
        Self::start()
    }
}

impl ScrubCursor {
    /// Cursor at the beginning of a fresh cycle.
    #[must_use]
    pub fn start() -> Self {
        ScrubCursor {
            view: None,
            phase: ScrubPhase::Data,
            index: 0,
        }
    }
}

/// Durable storage for a [`ScrubCursor`]: one disk page written
/// directly through the [`DiskManager`] (bypassing the buffer pool),
/// so a saved cursor survives crashes exactly like a WAL intent. The
/// page relocates if its disk block suffers permanent media damage.
pub struct CursorStore {
    disk: Arc<DiskManager>,
    page: Cell<PageId>,
}

impl fmt::Debug for CursorStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CursorStore")
            .field("page", &self.page.get())
            .finish()
    }
}

impl CursorStore {
    /// Allocate the cursor's disk page, initialized to a fresh-cycle
    /// cursor.
    pub fn create(disk: Arc<DiskManager>) -> Result<Self> {
        let page = disk.allocate();
        let store = CursorStore {
            disk,
            page: Cell::new(page),
        };
        store.save(&ScrubCursor::start())?;
        Ok(store)
    }

    /// Reattach to an existing cursor page (after a restart).
    #[must_use]
    pub fn attach(disk: Arc<DiskManager>, page: PageId) -> Self {
        CursorStore {
            disk,
            page: Cell::new(page),
        }
    }

    /// The disk page the cursor lives on.
    #[must_use]
    pub fn page_id(&self) -> PageId {
        self.page.get()
    }

    /// Durably persist `cursor`.
    pub fn save(&self, cursor: &ScrubCursor) -> Result<()> {
        let mut page = Page::new();
        page.put_u32(0, MAGIC);
        page.bytes_mut()[4] = cursor.phase.to_byte();
        page.put_u64(6, cursor.index);
        match &cursor.view {
            Some(name) if 16 + name.len() <= PAGE_SIZE && name.len() <= u16::MAX as usize => {
                page.bytes_mut()[5] = 1;
                page.put_u16(14, name.len() as u16);
                page.write_slice(16, name.as_bytes());
            }
            // An unstorable view name (absurdly long) degrades to a
            // fresh-cycle cursor: scrubbing restarts, never skips.
            _ => page.bytes_mut()[5] = 0,
        }
        self.write_cursor_page(&page)
    }

    /// Load the persisted cursor. Damage to the cursor page (checksum
    /// failure, bad magic, torn fields) degrades to a fresh-cycle
    /// cursor — the scrubber re-verifies from the top rather than
    /// trusting damaged resume state.
    #[must_use]
    pub fn load(&self) -> ScrubCursor {
        let mut page = Page::new();
        if self.disk.read_page(self.page.get(), &mut page).is_err() {
            return ScrubCursor::start();
        }
        if page.get_u32(0) != MAGIC {
            return ScrubCursor::start();
        }
        let Some(phase) = ScrubPhase::from_byte(page.bytes()[4]) else {
            return ScrubCursor::start();
        };
        let index = page.get_u64(6);
        let view = if page.bytes()[5] == 1 {
            let len = page.get_u16(14) as usize;
            if 16 + len > PAGE_SIZE {
                return ScrubCursor::start();
            }
            match std::str::from_utf8(page.slice(16, len)) {
                Ok(s) => Some(s.to_string()),
                Err(_) => return ScrubCursor::start(),
            }
        } else {
            None
        };
        ScrubCursor { view, phase, index }
    }

    /// Write the cursor page, relocating to a fresh page if the
    /// current one has suffered permanent media damage.
    fn write_cursor_page(&self, page: &Page) -> Result<()> {
        match self.disk.write_page(self.page.get(), page) {
            Err(StorageError::PermanentFault { .. } | StorageError::InvalidPageId(_)) => {
                let fresh = self.disk.allocate();
                self.page.set(fresh);
                self.disk.write_page(fresh, page)
            }
            other => other,
        }
    }
}

/// One piece of damage found by a scrub pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionFinding {
    /// The view the damage belongs to.
    pub view: String,
    /// Damaged component class (drives triage).
    pub component: Component,
    /// Damaged page id, when the finding is page-granular.
    pub page: Option<u64>,
    /// What the verification saw.
    pub detail: String,
}

impl fmt::Display for CorruptionFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view {:?}: {} damaged", self.view, self.component)?;
        if let Some(p) = self.page {
            write!(f, " (page {p})")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Outcome of one budgeted scrub call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Data/zone pages whose checksums were verified.
    pub pages_verified: u64,
    /// Summary entries enumerated (including sampled recomputes).
    pub entries_checked: u64,
    /// Damage found this pass.
    pub findings: Vec<CorruptionFinding>,
    /// True when the pass stopped because the budget ran out (the
    /// cursor was persisted; call again to continue).
    pub exhausted_budget: bool,
    /// True when the pass reached the end of the last view (the cursor
    /// was reset to a fresh cycle).
    pub completed_cycle: bool,
    /// Views skipped because a writer (batch, update, repair) held
    /// their lock; they come back on the next cycle.
    pub views_skipped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_storage::Tracker;

    fn disk() -> Arc<DiskManager> {
        Arc::new(DiskManager::new(Tracker::new()))
    }

    #[test]
    fn cursor_round_trips_through_the_store() {
        let store = CursorStore::create(disk()).unwrap();
        assert_eq!(store.load(), ScrubCursor::start());
        let cur = ScrubCursor {
            view: Some("census".into()),
            phase: ScrubPhase::Zones,
            index: 42,
        };
        store.save(&cur).unwrap();
        assert_eq!(store.load(), cur);
        store.save(&ScrubCursor::start()).unwrap();
        assert_eq!(store.load(), ScrubCursor::start());
    }

    #[test]
    fn cursor_survives_reattach_on_a_second_handle() {
        let d = disk();
        let store = CursorStore::create(d.clone()).unwrap();
        let cur = ScrubCursor {
            view: Some("v".into()),
            phase: ScrubPhase::Summary,
            index: 7,
        };
        store.save(&cur).unwrap();
        let reattached = CursorStore::attach(d, store.page_id());
        assert_eq!(reattached.load(), cur);
    }

    #[test]
    fn damaged_cursor_page_degrades_to_fresh_cycle() {
        let d = disk();
        let store = CursorStore::create(d.clone()).unwrap();
        store
            .save(&ScrubCursor {
                view: Some("v".into()),
                phase: ScrubPhase::Data,
                index: 9,
            })
            .unwrap();
        d.corrupt_page(store.page_id(), 200).unwrap();
        assert_eq!(store.load(), ScrubCursor::start());
    }

    #[test]
    fn cursor_store_relocates_off_a_dead_page() {
        use sdbms_storage::{Device, FaultInjector, FaultKind, RetryPolicy, ScriptedFault};
        let inj = Arc::new(FaultInjector::disabled());
        let d = Arc::new(DiskManager::with_faults(
            Tracker::new(),
            inj.clone(),
            RetryPolicy::default(),
        ));
        let store = CursorStore::create(d).unwrap();
        let first = store.page_id();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Permanent).at(u64::from(first)));
        let cur = ScrubCursor {
            view: Some("v".into()),
            phase: ScrubPhase::Zones,
            index: 3,
        };
        store.save(&cur).unwrap();
        assert_ne!(store.page_id(), first);
        assert_eq!(store.load(), cur);
    }

    #[test]
    fn findings_render_with_page_and_component() {
        let f = CorruptionFinding {
            view: "v".into(),
            component: Component::Segment,
            page: Some(12),
            detail: "checksum mismatch".into(),
        };
        let s = f.to_string();
        assert!(s.contains("segment"));
        assert!(s.contains("page 12"));
    }
}
