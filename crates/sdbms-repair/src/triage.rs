//! Corruption triage: classify damage by blast radius and pick the
//! cheapest *sound* repair.
//!
//! Soundness here has a precise meaning: a repair must rebuild the
//! damaged component from an **authority** that does not depend on the
//! damaged bytes. The dependency order follows the paper's Figure 3
//! derivation chain:
//!
//! ```text
//! raw archive  ─►  view segments  ─►  zone maps
//!      │                └──────────►  summary entries
//!      └ (via Management-DB definition + ChangeRecord replay)
//! ```
//!
//! So zone maps may be rebuilt from segment data, summary entries from
//! view data, but damaged segments (or cells, or the whole view) can
//! only come from the archive — re-deriving the view from its recorded
//! definition and then replaying its update history to restore analyst
//! edits. A repair that reads from the component it is repairing is
//! circular and therefore unsound; `sdbms-lint` audits the standing
//! ladder for exactly that (see [`RepairAction::is_self_read`]).
//!
//! Each registered action remembers the source location that registered
//! it (via `#[track_caller]`), so lint findings point at the real
//! `file:line` of the offending registration, not at the checker.

use std::fmt;
use std::panic::Location;

/// A component of a concrete view that can be damaged, ordered by
/// blast radius (cheapest repair first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// One cell of one row.
    Cell,
    /// One encoded column segment (256 rows of one attribute).
    Segment,
    /// A persisted per-segment zone map.
    ZoneMap,
    /// One cached Summary-DB entry.
    SummaryEntry,
    /// The whole view (multiple segments, or its file structure).
    WholeView,
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Component::Cell => "cell",
            Component::Segment => "segment",
            Component::ZoneMap => "zone map",
            Component::SummaryEntry => "summary entry",
            Component::WholeView => "whole view",
        })
    }
}

/// Where a repair reads its replacement data from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Authority {
    /// The raw database on archive storage, replayed through the
    /// Management-DB view definition + update history. The only
    /// authority for damaged view data itself.
    Archive,
    /// Intact encoded segment bytes of the view (authority for
    /// derived per-segment metadata such as zone maps).
    SegmentData,
    /// The view's decoded column data (authority for cached summary
    /// entries, which are pure functions of it).
    ViewData,
    /// Persisted zone maps. Never a valid authority — they are the
    /// most derived artifact; listed so an unsound registration is
    /// representable and the lint has something to catch.
    ZoneMaps,
    /// The Summary DB itself. Same: representable, never sound.
    SummaryDb,
}

impl fmt::Display for Authority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Authority::Archive => "archive",
            Authority::SegmentData => "segment data",
            Authority::ViewData => "view data",
            Authority::ZoneMaps => "zone maps",
            Authority::SummaryDb => "summary db",
        })
    }
}

/// One rung of the triage ladder: how to repair damage to `target`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairAction {
    /// The damaged component this action repairs.
    pub target: Component,
    /// The declared authority the repair reads from. `None` means the
    /// registration failed to name one — itself a lint finding.
    pub authority: Option<Authority>,
    /// Short human-readable description of the repair.
    pub description: &'static str,
    /// `(file, line)` of the registration site, captured via
    /// `#[track_caller]` so audits report real source locations.
    pub registered_at: (&'static str, u32),
}

impl RepairAction {
    /// Register a repair action, capturing the caller's source
    /// location for later audit reporting.
    #[track_caller]
    #[must_use]
    pub fn new(target: Component, authority: Option<Authority>, description: &'static str) -> Self {
        let loc = Location::caller();
        RepairAction {
            target,
            authority,
            description,
            registered_at: (loc.file(), loc.line()),
        }
    }

    /// True when the declared authority *is* (or contains) the
    /// component being repaired — a circular read that can launder
    /// corrupt bytes back into the "repaired" state.
    #[must_use]
    pub fn is_self_read(&self) -> bool {
        match (self.target, self.authority) {
            (_, None) => false,
            // View data repairs reading from view-resident data: the
            // cell/segment being replaced lives inside that data.
            (
                Component::Cell | Component::Segment | Component::WholeView,
                Some(Authority::SegmentData | Authority::ViewData),
            ) => true,
            (Component::ZoneMap, Some(Authority::ZoneMaps)) => true,
            (Component::SummaryEntry, Some(Authority::SummaryDb)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (authority: ", self.target, self.description)?;
        match self.authority {
            Some(a) => write!(f, "{a})"),
            None => f.write_str("undeclared)"),
        }
    }
}

/// The ordered triage ladder: cheapest-blast-radius rung first. Triage
/// walks damage findings against this ladder and applies the first
/// matching rung per component class.
#[derive(Debug, Clone, Default)]
pub struct RepairLadder {
    actions: Vec<RepairAction>,
}

impl RepairLadder {
    /// Empty ladder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rung.
    pub fn register(&mut self, action: RepairAction) {
        self.actions.push(action);
    }

    /// All rungs in registration order.
    #[must_use]
    pub fn actions(&self) -> &[RepairAction] {
        &self.actions
    }

    /// First rung repairing `target`, if any.
    #[must_use]
    pub fn action_for(&self, target: Component) -> Option<&RepairAction> {
        self.actions.iter().find(|a| a.target == target)
    }

    /// The standing ladder used by `StatDbms::repair_view`. Every rung
    /// names its authority; `sdbms-lint`'s soundness pass audits this
    /// exact ladder on every run.
    #[must_use]
    pub fn standard() -> Self {
        let mut ladder = RepairLadder::new();
        ladder.register(RepairAction::new(
            Component::ZoneMap,
            Some(Authority::SegmentData),
            "rebuild zone maps from intact encoded segments",
        ));
        ladder.register(RepairAction::new(
            Component::SummaryEntry,
            Some(Authority::ViewData),
            "recompute cached entries from view columns",
        ));
        ladder.register(RepairAction::new(
            Component::Cell,
            Some(Authority::Archive),
            "regenerate view from archive, replay update history",
        ));
        ladder.register(RepairAction::new(
            Component::Segment,
            Some(Authority::Archive),
            "regenerate view from archive, replay update history",
        ));
        ladder.register(RepairAction::new(
            Component::WholeView,
            Some(Authority::Archive),
            "regenerate view from archive, replay update history",
        ));
        ladder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ladder_covers_every_component() {
        let ladder = RepairLadder::standard();
        for c in [
            Component::Cell,
            Component::Segment,
            Component::ZoneMap,
            Component::SummaryEntry,
            Component::WholeView,
        ] {
            let action = ladder.action_for(c).expect("rung for every component");
            assert!(action.authority.is_some(), "{c}: authority declared");
            assert!(!action.is_self_read(), "{c}: no circular authority");
        }
    }

    #[test]
    fn self_read_detection_catches_circular_authorities() {
        assert!(
            RepairAction::new(Component::ZoneMap, Some(Authority::ZoneMaps), "circular")
                .is_self_read()
        );
        assert!(RepairAction::new(
            Component::Segment,
            Some(Authority::SegmentData),
            "circular: the segment being repaired is segment data"
        )
        .is_self_read());
        assert!(RepairAction::new(
            Component::SummaryEntry,
            Some(Authority::SummaryDb),
            "circular"
        )
        .is_self_read());
        assert!(
            !RepairAction::new(Component::SummaryEntry, Some(Authority::ViewData), "sound")
                .is_self_read()
        );
        assert!(!RepairAction::new(Component::WholeView, None, "undeclared").is_self_read());
    }

    #[test]
    fn track_caller_records_this_file() {
        let a = RepairAction::new(Component::Cell, Some(Authority::Archive), "x");
        assert!(a.registered_at.0.ends_with("triage.rs"));
        assert!(a.registered_at.1 > 0);
    }
}
