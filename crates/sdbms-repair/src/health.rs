//! Per-view health states and the registry that drives repair policy.
//!
//! Every concrete view is *derived* state (paper Figure 3): the raw
//! database on archive is authoritative, so damage to a view is never
//! fatal as long as the archive survives. The health registry encodes
//! that stance as a small state machine per view:
//!
//! ```text
//! Healthy --detect--> Degraded --admit--> Repairing --verify--> Healthy
//!                        ^                    |
//!                        +----repair failed---+  (attempts++, backoff)
//!                                             |
//!                                             v
//!                                       Unrecoverable   (archive damage
//!                                                        or retries spent)
//! ```
//!
//! While a view is `Degraded` or `Repairing`, reads are still admitted
//! — served from the raw archive as `ComputeSource::Fallback` results
//! that are **never cached**, preserving the invariant that the Summary
//! DB only ever holds values computed from healthy view data.
//!
//! Retries are bounded: each failed repair attempt doubles a backoff
//! window measured in injector operation counts (the repo's logical
//! clock — wall time would be nondeterministic under the fault
//! injector's seeded schedules). When the attempt budget is spent, or
//! the authoritative archive itself fails its checksum, the view is
//! marked [`ViewHealth::Unrecoverable`].

use std::collections::BTreeMap;
use std::fmt;

/// Most repair attempts allowed before a view is declared
/// [`ViewHealth::Unrecoverable`].
pub const MAX_REPAIR_ATTEMPTS: u32 = 4;

/// Base backoff window after a failed repair, in injector operations.
/// Doubled per failed attempt: 16, 32, 64, ...
pub const BACKOFF_BASE_OPS: u64 = 16;

/// Health of one concrete view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewHealth {
    /// No known damage; reads served normally from the view + cache.
    Healthy,
    /// Damage detected but repair not yet running (or last attempt
    /// failed and the view is in backoff). Reads are admitted in
    /// degraded mode: recomputed from the raw archive, never cached.
    Degraded,
    /// A repair is in flight. Reads degrade exactly as in `Degraded`.
    Repairing,
    /// Repair is impossible: the authoritative archive copy failed its
    /// own checksum, or every permitted attempt was spent.
    Unrecoverable,
}

impl ViewHealth {
    /// Whether a read against this view should be served in degraded
    /// mode — recomputed from the raw archive as a
    /// `ComputeSource::Fallback` result, never cached — rather than
    /// from the (possibly damaged) view itself. This is the health
    /// states' half of the serving layer's lifecycle decision: a
    /// fallback-eligible view bypasses the per-view circuit breaker
    /// entirely, because the degraded path is already the safe,
    /// engine-avoiding route (DESIGN.md §16).
    #[must_use]
    pub fn can_serve_fallback(self) -> bool {
        matches!(self, ViewHealth::Degraded | ViewHealth::Repairing)
    }
}

impl fmt::Display for ViewHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViewHealth::Healthy => "healthy",
            ViewHealth::Degraded => "degraded",
            ViewHealth::Repairing => "repairing",
            ViewHealth::Unrecoverable => "unrecoverable",
        })
    }
}

/// Why [`HealthRegistry::begin_repair`] refused to start a repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairGate {
    /// The view spent its [`MAX_REPAIR_ATTEMPTS`] budget.
    AttemptsExhausted {
        /// Attempts already made.
        attempts: u32,
    },
    /// The view is in post-failure backoff until the given op count.
    BackingOff {
        /// Injector op count at which the next attempt is admitted.
        until_ops: u64,
    },
    /// The view was already declared unrecoverable.
    Unrecoverable,
}

impl fmt::Display for RepairGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairGate::AttemptsExhausted { attempts } => {
                write!(f, "repair attempt budget spent ({attempts} attempts)")
            }
            RepairGate::BackingOff { until_ops } => {
                write!(f, "in repair backoff until op {until_ops}")
            }
            RepairGate::Unrecoverable => f.write_str("view is unrecoverable"),
        }
    }
}

/// Health bookkeeping for one view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthRecord {
    /// Current state.
    pub state: ViewHealth,
    /// Failed repair attempts so far (reset on success).
    pub attempts: u32,
    /// Injector op count before which no new repair is admitted.
    pub backoff_until_ops: u64,
    /// Human-readable description of the last detected damage.
    pub last_finding: Option<String>,
}

impl HealthRecord {
    fn healthy() -> Self {
        HealthRecord {
            state: ViewHealth::Healthy,
            attempts: 0,
            backoff_until_ops: 0,
            last_finding: None,
        }
    }
}

/// Registry of per-view [`HealthRecord`]s with the transition rules.
///
/// Views absent from the registry are implicitly [`ViewHealth::Healthy`]
/// — the registry only materializes a record once damage is seen, so a
/// freshly-built DBMS carries no health state at all.
#[derive(Debug, Default, Clone)]
pub struct HealthRegistry {
    records: BTreeMap<String, HealthRecord>,
}

impl HealthRegistry {
    /// Empty registry: every view healthy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current health of `view` (implicitly healthy when untracked).
    #[must_use]
    pub fn health(&self, view: &str) -> ViewHealth {
        self.records
            .get(view)
            .map_or(ViewHealth::Healthy, |r| r.state)
    }

    /// Full record for `view`, if damage was ever recorded.
    #[must_use]
    pub fn record(&self, view: &str) -> Option<&HealthRecord> {
        self.records.get(view)
    }

    /// True while reads of `view` must degrade to archive fallback
    /// (and their results must not be cached).
    #[must_use]
    pub fn is_impaired(&self, view: &str) -> bool {
        matches!(
            self.health(view),
            ViewHealth::Degraded | ViewHealth::Repairing | ViewHealth::Unrecoverable
        )
    }

    /// Record detected damage: `Healthy` → `Degraded` with the finding
    /// noted. States past `Degraded` keep their state (a scrub finding
    /// during an active repair must not yank the state backwards) but
    /// still refresh `last_finding`.
    pub fn mark_degraded(&mut self, view: &str, finding: &str) {
        let rec = self
            .records
            .entry(view.to_owned())
            .or_insert_with(HealthRecord::healthy);
        if matches!(rec.state, ViewHealth::Healthy | ViewHealth::Degraded) {
            rec.state = ViewHealth::Degraded;
        }
        rec.last_finding = Some(finding.to_owned());
    }

    /// Admit a repair attempt at logical time `now_ops`, transitioning
    /// to `Repairing`, or explain why it is refused.
    pub fn begin_repair(&mut self, view: &str, now_ops: u64) -> Result<(), RepairGate> {
        let rec = self
            .records
            .entry(view.to_owned())
            .or_insert_with(HealthRecord::healthy);
        match rec.state {
            ViewHealth::Unrecoverable => return Err(RepairGate::Unrecoverable),
            ViewHealth::Repairing => return Ok(()), // already admitted (resume)
            ViewHealth::Healthy | ViewHealth::Degraded => {}
        }
        if rec.attempts >= MAX_REPAIR_ATTEMPTS {
            let attempts = rec.attempts;
            rec.state = ViewHealth::Unrecoverable;
            return Err(RepairGate::AttemptsExhausted { attempts });
        }
        if now_ops < rec.backoff_until_ops {
            return Err(RepairGate::BackingOff {
                until_ops: rec.backoff_until_ops,
            });
        }
        rec.state = ViewHealth::Repairing;
        Ok(())
    }

    /// A repair verified clean: back to `Healthy`, counters reset.
    pub fn repair_succeeded(&mut self, view: &str) {
        self.records
            .insert(view.to_owned(), HealthRecord::healthy());
    }

    /// A repair attempt failed at logical time `now_ops`: back to
    /// `Degraded` with the attempt counted and an exponentially grown
    /// backoff window armed ([`BACKOFF_BASE_OPS`] ≪ attempts).
    pub fn repair_failed(&mut self, view: &str, now_ops: u64, reason: &str) {
        let rec = self
            .records
            .entry(view.to_owned())
            .or_insert_with(HealthRecord::healthy);
        if matches!(rec.state, ViewHealth::Unrecoverable) {
            return;
        }
        rec.attempts += 1;
        if rec.attempts >= MAX_REPAIR_ATTEMPTS {
            rec.state = ViewHealth::Unrecoverable;
        } else {
            rec.state = ViewHealth::Degraded;
        }
        let shift = rec.attempts.min(16);
        rec.backoff_until_ops = now_ops + (BACKOFF_BASE_OPS << shift);
        rec.last_finding = Some(reason.to_owned());
    }

    /// The authoritative archive copy itself is damaged (or the retry
    /// budget is spent): the view can never be repaired.
    pub fn mark_unrecoverable(&mut self, view: &str, reason: &str) {
        let rec = self
            .records
            .entry(view.to_owned())
            .or_insert_with(HealthRecord::healthy);
        rec.state = ViewHealth::Unrecoverable;
        rec.last_finding = Some(reason.to_owned());
    }

    /// Views currently tracked (i.e. ever damaged), sorted by name.
    pub fn tracked(&self) -> impl Iterator<Item = (&str, &HealthRecord)> {
        self.records.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_views_are_healthy() {
        let reg = HealthRegistry::new();
        assert_eq!(reg.health("v"), ViewHealth::Healthy);
        assert!(!reg.is_impaired("v"));
        assert!(reg.record("v").is_none());
    }

    #[test]
    fn degrade_then_repair_round_trip() {
        let mut reg = HealthRegistry::new();
        reg.mark_degraded("v", "bad page 3");
        assert_eq!(reg.health("v"), ViewHealth::Degraded);
        assert!(reg.is_impaired("v"));
        reg.begin_repair("v", 0).unwrap();
        assert_eq!(reg.health("v"), ViewHealth::Repairing);
        assert!(reg.is_impaired("v"));
        reg.repair_succeeded("v");
        assert_eq!(reg.health("v"), ViewHealth::Healthy);
        assert_eq!(reg.record("v").unwrap().attempts, 0);
    }

    #[test]
    fn failed_repairs_back_off_exponentially_then_exhaust() {
        let mut reg = HealthRegistry::new();
        reg.mark_degraded("v", "bad");
        let mut now = 0u64;
        for attempt in 1..MAX_REPAIR_ATTEMPTS {
            reg.begin_repair("v", now).unwrap();
            reg.repair_failed("v", now, "still bad");
            let rec = reg.record("v").unwrap().clone();
            assert_eq!(rec.attempts, attempt);
            assert_eq!(
                rec.backoff_until_ops,
                now + (BACKOFF_BASE_OPS << attempt),
                "backoff doubles per attempt"
            );
            // Too early: refused with the backoff deadline.
            assert!(matches!(
                reg.begin_repair("v", now),
                Err(RepairGate::BackingOff { .. })
            ));
            now = rec.backoff_until_ops;
        }
        reg.begin_repair("v", now).unwrap();
        reg.repair_failed("v", now, "still bad");
        assert_eq!(reg.health("v"), ViewHealth::Unrecoverable);
        assert!(matches!(
            reg.begin_repair("v", u64::MAX),
            Err(RepairGate::Unrecoverable)
        ));
    }

    #[test]
    fn scrub_finding_does_not_demote_active_repair() {
        let mut reg = HealthRegistry::new();
        reg.mark_degraded("v", "first");
        reg.begin_repair("v", 0).unwrap();
        reg.mark_degraded("v", "second");
        assert_eq!(reg.health("v"), ViewHealth::Repairing);
        assert_eq!(
            reg.record("v").unwrap().last_finding.as_deref(),
            Some("second")
        );
    }

    #[test]
    fn begin_repair_is_reentrant_while_repairing() {
        let mut reg = HealthRegistry::new();
        reg.mark_degraded("v", "bad");
        reg.begin_repair("v", 0).unwrap();
        reg.begin_repair("v", 0).unwrap();
        assert_eq!(reg.health("v"), ViewHealth::Repairing);
    }

    #[test]
    fn unrecoverable_is_terminal() {
        let mut reg = HealthRegistry::new();
        reg.mark_unrecoverable("v", "archive checksum failed");
        reg.repair_failed("v", 0, "ignored");
        reg.mark_degraded("v", "ignored");
        assert_eq!(reg.health("v"), ViewHealth::Unrecoverable);
    }

    #[test]
    fn fallback_eligibility_covers_exactly_the_repairable_damage_states() {
        assert!(!ViewHealth::Healthy.can_serve_fallback());
        assert!(ViewHealth::Degraded.can_serve_fallback());
        assert!(ViewHealth::Repairing.can_serve_fallback());
        assert!(!ViewHealth::Unrecoverable.can_serve_fallback());
    }
}
