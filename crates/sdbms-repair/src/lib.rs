//! # sdbms-repair — self-healing machinery for derived view state
//!
//! The paper's Figure 3 organization makes every concrete view
//! *derived*: the raw database on archive storage is authoritative,
//! the Management Database records each view's definition and full
//! update history, and the Summary Database is a cache over the view.
//! That redundancy is exactly what repair needs — anything below the
//! archive can be rebuilt, and this crate supplies the policy pieces:
//!
//! - [`health`] — per-view `Healthy/Degraded/Repairing/Unrecoverable`
//!   states with bounded retries and exponential backoff, driving how
//!   reads are admitted while damage is outstanding.
//! - [`triage`] — the corruption triage ladder: damage classified by
//!   blast radius (cell → segment → zone map → summary entry → whole
//!   view), each rung declaring the *authority* its repair reads from,
//!   audited for circular self-reads by `sdbms-lint`.
//! - [`scrub`] — scrub cursor + durable cursor store (crash-survivable
//!   resume point) and the finding/report types of a scrub pass.
//!
//! The walk and repair drivers themselves live in `sdbms-core`
//! (`StatDbms::scrub`, `StatDbms::repair_view`, `StatDbms::health`),
//! which wires these policies to the actual views, caches, WAL, and
//! history store.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod health;
pub mod scrub;
pub mod triage;

pub use health::{
    HealthRecord, HealthRegistry, RepairGate, ViewHealth, BACKOFF_BASE_OPS, MAX_REPAIR_ATTEMPTS,
};
pub use scrub::{CorruptionFinding, CursorStore, ScrubCursor, ScrubPhase, ScrubReport};
pub use triage::{Authority, Component, RepairAction, RepairLadder};
