//! Seeded determinism: the splitmix64 PRNG and a Zipfian sampler.
//!
//! `splitmix`/`unit` are the exact free functions the chaos harness
//! has always used (same constants, same call-per-value discipline),
//! so refactored callers keep their historical schedules bit-for-bit.

/// Advance a splitmix64 state and return the next pseudo-random word.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a splitmix64 state.
pub fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A tiny owned splitmix64 generator for callers that prefer a value
/// over threading `&mut u64` around. Same stream as [`splitmix`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        splitmix(&mut self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        unit(&mut self.state)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A deterministic Zipfian sampler over ranks `0..n`: rank `k` is
/// drawn with probability proportional to `1 / (k + 1)^exponent`. The
/// CDF is precomputed, so sampling is one uniform draw plus a binary
/// search — cheap enough for closed-loop traffic generation.
#[derive(Debug, Clone)]
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// A sampler over `n` ranks with the given skew exponent
    /// (`1.0`–`1.2` is the classic web-workload range). `n == 0` is
    /// treated as `n == 1`.
    #[must_use]
    pub fn new(n: usize, exponent: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipfian { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false — the constructor guarantees at least one rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..len()` using the caller's generator.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The `pct`-th percentile (0–100) of an ascending-sorted sample,
/// by nearest-rank; 0 for an empty sample.
#[must_use]
pub fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_chaos_constants() {
        // The historical chaos stream: seed 1 must keep producing the
        // same first values forever (schedules are tuned to it).
        let mut s = 1u64;
        let a = splitmix(&mut s);
        let b = splitmix(&mut s);
        let mut s2 = 1u64;
        assert_eq!(a, splitmix(&mut s2));
        assert_eq!(b, splitmix(&mut s2));
        assert_ne!(a, b);
    }

    #[test]
    fn struct_and_free_fn_share_a_stream() {
        let mut free = 42u64;
        let mut owned = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(splitmix(&mut free), owned.next_u64());
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut s = 7u64;
        for _ in 0..1000 {
            let u = unit(&mut s);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let z = Zipfian::new(16, 1.1);
        let mut counts = [0usize; 16];
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 dominates and the tail is hit at least occasionally.
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
        assert!(counts.iter().sum::<usize>() == 10_000);
        // Re-running with the same seed reproduces the exact sequence.
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipf_degenerate_sizes() {
        let z = Zipfian::new(0, 1.0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
        let mut rng = SplitMix64::new(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
