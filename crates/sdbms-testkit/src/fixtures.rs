//! The shared census-view fixture.
//!
//! One builder replaces the near-identical `setup()` functions that
//! grew in `tests/chaos.rs` (160 rows, crash-consistent, warmed),
//! `tests/crash_recovery_props.rs` (60 rows), and
//! `examples/fault_tolerance.rs` (500 rows, cold). Defaults reproduce
//! the chaos harness fixture exactly; every knob is a builder method.

use sdbms_core::{
    AccuracyPolicy, CoreError, DurabilityPolicy, StatDbms, StatFunction, ViewDefinition,
};
use sdbms_data::census::{microdata_census, CensusConfig};
use sdbms_storage::StorageEnv;

/// The fixture's view name.
pub const CENSUS_VIEW: &str = "v";

/// The raw data set the view scans.
pub const CENSUS_SOURCE: &str = "census_microdata";

/// The numeric attributes every seeded workload queries.
pub const CENSUS_ATTRS: [&str; 2] = ["AGE", "INCOME"];

/// The summary functions the seeded workloads exercise and verify.
#[must_use]
pub fn checked_functions() -> Vec<StatFunction> {
    vec![
        StatFunction::Count,
        StatFunction::Mean,
        StatFunction::Min,
        StatFunction::Max,
        StatFunction::Median,
    ]
}

/// Builder for a DBMS holding one materialized census view named
/// [`CENSUS_VIEW`]. The census generator is seeded, so two fixtures
/// built with the same knobs hold identical bytes — the property every
/// differential oracle in the repo leans on.
#[derive(Debug, Clone)]
pub struct CensusFixture {
    rows: usize,
    pool_pages: usize,
    seed: Option<u64>,
    invalid_fraction: f64,
    outlier_fraction: f64,
    owner: String,
    crash_consistent: bool,
    warm: bool,
}

impl Default for CensusFixture {
    /// The chaos-harness fixture: 160 clean rows on a 256-page pool,
    /// crash-consistent durability, summaries warmed for
    /// [`CENSUS_ATTRS`] × [`checked_functions`].
    fn default() -> Self {
        CensusFixture {
            rows: 160,
            pool_pages: 256,
            seed: None,
            invalid_fraction: 0.0,
            outlier_fraction: 0.0,
            owner: "testkit".to_string(),
            crash_consistent: true,
            warm: true,
        }
    }
}

impl CensusFixture {
    /// Start from the defaults (see [`CensusFixture::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of person records in the view.
    #[must_use]
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Buffer-pool size in pages.
    #[must_use]
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Census generator seed (defaults to the generator's own default).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Fraction of records given an invalid measurement.
    #[must_use]
    pub fn invalid_fraction(mut self, f: f64) -> Self {
        self.invalid_fraction = f;
        self
    }

    /// Fraction of records given a legitimate but extreme value.
    #[must_use]
    pub fn outlier_fraction(mut self, f: f64) -> Self {
        self.outlier_fraction = f;
        self
    }

    /// Recorded owner of the view.
    #[must_use]
    pub fn owner(mut self, owner: &str) -> Self {
        self.owner = owner.to_string();
        self
    }

    /// Whether to enable [`DurabilityPolicy::CrashConsistent`]
    /// (default: yes).
    #[must_use]
    pub fn crash_consistent(mut self, yes: bool) -> Self {
        self.crash_consistent = yes;
        self
    }

    /// Whether to warm the Summary DB for [`CENSUS_ATTRS`] ×
    /// [`checked_functions`] (default: yes).
    #[must_use]
    pub fn warm(mut self, yes: bool) -> Self {
        self.warm = yes;
        self
    }

    /// Build the DBMS, fault-free.
    pub fn build(&self) -> Result<StatDbms, CoreError> {
        let mut dbms = StatDbms::with_env(StorageEnv::new(self.pool_pages));
        let mut cfg = CensusConfig {
            rows: self.rows,
            invalid_fraction: self.invalid_fraction,
            outlier_fraction: self.outlier_fraction,
            ..Default::default()
        };
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        let raw = microdata_census(&cfg)?;
        dbms.load_raw(&raw)?;
        dbms.materialize(
            ViewDefinition::scan(CENSUS_VIEW, CENSUS_SOURCE),
            &self.owner,
        )?;
        if self.crash_consistent {
            dbms.set_durability(DurabilityPolicy::CrashConsistent)?;
        }
        if self.warm {
            for a in CENSUS_ATTRS {
                for f in checked_functions() {
                    dbms.compute(CENSUS_VIEW, a, &f, AccuracyPolicy::Exact)?;
                }
            }
        }
        Ok(dbms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fixture_matches_the_chaos_setup() {
        let mut dbms = CensusFixture::new().build().expect("fixture");
        let snap = dbms.snapshot(CENSUS_VIEW).expect("snapshot");
        assert_eq!(snap.len(), 160);
        drop(snap);
        // Summaries are warm: the first compute is already a cache hit.
        let (_, src) = dbms
            .compute(
                CENSUS_VIEW,
                "INCOME",
                &StatFunction::Mean,
                AccuracyPolicy::Exact,
            )
            .expect("compute");
        assert_eq!(src, sdbms_core::ComputeSource::Cache);
    }

    #[test]
    fn same_knobs_same_bytes() {
        let a = CensusFixture::new().rows(80).build().expect("a");
        let b = CensusFixture::new().rows(80).build().expect("b");
        let col_a = a.snapshot(CENSUS_VIEW).expect("a").column("INCOME");
        let col_b = b.snapshot(CENSUS_VIEW).expect("b").column("INCOME");
        assert_eq!(col_a.expect("col a"), col_b.expect("col b"));
    }

    #[test]
    fn knobs_apply() {
        let mut dbms = CensusFixture::new()
            .rows(30)
            .pool_pages(128)
            .seed(42)
            .owner("elsewhere")
            .crash_consistent(false)
            .warm(false)
            .build()
            .expect("fixture");
        assert_eq!(dbms.snapshot(CENSUS_VIEW).expect("snap").len(), 30);
        // Cold fixture: the first compute has to do the work.
        let (_, src) = dbms
            .compute(
                CENSUS_VIEW,
                "INCOME",
                &StatFunction::Mean,
                AccuracyPolicy::Exact,
            )
            .expect("compute");
        assert_eq!(src, sdbms_core::ComputeSource::Computed);
    }
}
