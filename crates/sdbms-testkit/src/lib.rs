//! Shared deterministic test/bench/demo machinery.
//!
//! Before this crate existed, the seeded `splitmix` PRNG, the census
//! fixture builder, and the "bump INCOME where AGE > t" update step
//! were copy-pasted across `tests/chaos.rs`,
//! `tests/crash_recovery_props.rs`, `examples/fault_tolerance.rs`, and
//! the benches — four slightly diverging copies of the same intent.
//! The serving layer's closed-loop traffic generator needs the same
//! helpers again, so they live here once:
//!
//! - [`rng`] — the splitmix64 PRNG every seeded schedule uses, plus a
//!   deterministic Zipfian sampler for skewed query mixes;
//! - [`fixtures`] — the census-view DBMS builder (rows, pool size,
//!   durability, summary warm-up) shared by the chaos, recovery,
//!   serving, and example workloads;
//! - [`workload`] — seeded update steps (predicate + assignments) in
//!   the three forms callers need: `update_where` arguments, staged
//!   [`sdbms_core::BatchOp`]s, and raw parts.
//!
//! Everything here is deterministic: same seed, same bytes. Builders
//! return `Result` rather than panicking so library callers (the
//! traffic generator) stay panic-free; tests `.expect()` at the call
//! site.

pub mod fixtures;
pub mod rng;
pub mod workload;

pub use fixtures::{checked_functions, CensusFixture, CENSUS_ATTRS, CENSUS_SOURCE, CENSUS_VIEW};
pub use rng::{percentile, splitmix, unit, SplitMix64, Zipfian};
pub use workload::{seeded_income_update, IncomeUpdate};
