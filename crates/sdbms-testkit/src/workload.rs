//! Seeded update steps.
//!
//! Every chaos/recovery/serving workload in the repo drives the same
//! analyst edit: *bump INCOME where AGE > threshold*. The seeded form
//! draws `threshold` then `bump` from a splitmix state — exactly two
//! draws in that order, matching the historical chaos streams — and
//! callers use whichever shape their API needs: `update_where`
//! arguments, a staged [`BatchOp`], or the raw parts.

use sdbms_core::{BatchOp, BinOp, CmpOp, CoreError, Expr, Predicate, StatDbms, UpdateReport};

use crate::rng::splitmix;

/// One seeded analyst edit: add `bump` to INCOME on every row with
/// AGE > `threshold`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncomeUpdate {
    /// AGE cut-off (exclusive).
    pub threshold: i64,
    /// Amount added to INCOME on matching rows.
    pub bump: i64,
}

/// Draw the next seeded edit: `threshold ∈ 20..65`, `bump ∈ 1..501`,
/// using exactly two [`splitmix`] draws (threshold first) so existing
/// seeded schedules keep their historical streams.
pub fn seeded_income_update(state: &mut u64) -> IncomeUpdate {
    let threshold = 20 + (splitmix(state) % 45) as i64;
    let bump = 1 + (splitmix(state) % 500) as i64;
    IncomeUpdate { threshold, bump }
}

impl IncomeUpdate {
    /// The row filter: `AGE > threshold`.
    #[must_use]
    pub fn predicate(&self) -> Predicate {
        Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(self.threshold))
    }

    /// The assignment list: `INCOME := INCOME + bump`.
    #[must_use]
    pub fn assignments(&self) -> Vec<(&'static str, Expr)> {
        vec![(
            "INCOME",
            Expr::col("INCOME").binary(BinOp::Add, Expr::lit(self.bump)),
        )]
    }

    /// The edit as one stageable batch op.
    #[must_use]
    pub fn batch_op(&self) -> BatchOp {
        BatchOp::UpdateWhere {
            predicate: self.predicate(),
            assignments: self
                .assignments()
                .into_iter()
                .map(|(a, e)| (a.to_string(), e))
                .collect(),
        }
    }

    /// Apply the edit through the legacy in-place path.
    pub fn apply(&self, dbms: &mut StatDbms, view: &str) -> Result<UpdateReport, CoreError> {
        dbms.update_where(view, &self.predicate(), &self.assignments())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{CensusFixture, CENSUS_VIEW};

    #[test]
    fn seeded_draws_match_the_historical_chaos_stream() {
        // The chaos harness drew `20 + splitmix % 45` then
        // `1 + splitmix % 500`; the helper must reproduce that from
        // the same state.
        let mut a = 0xC0FF_EE00u64;
        let mut b = 0xC0FF_EE00u64;
        let want_threshold = 20 + (splitmix(&mut a) % 45) as i64;
        let want_bump = 1 + (splitmix(&mut a) % 500) as i64;
        let got = seeded_income_update(&mut b);
        assert_eq!(got.threshold, want_threshold);
        assert_eq!(got.bump, want_bump);
        assert_eq!(a, b, "both consumed exactly two draws");
    }

    #[test]
    fn batch_op_and_update_where_agree() {
        let mut direct = CensusFixture::new().rows(60).build().expect("fixture");
        let mut batched = CensusFixture::new().rows(60).build().expect("fixture");
        let mut s = 7u64;
        let edit = seeded_income_update(&mut s);
        let report = edit.apply(&mut direct, CENSUS_VIEW).expect("update");
        assert!(report.rows_matched > 0);
        let b = batched.begin_batch(CENSUS_VIEW).expect("begin");
        batched.batch_stage(b, edit.batch_op()).expect("stage");
        let committed = batched.commit_batch(b).expect("commit");
        assert_eq!(committed.rows_matched, report.rows_matched);
        assert_eq!(committed.cells_changed, report.cells_changed);
        let da = direct.snapshot(CENSUS_VIEW).expect("snap");
        let db = batched.snapshot(CENSUS_VIEW).expect("snap");
        assert_eq!(
            da.column("INCOME").expect("col"),
            db.column("INCOME").expect("col")
        );
    }
}
