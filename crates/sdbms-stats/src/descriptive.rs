//! Descriptive statistics over numeric observations.
//!
//! These are the "simple summary-statistics operations such as min,
//! max, mean, median, and standard-deviation" (§2.1) that every
//! statistical package provides and the Summary Database caches.
//! Inputs are `&[f64]` — callers extract columns with
//! `DataSet::column_f64`, which already drops missing values (and
//! reports how many were dropped).

use crate::error::{Result, StatsError};

/// Sum of the observations (0 for an empty slice).
#[must_use]
pub fn sum(xs: &[f64]) -> f64 {
    // Neumaier (improved Kahan) summation: column sums over millions of
    // rows lose precision with naive accumulation, and the incremental-
    // maintenance experiments compare against this as ground truth.
    let mut s = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let t = s + x;
        if s.abs() >= x.abs() {
            c += (s - t) + x;
        } else {
            c += (x - t) + s;
        }
        s = t;
    }
    s + c
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    Ok(sum(xs) / xs.len() as f64)
}

/// Minimum (NaNs ignored; all-NaN input is an error).
pub fn min(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.min(x)))
        })
        .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })
}

/// Maximum (NaNs ignored; all-NaN input is an error).
pub fn max(xs: &[f64]) -> Result<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc: Option<f64>, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        })
        .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })
}

/// Sample variance (n−1 denominator), via Welford's algorithm for
/// numerical stability.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: xs.len(),
        });
    }
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i as f64 + 1.0);
        m2 += delta * (x - mean);
    }
    Ok(m2 / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Sample skewness (bias-adjusted, g1 · correction).
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return Err(StatsError::NotEnoughData {
            needed: 3,
            got: xs.len(),
        });
    }
    let m = mean(xs)?;
    let (mut m2, mut m3) = (0.0, 0.0);
    for &x in xs {
        let d = x - m;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n;
    m3 /= n;
    if m2 == 0.0 {
        return Ok(0.0);
    }
    let g1 = m3 / m2.powf(1.5);
    Ok(g1 * (n * (n - 1.0)).sqrt() / (n - 2.0))
}

/// Excess kurtosis (bias-adjusted G2).
pub fn kurtosis(xs: &[f64]) -> Result<f64> {
    let n = xs.len() as f64;
    if xs.len() < 4 {
        return Err(StatsError::NotEnoughData {
            needed: 4,
            got: xs.len(),
        });
    }
    let m = mean(xs)?;
    let (mut m2, mut m4) = (0.0, 0.0);
    for &x in xs {
        let d = x - m;
        m2 += d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m4 /= n;
    if m2 == 0.0 {
        return Ok(0.0);
    }
    let g2 = m4 / (m2 * m2) - 3.0;
    Ok(((n + 1.0) * g2 + 6.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0)))
}

/// The standard one-look summary of a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Describe {
    /// Observation count (missing values excluded by the caller).
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count == 1`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sum.
    pub sum: f64,
}

/// Compute a [`Describe`] summary in one pass.
pub fn describe(xs: &[f64]) -> Result<Describe> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    Ok(Describe {
        count: xs.len(),
        mean: mean(xs)?,
        std_dev: if xs.len() > 1 { std_dev(xs)? } else { 0.0 },
        min: min(xs)?,
        max: max(xs)?,
        sum: sum(xs),
    })
}

/// Count of observations within `center ± k·spread` — the §3.1
/// "values that lie outside the range defined by M ± k·SD" query,
/// inverted. Returns `(inside, outside)`.
#[must_use]
pub fn count_within_band(xs: &[f64], center: f64, spread: f64, k: f64) -> (usize, usize) {
    let lo = center - k * spread;
    let hi = center + k * spread;
    let inside = xs.iter().filter(|&&x| (lo..=hi).contains(&x)).count();
    (inside, xs.len() - inside)
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 8] = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn basic_moments() {
        assert_eq!(sum(&XS), 40.0);
        assert_eq!(mean(&XS).unwrap(), 5.0);
        // Population variance is 4; sample variance = 32/7.
        assert!((variance(&XS).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&XS).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        assert_eq!(min(&XS).unwrap(), 2.0);
        assert_eq!(max(&XS).unwrap(), 9.0);
        assert_eq!(min(&[3.0, f64::NAN]).unwrap(), 3.0);
        assert!(min(&[f64::NAN]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn empty_and_small_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(skewness(&[1.0, 2.0]).is_err());
        assert!(kurtosis(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn skewness_sign() {
        let right_skewed = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right_skewed).unwrap() > 0.5);
        let symmetric = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&symmetric).unwrap().abs() < 1e-12);
        let constant = [3.0; 5];
        assert_eq!(skewness(&constant).unwrap(), 0.0);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(kurtosis(&xs).unwrap() < -1.0, "flat data is platykurtic");
    }

    #[test]
    fn describe_consistency() {
        let d = describe(&XS).unwrap();
        assert_eq!(d.count, 8);
        assert_eq!(d.mean, 5.0);
        assert_eq!(d.min, 2.0);
        assert_eq!(d.max, 9.0);
        assert_eq!(d.sum, 40.0);
        let single = describe(&[7.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn band_count_matches_paper_query() {
        // M ± 1·SD of XS: mean 5, sd ≈ 2.138.
        let m = mean(&XS).unwrap();
        let sd = std_dev(&XS).unwrap();
        let (inside, outside) = count_within_band(&XS, m, sd, 1.0);
        assert_eq!(inside + outside, XS.len());
        assert_eq!(outside, 2, "2 and 9 fall outside one sd");
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1 + 1e16 - 1e16 pattern defeats naive summation.
        let mut xs = vec![1e16, 1.0, -1e16];
        xs.extend(std::iter::repeat_n(1.0, 10));
        assert_eq!(sum(&xs), 11.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_mean_bounded_by_extremes(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let m = mean(&xs).unwrap();
            let lo = min(&xs).unwrap();
            let hi = max(&xs).unwrap();
            proptest::prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }

        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            proptest::prop_assert!(variance(&xs).unwrap() >= 0.0);
        }

        #[test]
        fn prop_shift_invariance_of_variance(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..100), shift in -1e3f64..1e3) {
            let v1 = variance(&xs).unwrap();
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let v2 = variance(&shifted).unwrap();
            proptest::prop_assert!((v1 - v2).abs() < 1e-6 * v1.abs().max(1.0));
        }
    }
}
