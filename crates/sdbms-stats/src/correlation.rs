//! Covariance and correlation between paired columns.
//!
//! The exploratory phase asks "Is there a relationship between the
//! values of two attributes?" (§2.2). Pearson correlation answers it
//! for linear relationships; Spearman (rank) correlation for monotone
//! ones.

use crate::error::{Result, StatsError};

fn check_pairs(xs: &[f64], ys: &[f64], needed: usize) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(StatsError::MismatchedLengths {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < needed {
        return Err(StatsError::NotEnoughData {
            needed,
            got: xs.len(),
        });
    }
    Ok(())
}

/// Sample covariance (n−1 denominator).
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_pairs(xs, ys, 2)?;
    let n = xs.len() as f64;
    let mx = crate::descriptive::sum(xs) / n;
    let my = crate::descriptive::sum(ys) / n;
    let mut acc = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        acc += (x - mx) * (y - my);
    }
    Ok(acc / (n - 1.0))
}

/// Pearson product-moment correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_pairs(xs, ys, 2)?;
    let n = xs.len() as f64;
    let mx = crate::descriptive::sum(xs) / n;
    let my = crate::descriptive::sum(ys) / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::InvalidParameter(
            "correlation undefined for a constant column",
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mid-ranks of the observations (ties share the average rank).
#[must_use]
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks are 1-based; ties get the mid-rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation: Pearson correlation of the mid-ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    check_pairs(xs, ys, 2)?;
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_known_value() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        // cov = 2 * var(xs) = 2 * 5/3.
        assert!((covariance(&xs, &ys).unwrap() - 10.0 / 3.0).abs() < 1e-12);
        assert!((covariance(&xs, &xs).unwrap() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: Vec<f64> = (1..30).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 2.0).exp()).collect();
        let p = pearson(&xs, &ys).unwrap();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s - 1.0).abs() < 1e-12, "monotone => spearman 1");
        assert!(p < 0.9, "exponential is not linear: pearson {p}");
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r2 = ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r2, vec![2.0, 2.0, 2.0]);
        assert!(ranks(&[]).is_empty());
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(StatsError::MismatchedLengths { .. })
        ));
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::NotEnoughData { .. })
        ));
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn independent_noise_roughly_uncorrelated() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..2000).map(|_| next()).collect();
        let ys: Vec<f64> = (0..2000).map(|_| next()).collect();
        let r = pearson(&xs, &ys).unwrap();
        assert!(r.abs() < 0.1, "independent streams: r = {r}");
    }

    proptest::proptest! {
        #[test]
        fn prop_correlation_bounded(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 3..100)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(r) = pearson(&xs, &ys) {
                proptest::prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
            if let Ok(s) = spearman(&xs, &ys) {
                proptest::prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
            }
        }

        #[test]
        fn prop_pearson_symmetric(
            pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..60)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let (Ok(a), Ok(b)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
                proptest::prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
