//! Special functions for p-values.
//!
//! The confirmatory phase (§2.2) applies goodness-of-fit and
//! independence tests; their p-values need the incomplete gamma
//! function (chi-squared), the error function (normal), and the
//! Kolmogorov distribution. Implemented from the standard numerical
//! recipes so the crate stays dependency-free.

/// Natural log of the gamma function (Lanczos approximation, g=7,
/// n=9). Accurate to ~1e-13 for x > 0.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    #[allow(clippy::excessive_precision)] // published Lanczos constants
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function P(a, x).
///
/// Series expansion for `x < a + 1`, continued fraction otherwise.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function, via P(1/2, x²) (exact identity).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let p = gamma_p(0.5, x * x);
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal CDF.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Survival function of the chi-squared distribution with `df` degrees
/// of freedom: `P(X >= x)`.
#[must_use]
pub fn chi_squared_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0)
}

/// Kolmogorov distribution survival function
/// `Q_KS(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}` — the asymptotic p-value of
/// the K-S statistic.
#[must_use]
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-12);
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.975_002_104_85, 1e-6);
        close(normal_cdf(-1.96) + normal_cdf(1.96), 1.0, 1e-12);
    }

    #[test]
    fn chi_squared_sf_known_values() {
        // Critical values: P(X >= 3.841) = 0.05 for df=1.
        close(chi_squared_sf(3.841, 1.0), 0.05, 2e-3);
        close(chi_squared_sf(5.991, 2.0), 0.05, 2e-3);
        // For df=2, SF(x) = e^{-x/2} exactly.
        for &x in &[0.5, 2.0, 7.0] {
            close(chi_squared_sf(x, 2.0), (-x / 2.0f64).exp(), 1e-12);
        }
        assert_eq!(chi_squared_sf(0.0, 3.0), 1.0);
    }

    #[test]
    fn kolmogorov_sf_reference_points() {
        close(kolmogorov_sf(1.0), 0.26999967, 1e-6);
        close(kolmogorov_sf(1.36), 0.049_055, 1e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }
}
