//! Frequency tables over arbitrary values.
//!
//! §3.2 lists "the number of unique values, and some measure of
//! frequency of values" among the standing summary information of the
//! Summary Database. A [`FrequencyTable`] counts occurrences of any
//! [`Value`] (including `Missing`), supports incremental add/remove,
//! and answers mode / unique-count / frequency queries.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use sdbms_data::Value;

use crate::error::{Result, StatsError};

/// Wrapper giving [`Value`] a total order so it can key a `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
struct OrdValue(Value);

impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Occurrence counts per distinct value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrequencyTable {
    counts: BTreeMap<OrdValue, u64>,
    total: u64,
}

impl FrequencyTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count every value produced by the iterator.
    pub fn from_values<'a>(values: impl IntoIterator<Item = &'a Value>) -> Self {
        let mut t = Self::new();
        for v in values {
            t.add(v);
        }
        t
    }

    /// Record one occurrence — O(log u).
    pub fn add(&mut self, v: &Value) {
        self.add_count(v, 1);
    }

    /// Record `n` occurrences at once (used when deserializing a
    /// persisted table).
    pub fn add_count(&mut self, v: &Value, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(OrdValue(v.clone())).or_insert(0) += n;
        self.total += n;
    }

    /// Merge another table's counts into this one, as if every
    /// occurrence behind `other` had been added here. Exact and
    /// associative (integer counts over a shared value order), so
    /// parallel partial tables merge to the same table a serial count
    /// produces.
    pub fn merge(&mut self, other: &FrequencyTable) {
        for (v, c) in other.entries() {
            self.add_count(v, c);
        }
    }

    /// Remove one occurrence; errors if the value was not recorded.
    pub fn remove(&mut self, v: &Value) -> Result<()> {
        let key = OrdValue(v.clone());
        match self.counts.get_mut(&key) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.total -= 1;
                Ok(())
            }
            Some(_) => {
                self.counts.remove(&key);
                self.total -= 1;
                Ok(())
            }
            None => Err(StatsError::InvalidParameter(
                "removing a value that was never recorded",
            )),
        }
    }

    /// Total occurrences recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values.
    #[must_use]
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Occurrences of `v`.
    #[must_use]
    pub fn count_of(&self, v: &Value) -> u64 {
        self.counts.get(&OrdValue(v.clone())).copied().unwrap_or(0)
    }

    /// The most frequent value (ties broken by value order) and its
    /// count.
    pub fn mode(&self) -> Result<(Value, u64)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, c)| (v.0.clone(), *c))
            .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })
    }

    /// All `(value, count)` pairs in value order.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, u64)> {
        self.counts.iter().map(|(v, c)| (&v.0, *c))
    }

    /// Relative frequency of `v` in [0, 1].
    #[must_use]
    pub fn relative(&self, v: &Value) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_of(v) as f64 / self.total as f64
        }
    }

    /// Shannon entropy (bits) of the value distribution — a "measure of
    /// frequency of values" usable for detecting near-constant columns.
    #[must_use]
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FrequencyTable {
        let vals = vec![
            Value::Str("M".into()),
            Value::Str("F".into()),
            Value::Str("M".into()),
            Value::Code(2),
            Value::Missing,
            Value::Str("M".into()),
        ];
        FrequencyTable::from_values(&vals)
    }

    #[test]
    fn counts_and_uniques() {
        let t = table();
        assert_eq!(t.total(), 6);
        assert_eq!(t.unique_count(), 4);
        assert_eq!(t.count_of(&Value::Str("M".into())), 3);
        assert_eq!(t.count_of(&Value::Missing), 1);
        assert_eq!(t.count_of(&Value::Str("X".into())), 0);
    }

    #[test]
    fn mode_with_ties() {
        let t = table();
        assert_eq!(t.mode().unwrap(), (Value::Str("M".into()), 3));
        let mut tie = FrequencyTable::new();
        tie.add(&Value::Int(1));
        tie.add(&Value::Int(2));
        // Tie broken toward the smaller value for determinism.
        assert_eq!(tie.mode().unwrap(), (Value::Int(1), 1));
        assert!(FrequencyTable::new().mode().is_err());
    }

    #[test]
    fn add_remove_inverse() {
        let mut t = table();
        let before = t.clone();
        t.add(&Value::Int(9));
        t.remove(&Value::Int(9)).unwrap();
        assert_eq!(t, before);
        assert!(t.remove(&Value::Int(9)).is_err());
    }

    #[test]
    fn remove_last_occurrence_drops_unique() {
        let mut t = FrequencyTable::new();
        t.add(&Value::Int(5));
        assert_eq!(t.unique_count(), 1);
        t.remove(&Value::Int(5)).unwrap();
        assert_eq!(t.unique_count(), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn relative_and_entropy() {
        let t = table();
        assert!((t.relative(&Value::Str("M".into())) - 0.5).abs() < 1e-12);
        let mut constant = FrequencyTable::new();
        for _ in 0..10 {
            constant.add(&Value::Int(1));
        }
        assert_eq!(constant.entropy(), 0.0);
        let mut fair = FrequencyTable::new();
        fair.add(&Value::Int(0));
        fair.add(&Value::Int(1));
        assert!((fair.entropy() - 1.0).abs() < 1e-12);
        assert_eq!(FrequencyTable::new().entropy(), 0.0);
    }

    #[test]
    fn nan_floats_group_together() {
        let mut t = FrequencyTable::new();
        t.add(&Value::Float(f64::NAN));
        t.add(&Value::Float(f64::NAN));
        assert_eq!(t.unique_count(), 1);
        assert_eq!(t.count_of(&Value::Float(f64::NAN)), 2);
    }

    #[test]
    fn merge_matches_concatenation() {
        let a = vec![Value::Int(1), Value::Missing, Value::Str("M".into())];
        let b = vec![Value::Int(1), Value::Code(2), Value::Missing];
        let mut merged = FrequencyTable::from_values(&a);
        merged.merge(&FrequencyTable::from_values(&b));
        let whole = FrequencyTable::from_values(a.iter().chain(b.iter()));
        assert_eq!(merged, whole);
        assert_eq!(merged.count_of(&Value::Int(1)), 2);
        assert_eq!(merged.count_of(&Value::Missing), 2);
        // Merging an empty table is a no-op in both directions.
        let mut e = FrequencyTable::new();
        e.merge(&merged);
        assert_eq!(e, merged);
        merged.merge(&FrequencyTable::new());
        assert_eq!(e, merged);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_exact_and_associative(
            a in proptest::collection::vec((0u8..4, -20i64..20), 0..60),
            b in proptest::collection::vec((0u8..4, -20i64..20), 0..60),
            c in proptest::collection::vec((0u8..4, -20i64..20), 0..60)
        ) {
            let to_vals = |xs: &[(u8, i64)]| -> Vec<Value> {
                xs.iter()
                    .map(|&(tag, x)| match tag {
                        0 => Value::Missing,
                        1 => Value::Int(x),
                        2 => Value::Float(x as f64 / 4.0),
                        _ => Value::Code((x.unsigned_abs() % 8) as u32),
                    })
                    .collect()
            };
            let (va, vb, vc) = (to_vals(&a), to_vals(&b), to_vals(&c));
            let (ta, tb, tc) = (
                FrequencyTable::from_values(&va),
                FrequencyTable::from_values(&vb),
                FrequencyTable::from_values(&vc),
            );
            let mut left = ta.clone();
            left.merge(&tb);
            left.merge(&tc);
            let mut bc = tb.clone();
            bc.merge(&tc);
            let mut right = ta.clone();
            right.merge(&bc);
            proptest::prop_assert_eq!(&left, &right);
            let whole =
                FrequencyTable::from_values(va.iter().chain(vb.iter()).chain(vc.iter()));
            proptest::prop_assert_eq!(&left, &whole);
            proptest::prop_assert_eq!(left.total(), va.len() as u64 + vb.len() as u64 + vc.len() as u64);
        }
    }

    #[test]
    fn entries_in_value_order() {
        let t = table();
        let vals: Vec<String> = t.entries().map(|(v, _)| v.to_string()).collect();
        // Missing first, then strings, then codes (per Value::total_cmp).
        assert_eq!(vals, vec!["·", "F", "M", "#2"]);
    }
}
