//! Hypothesis tests for the confirmatory phase.
//!
//! §2.2: "a goodness-of-fit test may be applied to see if a particular
//! attribute does indeed follow a hypothesized distribution or a
//! chi-squared test may be applied to a cross-tabulation". Implemented:
//! chi-squared independence (on a [`CrossTab`]), chi-squared
//! goodness-of-fit, and one- and two-sample Kolmogorov–Smirnov.

use crate::crosstab::CrossTab;
use crate::error::{Result, StatsError};
use crate::special::{chi_squared_sf, kolmogorov_sf};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom (0 where not applicable, e.g. K-S).
    pub df: f64,
    /// The p-value (probability of a statistic at least this extreme
    /// under the null hypothesis).
    pub p_value: f64,
}

impl TestResult {
    /// Reject the null hypothesis at significance level `alpha`?
    #[must_use]
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-squared test of independence on a contingency table.
pub fn chi_squared_independence(ct: &CrossTab) -> Result<TestResult> {
    let (r, c) = (ct.row_labels().len(), ct.col_labels().len());
    if r < 2 || c < 2 {
        return Err(StatsError::InvalidParameter(
            "independence test needs at least a 2x2 table",
        ));
    }
    let expected = ct.expected()?;
    let mut stat = 0.0;
    for (obs_row, exp_row) in ct.counts().iter().zip(&expected) {
        for (&o, &e) in obs_row.iter().zip(exp_row) {
            if e > 0.0 {
                let d = o as f64 - e;
                stat += d * d / e;
            }
        }
    }
    let df = ((r - 1) * (c - 1)) as f64;
    Ok(TestResult {
        statistic: stat,
        df,
        p_value: chi_squared_sf(stat, df),
    })
}

/// Chi-squared goodness-of-fit of observed counts against expected
/// *probabilities* (which must sum to ~1).
pub fn chi_squared_goodness_of_fit(observed: &[u64], expected_probs: &[f64]) -> Result<TestResult> {
    if observed.len() != expected_probs.len() {
        return Err(StatsError::MismatchedLengths {
            left: observed.len(),
            right: expected_probs.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::InvalidParameter(
            "goodness-of-fit needs at least 2 categories",
        ));
    }
    let psum: f64 = expected_probs.iter().sum();
    if (psum - 1.0).abs() > 1e-6 || expected_probs.iter().any(|&p| p <= 0.0) {
        return Err(StatsError::InvalidParameter(
            "expected probabilities must be positive and sum to 1",
        ));
    }
    let n: u64 = observed.iter().sum();
    if n == 0 {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        let e = n as f64 * p;
        let d = o as f64 - e;
        stat += d * d / e;
    }
    let df = (observed.len() - 1) as f64;
    Ok(TestResult {
        statistic: stat,
        df,
        p_value: chi_squared_sf(stat, df),
    })
}

/// One-sample Kolmogorov–Smirnov test against a hypothesized CDF.
///
/// `cdf` must be the null distribution's cumulative distribution
/// function; the p-value uses the asymptotic Kolmogorov distribution
/// with the Stephens small-sample correction.
pub fn ks_one_sample(xs: &[f64], cdf: impl Fn(f64) -> f64) -> Result<TestResult> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let d_plus = (i as f64 + 1.0) / n - f;
        let d_minus = f - i as f64 / n;
        d = d.max(d_plus).max(d_minus);
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(TestResult {
        statistic: d,
        df: 0.0,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Two-sample Kolmogorov–Smirnov test (are two columns drawn from the
/// same distribution?).
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.is_empty() || ys.is_empty() {
        return Err(StatsError::NotEnoughData {
            needed: 1,
            got: xs.len().min(ys.len()),
        });
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    Ok(TestResult {
        statistic: d,
        df: 0.0,
        p_value: kolmogorov_sf(lambda),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosstab::CrossTab;
    use sdbms_data::{Attribute, DataSet, DataType, Schema, Value};

    fn table(cells: &[(&str, &str, usize)]) -> CrossTab {
        let schema = Schema::new(vec![
            Attribute::category("A", DataType::Str),
            Attribute::category("B", DataType::Str),
        ])
        .unwrap();
        let mut ds = DataSet::new("d", schema);
        for &(a, b, n) in cells {
            for _ in 0..n {
                ds.push_row(vec![Value::Str(a.into()), Value::Str(b.into())])
                    .unwrap();
            }
        }
        CrossTab::from_dataset(&ds, "A", "B").unwrap().0
    }

    #[test]
    fn independence_detects_dependence() {
        // Strong association.
        let dependent = table(&[("x", "p", 40), ("x", "q", 5), ("y", "p", 5), ("y", "q", 40)]);
        let r = chi_squared_independence(&dependent).unwrap();
        assert!(r.statistic > 20.0);
        assert!(r.significant_at(0.001));
        assert_eq!(r.df, 1.0);
        // Perfect independence.
        let indep = table(&[
            ("x", "p", 20),
            ("x", "q", 20),
            ("y", "p", 20),
            ("y", "q", 20),
        ]);
        let r2 = chi_squared_independence(&indep).unwrap();
        assert!(r2.statistic < 1e-9);
        assert!((r2.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independence_needs_2x2() {
        let one_row = table(&[("x", "p", 5), ("x", "q", 5)]);
        assert!(chi_squared_independence(&one_row).is_err());
    }

    #[test]
    fn gof_uniform_die() {
        // Fair-looking die.
        let fair = [10u64, 9, 11, 10, 12, 8];
        let probs = [1.0 / 6.0; 6];
        let r = chi_squared_goodness_of_fit(&fair, &probs).unwrap();
        assert_eq!(r.df, 5.0);
        assert!(!r.significant_at(0.05), "p = {}", r.p_value);
        // Heavily loaded die.
        let loaded = [60u64, 2, 2, 2, 2, 2];
        let r2 = chi_squared_goodness_of_fit(&loaded, &probs).unwrap();
        assert!(r2.significant_at(0.001));
    }

    #[test]
    fn gof_validates_inputs() {
        assert!(chi_squared_goodness_of_fit(&[1, 2], &[0.5]).is_err());
        assert!(chi_squared_goodness_of_fit(&[1, 2], &[0.7, 0.7]).is_err());
        assert!(chi_squared_goodness_of_fit(&[5], &[1.0]).is_err());
        assert!(chi_squared_goodness_of_fit(&[0, 0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn ks_one_sample_uniform_null() {
        // Evenly spaced points fit U(0,1) perfectly.
        let xs: Vec<f64> = (1..100).map(|i| f64::from(i) / 100.0).collect();
        let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(r.statistic < 0.02);
        assert!(r.p_value > 0.9);
        // Same points against a wrong null (all mass near 0).
        let r2 = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0).sqrt().sqrt()).unwrap();
        assert!(r2.significant_at(0.01), "p = {}", r2.p_value);
    }

    #[test]
    fn ks_two_sample_same_vs_shifted() {
        let xs: Vec<f64> = (0..200).map(|i| f64::from(i) / 10.0).collect();
        let same: Vec<f64> = xs.iter().map(|x| x + 0.001).collect();
        let r = ks_two_sample(&xs, &same).unwrap();
        assert!(!r.significant_at(0.05));
        let shifted: Vec<f64> = xs.iter().map(|x| x + 8.0).collect();
        let r2 = ks_two_sample(&xs, &shifted).unwrap();
        assert!(r2.significant_at(0.001));
        assert!(r2.statistic > 0.3);
    }

    #[test]
    fn ks_empty_errors() {
        assert!(ks_one_sample(&[], |_| 0.5).is_err());
        assert!(ks_two_sample(&[1.0], &[]).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_p_values_in_unit_interval(
            xs in proptest::collection::vec(0.0f64..1.0, 5..100)
        ) {
            let r = ks_one_sample(&xs, |x| x).unwrap();
            proptest::prop_assert!((0.0..=1.0).contains(&r.p_value));
            proptest::prop_assert!((0.0..=1.0).contains(&r.statistic));
        }
    }
}
