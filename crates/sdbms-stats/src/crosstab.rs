//! Cross-tabulation (contingency tables).
//!
//! §2.2: "a chi-squared test may be applied to a cross-tabulation of
//! data according to two attributes to see if the attributes depend on
//! each other (e.g. is the proportion of people who live past 40
//! dependent on race?)". A [`CrossTab`] counts co-occurrences of two
//! categorical columns; `crate::hypothesis` runs the test on it.

use std::collections::BTreeMap;

use sdbms_data::{Attribute, DataSet, DataType, Schema, Value};

use crate::error::{Result, StatsError};

/// A two-way contingency table of value co-occurrence counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossTab {
    row_attr: String,
    col_attr: String,
    /// Distinct row-attribute values, in display order.
    row_labels: Vec<String>,
    /// Distinct column-attribute values, in display order.
    col_labels: Vec<String>,
    /// counts[r][c].
    counts: Vec<Vec<u64>>,
}

impl CrossTab {
    /// Tabulate two columns of a data set. Rows where either value is
    /// missing are skipped (and counted in the return's second slot).
    pub fn from_dataset(ds: &DataSet, row_attr: &str, col_attr: &str) -> Result<(Self, usize)> {
        let ri = ds.schema().require(row_attr)?;
        let ci = ds.schema().require(col_attr)?;
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        let mut skipped = 0usize;
        for row in ds.rows() {
            let (rv, cv) = (&row[ri], &row[ci]);
            if rv.is_missing() || cv.is_missing() {
                skipped += 1;
                continue;
            }
            *counts
                .entry(rv.to_string())
                .or_default()
                .entry(cv.to_string())
                .or_insert(0) += 1;
        }
        let row_labels: Vec<String> = counts.keys().cloned().collect();
        let mut col_set: BTreeMap<String, ()> = BTreeMap::new();
        for cols in counts.values() {
            for c in cols.keys() {
                col_set.insert(c.clone(), ());
            }
        }
        let col_labels: Vec<String> = col_set.into_keys().collect();
        let table = row_labels
            .iter()
            .map(|r| {
                col_labels
                    .iter()
                    .map(|c| counts[r].get(c).copied().unwrap_or(0))
                    .collect()
            })
            .collect();
        Ok((
            CrossTab {
                row_attr: row_attr.to_string(),
                col_attr: col_attr.to_string(),
                row_labels,
                col_labels,
                counts: table,
            },
            skipped,
        ))
    }

    /// Attribute tabulated along rows.
    #[must_use]
    pub fn row_attr(&self) -> &str {
        &self.row_attr
    }

    /// Attribute tabulated along columns.
    #[must_use]
    pub fn col_attr(&self) -> &str {
        &self.col_attr
    }

    /// Row labels in display order.
    #[must_use]
    pub fn row_labels(&self) -> &[String] {
        &self.row_labels
    }

    /// Column labels in display order.
    #[must_use]
    pub fn col_labels(&self) -> &[String] {
        &self.col_labels
    }

    /// The count matrix (rows × cols).
    #[must_use]
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Count at `(row_label, col_label)`.
    #[must_use]
    pub fn count(&self, row: &str, col: &str) -> u64 {
        let Some(r) = self.row_labels.iter().position(|l| l == row) else {
            return 0;
        };
        let Some(c) = self.col_labels.iter().position(|l| l == col) else {
            return 0;
        };
        self.counts[r][c]
    }

    /// Row sums.
    #[must_use]
    pub fn row_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column sums.
    #[must_use]
    pub fn col_totals(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.col_labels.len()];
        for row in &self.counts {
            for (o, &c) in out.iter_mut().zip(row) {
                *o += c;
            }
        }
        out
    }

    /// Grand total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Render the table as a data set (one row per row label, one
    /// column per column label) — the "summary tables which are
    /// essentially cross tabulations" of [IKED81] that §5.1 compares
    /// against.
    pub fn to_dataset(&self) -> Result<DataSet> {
        let mut attrs = vec![Attribute::category(&self.row_attr, DataType::Str)];
        for c in &self.col_labels {
            attrs.push(Attribute::measured(
                &format!("{}={}", self.col_attr, c),
                DataType::Int,
            ));
        }
        let schema = Schema::new(attrs)?;
        let rows = self
            .row_labels
            .iter()
            .zip(&self.counts)
            .map(|(label, row)| {
                let mut r: Vec<Value> = vec![Value::Str(label.clone())];
                r.extend(
                    row.iter()
                        .map(|&c| Value::Int(i64::try_from(c).unwrap_or(i64::MAX))),
                );
                r
            })
            .collect();
        Ok(DataSet::from_rows(
            &format!("{}_x_{}", self.row_attr, self.col_attr),
            schema,
            rows,
        )?)
    }

    /// Expected counts under independence (row total × col total / n).
    pub fn expected(&self) -> Result<Vec<Vec<f64>>> {
        let n = self.total();
        if n == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let rt = self.row_totals();
        let ct = self.col_totals();
        Ok(rt
            .iter()
            .map(|&r| ct.iter().map(|&c| r as f64 * c as f64 / n as f64).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::census::figure1;

    fn demo() -> DataSet {
        let schema = Schema::new(vec![
            Attribute::category("SEX", DataType::Str),
            Attribute::category("SMOKER", DataType::Str),
        ])
        .unwrap();
        let mut ds = DataSet::new("d", schema);
        for (s, k, n) in [("M", "Y", 3), ("M", "N", 2), ("F", "Y", 1), ("F", "N", 4)] {
            for _ in 0..n {
                ds.push_row(vec![Value::Str(s.into()), Value::Str(k.into())])
                    .unwrap();
            }
        }
        ds
    }

    #[test]
    fn tabulation_counts() {
        let (ct, skipped) = CrossTab::from_dataset(&demo(), "SEX", "SMOKER").unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(ct.row_labels(), &["F".to_string(), "M".to_string()]);
        assert_eq!(ct.col_labels(), &["N".to_string(), "Y".to_string()]);
        assert_eq!(ct.count("M", "Y"), 3);
        assert_eq!(ct.count("F", "N"), 4);
        assert_eq!(ct.count("X", "Y"), 0);
        assert_eq!(ct.total(), 10);
        assert_eq!(ct.row_totals(), vec![5, 5]);
        assert_eq!(ct.col_totals(), vec![6, 4]);
    }

    #[test]
    fn missing_values_skipped() {
        let mut ds = demo();
        ds.invalidate(0, "SEX").unwrap();
        let (ct, skipped) = CrossTab::from_dataset(&ds, "SEX", "SMOKER").unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(ct.total(), 9);
    }

    #[test]
    fn expected_counts_sum_to_total() {
        let (ct, _) = CrossTab::from_dataset(&demo(), "SEX", "SMOKER").unwrap();
        let e = ct.expected().unwrap();
        let s: f64 = e.iter().flatten().sum();
        assert!((s - 10.0).abs() < 1e-9);
        assert!((e[0][0] - 3.0).abs() < 1e-9); // 5*6/10
    }

    #[test]
    fn figure1_crosstab_by_codes() {
        let (ct, _) = CrossTab::from_dataset(&figure1(), "SEX", "AGE_GROUP").unwrap();
        // Figure 1 has 4 age groups for each sex of race W, plus (M,B,1).
        assert_eq!(ct.count("M", "#1"), 2);
        assert_eq!(ct.count("F", "#3"), 1);
        assert_eq!(ct.total(), 9);
    }

    #[test]
    fn to_dataset_roundtrip_shape() {
        let (ct, _) = CrossTab::from_dataset(&demo(), "SEX", "SMOKER").unwrap();
        let ds = ct.to_dataset().unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.schema().names(), vec!["SEX", "SMOKER=N", "SMOKER=Y"]);
        assert_eq!(ds.value(1, "SMOKER=Y").unwrap(), &Value::Int(3));
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(CrossTab::from_dataset(&demo(), "SEX", "NOPE").is_err());
    }
}
