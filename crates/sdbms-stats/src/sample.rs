//! Sampling for exploratory responsiveness.
//!
//! §2.2: "in order to enhance responsiveness, the statistician may base
//! this preliminary analysis on a set of sample records drawn at random
//! from the data set… [later] other, perhaps enlarged, samples" are
//! used in the confirmatory phase. Experiment E7 measures the
//! speed/accuracy trade-off these routines enable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdbms_data::DataSet;

use crate::error::{Result, StatsError};

/// Simple random sample of `k` indices from `0..n` without
/// replacement (Floyd's algorithm — O(k) memory, no shuffle of `n`).
pub fn sample_indices(n: usize, k: usize, seed: u64) -> Result<Vec<usize>> {
    if k > n {
        return Err(StatsError::InvalidParameter(
            "sample size exceeds population",
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Reservoir sampling (algorithm R): `k` items from a stream of
/// unknown length, one pass — the right tool against a tape reel.
pub fn reservoir_sample<T>(items: impl IntoIterator<Item = T>, k: usize, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in items.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Bernoulli sampling: keep each item independently with probability
/// `p` (sample size is random; expectation `p·n`).
pub fn bernoulli_indices(n: usize, p: f64, seed: u64) -> Result<Vec<usize>> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter("probability not in [0,1]"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    Ok((0..n).filter(|_| rng.gen::<f64>() < p).collect())
}

/// A simple random sample of a data set's rows, as a new data set.
pub fn sample_dataset(ds: &DataSet, k: usize, seed: u64) -> Result<DataSet> {
    let idx = sample_indices(ds.len(), k, seed)?;
    let rows = idx.iter().map(|&i| ds.rows()[i].clone()).collect();
    Ok(DataSet::from_rows(
        &format!("{}_sample{}", ds.name(), k),
        ds.schema().clone(),
        rows,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::census::{microdata_census, CensusConfig};

    #[test]
    fn sample_indices_properties() {
        let s = sample_indices(1000, 100, 7).unwrap();
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        assert!(s.iter().all(|&i| i < 1000));
        // Determinism & seed sensitivity.
        assert_eq!(s, sample_indices(1000, 100, 7).unwrap());
        assert_ne!(s, sample_indices(1000, 100, 8).unwrap());
        // Edge cases.
        assert_eq!(sample_indices(5, 5, 1).unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(sample_indices(5, 6, 1).is_err());
        assert!(sample_indices(0, 0, 1).unwrap().is_empty());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Each of 10 strata should get ~k/10 of the sample.
        let mut hits = [0usize; 10];
        for seed in 0..30 {
            for i in sample_indices(1000, 200, seed).unwrap() {
                hits[i / 100] += 1;
            }
        }
        let expect = 30.0 * 200.0 / 10.0;
        for (i, &h) in hits.iter().enumerate() {
            let ratio = h as f64 / expect;
            assert!(
                (0.8..1.2).contains(&ratio),
                "stratum {i}: {h} hits vs {expect} expected"
            );
        }
    }

    #[test]
    fn reservoir_basics() {
        let r = reservoir_sample(0..1000, 50, 3);
        assert_eq!(r.len(), 50);
        let all: std::collections::HashSet<_> = r.iter().collect();
        assert_eq!(all.len(), 50, "no duplicates from a duplicate-free stream");
        // Short stream: everything kept.
        let short = reservoir_sample(0..5, 50, 3);
        assert_eq!(short, vec![0, 1, 2, 3, 4]);
        assert!(reservoir_sample(0..5, 0, 3).is_empty());
    }

    #[test]
    fn reservoir_is_unbiased_ish() {
        // Item 999 should appear in ~k/n of samples.
        let mut count = 0;
        for seed in 0..400 {
            if reservoir_sample(0..1000, 100, seed).contains(&999) {
                count += 1;
            }
        }
        // Expect ~40; allow generous slack.
        assert!((15..=70).contains(&count), "hit count {count}");
    }

    #[test]
    fn bernoulli_expectation() {
        let s = bernoulli_indices(10_000, 0.1, 11).unwrap();
        assert!((800..1200).contains(&s.len()), "got {}", s.len());
        assert!(bernoulli_indices(10, 1.5, 0).is_err());
        assert_eq!(bernoulli_indices(10, 0.0, 0).unwrap().len(), 0);
        assert_eq!(bernoulli_indices(10, 1.0, 0).unwrap().len(), 10);
    }

    #[test]
    fn sample_dataset_estimates_mean() {
        let ds = microdata_census(&CensusConfig {
            rows: 20_000,
            invalid_fraction: 0.0,
            outlier_fraction: 0.0,
            ..Default::default()
        })
        .unwrap();
        let (full, _) = ds.column_f64("INCOME").unwrap();
        let full_mean = crate::descriptive::mean(&full).unwrap();
        let s = sample_dataset(&ds, 2_000, 42).unwrap();
        assert_eq!(s.len(), 2_000);
        assert_eq!(s.schema(), ds.schema());
        let (sampled, _) = s.column_f64("INCOME").unwrap();
        let sample_mean = crate::descriptive::mean(&sampled).unwrap();
        let rel_err = (sample_mean - full_mean).abs() / full_mean;
        assert!(rel_err < 0.05, "relative error {rel_err}");
    }
}
