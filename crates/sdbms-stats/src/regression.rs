//! Simple linear regression with residuals.
//!
//! §3.2's Management Database example: "the residuals of a model may
//! be required for several 'goodness of fit' tests [so] they are
//! typically stored as a new attribute in a data set… Updating even a
//! single value in the attribute upon which the residuals depend
//! requires regeneration of the entire vector (since the model may
//! change)." [`LinearFit::residuals`] is that vector, and the
//! *regenerate* maintenance rule in `sdbms-management` exists because
//! of it.

use crate::error::{Result, StatsError};

/// An ordinary-least-squares fit of `y = intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Estimated intercept.
    pub intercept: f64,
    /// Estimated slope.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_std_err: f64,
    /// Residual standard error (√(SSE / (n−2))).
    pub residual_std_err: f64,
    /// Number of observations.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Residual for one observation.
    #[must_use]
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Fit `y ~ x` by ordinary least squares.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
    if xs.len() != ys.len() {
        return Err(StatsError::MismatchedLengths {
            left: xs.len(),
            right: ys.len(),
        });
    }
    let n = xs.len();
    if n < 3 {
        return Err(StatsError::NotEnoughData { needed: 3, got: n });
    }
    let nf = n as f64;
    let mx = crate::descriptive::sum(xs) / nf;
    let my = crate::descriptive::sum(ys) / nf;
    let (mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0);
    for (&x, &y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mx, y - my);
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter(
            "regression undefined: x is constant",
        ));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let sse = (syy - slope * sxy).max(0.0);
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - sse / syy };
    let residual_var = sse / (nf - 2.0);
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
        slope_std_err: (residual_var / sxx).sqrt(),
        residual_std_err: residual_var.sqrt(),
        n,
    })
}

/// Fit and return the residual vector (the derived attribute the
/// Management Database's *regenerate* rule maintains).
pub fn residuals(xs: &[f64], ys: &[f64]) -> Result<(LinearFit, Vec<f64>)> {
    let fit = linear_fit(xs, ys)?;
    let res = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| fit.residual(x, y))
        .collect();
    Ok((fit, res))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 1.0).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.residual_std_err < 1e-9);
        assert!((fit.predict(100.0) - 251.0).abs() < 1e-9);
    }

    #[test]
    fn residuals_sum_to_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [2.1, 3.9, 6.2, 8.1, 9.8, 12.3];
        let (fit, res) = residuals(&xs, &ys).unwrap();
        assert_eq!(res.len(), 6);
        let s: f64 = res.iter().sum();
        assert!(s.abs() < 1e-9, "OLS residuals sum to 0, got {s}");
        // Residuals orthogonal to x.
        let dot: f64 = res.iter().zip(&xs).map(|(r, x)| r * x).sum();
        assert!(dot.abs() < 1e-9);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn noisy_fit_reasonable() {
        // y = 10 + 3x with deterministic "noise".
        let xs: Vec<f64> = (0..200).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 10.0 + 3.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!((fit.intercept - 10.0).abs() < 1.0);
        assert!(fit.slope_std_err > 0.0);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn error_cases() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn constant_y_gives_zero_slope_full_r2() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [7.0, 7.0, 7.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 7.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_exact_lines_always_recovered(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
            n in 3usize..50
        ) {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
            let fit = linear_fit(&xs, &ys).unwrap();
            proptest::prop_assert!((fit.slope - slope).abs() < 1e-6);
            proptest::prop_assert!((fit.intercept - intercept).abs() < 1e-5);
        }
    }
}
