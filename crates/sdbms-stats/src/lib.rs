//! # sdbms-stats — the statistical operations the DBMS serves
//!
//! The paper's Summary Database caches "results of query (or function)
//! executions" (§3.2); this crate provides those functions — the S/SAS
//! substitute of DESIGN.md's substitution table:
//!
//! - [`descriptive`] — min, max, mean, variance, sd, skewness,
//!   kurtosis, the `describe` one-pass summary, and the M ± k·SD band
//!   count of §3.1.
//! - [`quantile`] — type-7 quantiles, median, quartiles, five-number
//!   summaries, quickselect order statistics, trimmed means.
//! - [`accumulator`] — Welford/Chan incremental moments (add / remove /
//!   merge) and incremental min/max with rescan signaling: the algebra
//!   behind finite differencing (§4.2).
//! - [`histogram`] — the two-vector histograms the Summary Database
//!   stores, with O(1) add/remove.
//! - [`frequency`] — unique counts, modes, frequency measures.
//! - [`correlation`] — covariance, Pearson, Spearman.
//! - [`regression`] — simple OLS with the residual vector that
//!   motivates the Management Database's *regenerate* rule.
//! - [`crosstab`] — contingency tables.
//! - [`hypothesis`] — chi-squared independence / goodness-of-fit and
//!   Kolmogorov–Smirnov tests with real p-values (via [`special`]).
//! - [`sample`] — simple random, reservoir, and Bernoulli sampling for
//!   exploratory responsiveness (§2.2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accumulator;
pub mod correlation;
pub mod crosstab;
pub mod descriptive;
pub mod error;
pub mod frequency;
pub mod histogram;
pub mod hypothesis;
pub mod quantile;
pub mod regression;
pub mod sample;
pub mod special;

pub use accumulator::{ExtremeAfterRemove, MinMaxAcc, Moments};
pub use crosstab::CrossTab;
pub use descriptive::{describe, Describe};
pub use error::{Result, StatsError};
pub use frequency::FrequencyTable;
pub use histogram::Histogram;
pub use hypothesis::TestResult;
pub use regression::LinearFit;
