//! Histograms.
//!
//! §2.2: data checking "is typically done using histograms or range
//! checking programs"; §3.2 stores histograms in the Summary Database
//! "as two vectors (one for specifying the ranges and the other for the
//! number of values that fall in each range)". [`Histogram`] is exactly
//! that pair of vectors, plus below/above overflow counts so it can be
//! incrementally maintained under updates that move values outside the
//! original range.

use crate::error::{Result, StatsError};

/// An equi-width histogram: `edges` (len = bins + 1) and `counts`
/// (len = bins), with overflow counters on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// An empty histogram with `bins` equal-width bins spanning
    /// `[lo, hi)`.
    pub fn with_range(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be > 0"));
        }
        if lo >= hi || lo.is_nan() || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::InvalidParameter(
                "histogram range must be finite with lo < hi",
            ));
        }
        let width = (hi - lo) / bins as f64;
        let edges = (0..=bins).map(|i| lo + width * i as f64).collect();
        Ok(Histogram {
            edges,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        })
    }

    /// Build from data with `bins` bins spanning the data range
    /// (max is placed in the last bin).
    pub fn from_data(xs: &[f64], bins: usize) -> Result<Self> {
        let lo = crate::descriptive::min(xs)?;
        let hi = crate::descriptive::max(xs)?;
        let hi = if lo == hi { lo + 1.0 } else { hi };
        let mut h = Self::with_range(lo, hi + (hi - lo) * 1e-9, bins)?;
        for &x in xs {
            h.add(x);
        }
        Ok(h)
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin edges (`bins + 1` values, ascending).
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first edge.
    #[must_use]
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Observations at or above the last edge.
    #[must_use]
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations recorded (including overflow).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.below + self.above + self.counts.iter().sum::<u64>()
    }

    fn bin_of(&self, x: f64) -> Option<usize> {
        let lo = self.edges[0];
        // lint: allow(no-panic): with_range rejects bins == 0, so every histogram has at least two edges
        let hi = *self.edges.last().expect("edges nonempty");
        if x < lo || x >= hi || x.is_nan() {
            return None;
        }
        let width = (hi - lo) / self.counts.len() as f64;
        // lint: allow(lossy-cast): the truncation IS the binning operation; x in [lo, hi) bounds the quotient to [0, bins)
        let i = ((x - lo) / width) as usize;
        Some(i.min(self.counts.len() - 1))
    }

    /// Record one observation — O(1).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.edges[0] => self.below += 1,
            None => self.above += 1,
        }
    }

    /// Remove one (previously recorded) observation — O(1). Saturates
    /// at zero if the observation was never recorded.
    pub fn remove(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        match self.bin_of(x) {
            Some(i) => self.counts[i] = self.counts[i].saturating_sub(1),
            None if x < self.edges[0] => self.below = self.below.saturating_sub(1),
            None => self.above = self.above.saturating_sub(1),
        }
    }

    /// The midpoint of the fullest bin — the standard histogram mode
    /// estimate for continuous data.
    pub fn mode_estimate(&self) -> Result<f64> {
        let (i, &c) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })?;
        if c == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        Ok((self.edges[i] + self.edges[i + 1]) / 2.0)
    }

    /// Merge a histogram with identical edges into this one.
    pub fn merge(&mut self, other: &Histogram) -> Result<()> {
        if self.edges != other.edges {
            return Err(StatsError::InvalidParameter(
                "histogram merge requires identical edges",
            ));
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.below += other.below;
        self.above += other.above;
        Ok(())
    }
}

/// Freedman–Diaconis bin count suggestion: width = 2·IQR·n^(-1/3).
pub fn freedman_diaconis_bins(xs: &[f64]) -> Result<usize> {
    if xs.len() < 4 {
        return Err(StatsError::NotEnoughData {
            needed: 4,
            got: xs.len(),
        });
    }
    let (q1, _, q3) = crate::quantile::quartiles(xs)?;
    let iqr = q3 - q1;
    let lo = crate::descriptive::min(xs)?;
    let hi = crate::descriptive::max(xs)?;
    if iqr <= 0.0 || hi <= lo {
        return Ok(1);
    }
    let width = 2.0 * iqr / (xs.len() as f64).cbrt();
    // lint: allow(lossy-cast): float-to-int casts saturate, and the clamp to [1, 10_000] immediately bounds the result
    Ok((((hi - lo) / width).ceil() as usize).clamp(1, 10_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_data_covers_everything() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let h = Histogram::from_data(&xs, 10).unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.below(), 0);
        assert_eq!(h.above(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        // Even spread: every bin has 10.
        assert!(h.counts().iter().all(|&c| c == 10), "{:?}", h.counts());
    }

    #[test]
    fn overflow_counters() {
        let mut h = Histogram::with_range(0.0, 10.0, 5).unwrap();
        h.add(-1.0);
        h.add(5.0);
        h.add(10.0); // at the top edge -> above
        h.add(99.0);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut h = Histogram::with_range(0.0, 100.0, 10).unwrap();
        for &x in &[5.0, 15.0, 15.0, 95.0, -3.0, 200.0] {
            h.add(x);
        }
        let snapshot = h.clone();
        h.add(44.0);
        h.remove(44.0);
        assert_eq!(h, snapshot);
        h.remove(-3.0);
        assert_eq!(h.below(), 0);
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::with_range(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        h.remove(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn mode_estimate_finds_peak() {
        let mut xs = vec![50.0; 30];
        xs.extend((0..100).map(f64::from));
        let h = Histogram::from_data(&xs, 10).unwrap();
        let m = h.mode_estimate().unwrap();
        assert!((45.0..65.0).contains(&m), "mode estimate {m}");
        let empty = Histogram::with_range(0.0, 1.0, 4).unwrap();
        assert!(empty.mode_estimate().is_err());
    }

    #[test]
    fn merge_requires_same_edges() {
        let mut a = Histogram::with_range(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::with_range(0.0, 10.0, 5).unwrap();
        a.add(1.0);
        b.add(2.0);
        b.add(-5.0);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 3);
        assert_eq!(a.below(), 1);
        let c = Histogram::with_range(0.0, 20.0, 5).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn invalid_construction() {
        assert!(Histogram::with_range(0.0, 1.0, 0).is_err());
        assert!(Histogram::with_range(1.0, 1.0, 4).is_err());
        assert!(Histogram::with_range(2.0, 1.0, 4).is_err());
        assert!(Histogram::with_range(f64::NEG_INFINITY, 1.0, 4).is_err());
    }

    #[test]
    fn fd_bins_reasonable() {
        let xs: Vec<f64> = (0..1000).map(f64::from).collect();
        let bins = freedman_diaconis_bins(&xs).unwrap();
        assert!((5..=30).contains(&bins), "bins {bins}");
        assert_eq!(freedman_diaconis_bins(&[5.0; 10]).unwrap(), 1);
        assert!(freedman_diaconis_bins(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_data_single_value() {
        let h = Histogram::from_data(&[7.0, 7.0, 7.0], 4).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.below() + h.above(), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_merge_matches_single_fill(
            a in proptest::collection::vec(-20.0f64..120.0, 0..80),
            b in proptest::collection::vec(-20.0f64..120.0, 0..80),
            c in proptest::collection::vec(-20.0f64..120.0, 0..80),
            bins in 1usize..16
        ) {
            // Shared edges: merge must equal a single pass over the
            // concatenation, exactly (integer counts), and be
            // associative.
            let fill = |xs: &[f64]| {
                let mut h = Histogram::with_range(0.0, 100.0, bins).unwrap();
                for &x in xs {
                    h.add(x);
                }
                h
            };
            let (ha, hb, hc) = (fill(&a), fill(&b), fill(&c));
            let mut left = ha.clone();
            left.merge(&hb).unwrap();
            left.merge(&hc).unwrap();
            let mut bc = hb.clone();
            bc.merge(&hc).unwrap();
            let mut right = ha.clone();
            right.merge(&bc).unwrap();
            proptest::prop_assert_eq!(&left, &right);
            let all: Vec<f64> = a.iter().chain(b.iter()).chain(c.iter()).copied().collect();
            proptest::prop_assert_eq!(&left, &fill(&all));
            proptest::prop_assert_eq!(left.total(), all.len() as u64);
        }

        #[test]
        fn prop_total_equals_input_len(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..500),
            bins in 1usize..50
        ) {
            let h = Histogram::from_data(&xs, bins).unwrap();
            proptest::prop_assert_eq!(h.total(), xs.len() as u64);
            proptest::prop_assert_eq!(h.below(), 0);
            proptest::prop_assert_eq!(h.above(), 0);
        }
    }
}
