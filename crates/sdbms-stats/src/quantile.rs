//! Quantiles and order statistics.
//!
//! §3.1's examples: "the analyst may be interested in finding out the
//! 5th and 95th quantiles. Later, the analyst may ask for the trimmed
//! mean… bounded by the 5th and 95th quantile values", and less general
//! order statistics like "the 10th largest value". Quantiles use the
//! type-7 (linear interpolation) definition; exact order statistics use
//! quickselect so a single order statistic costs O(n) average rather
//! than a sort.

use crate::error::{Result, StatsError};

/// `q`-th quantile (0 ≤ q ≤ 1), type-7 linear interpolation (R's
/// default). NaNs must be filtered by the caller.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile q must be in [0,1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, q))
}

/// [`quantile`] over data the caller already sorted ascending.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    // lint: allow(lossy-cast): h lies in [0, n-1] under the documented q in [0,1] contract (validated by `quantile`), so floor/ceil fit in usize exactly
    let lo = h.floor() as usize;
    // lint: allow(lossy-cast): same bound as the floor above
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// First quartile, median, third quartile.
pub fn quartiles(xs: &[f64]) -> Result<(f64, f64, f64)> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok((
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
    ))
}

/// Five-number summary: min, Q1, median, Q3, max.
pub fn five_number_summary(xs: &[f64]) -> Result<[f64; 5]> {
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok([
        sorted[0],
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
        sorted[sorted.len() - 1],
    ])
}

/// Exact `k`-th smallest value (0-based) via quickselect — O(n)
/// average, no full sort.
pub fn kth_smallest(xs: &[f64], k: usize) -> Result<f64> {
    if k >= xs.len() {
        return Err(StatsError::NotEnoughData {
            needed: k + 1,
            got: xs.len(),
        });
    }
    let mut buf = xs.to_vec();
    Ok(quickselect(&mut buf, k))
}

/// Exact `k`-th largest value (0-based: `k = 0` is the maximum).
pub fn kth_largest(xs: &[f64], k: usize) -> Result<f64> {
    if k >= xs.len() {
        return Err(StatsError::NotEnoughData {
            needed: k + 1,
            got: xs.len(),
        });
    }
    kth_smallest(xs, xs.len() - 1 - k)
}

fn quickselect(buf: &mut [f64], k: usize) -> f64 {
    let mut lo = 0usize;
    let mut hi = buf.len();
    let mut k = k;
    loop {
        if hi - lo <= 8 {
            buf[lo..hi].sort_by(f64::total_cmp);
            return buf[lo + k];
        }
        // Median-of-three pivot to dodge quadratic behavior on sorted
        // input.
        let mid = lo + (hi - lo) / 2;
        let (a, b, c) = (buf[lo], buf[mid], buf[hi - 1]);
        let pivot = if a.total_cmp(&b).is_le() {
            if b.total_cmp(&c).is_le() {
                b
            } else if a.total_cmp(&c).is_le() {
                c
            } else {
                a
            }
        } else if a.total_cmp(&c).is_le() {
            a
        } else if b.total_cmp(&c).is_le() {
            c
        } else {
            b
        };
        // Three-way partition.
        let (mut lt, mut i, mut gt) = (lo, lo, hi);
        while i < gt {
            match buf[i].total_cmp(&pivot) {
                std::cmp::Ordering::Less => {
                    buf.swap(lt, i);
                    lt += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    gt -= 1;
                    buf.swap(i, gt);
                }
                std::cmp::Ordering::Equal => i += 1,
            }
        }
        let n_lt = lt - lo;
        let n_eq = gt - lt;
        if k < n_lt {
            hi = lt;
        } else if k < n_lt + n_eq {
            return pivot;
        } else {
            k -= n_lt + n_eq;
            lo = gt;
        }
    }
}

/// Trimmed mean: the mean of observations between the `lo_q` and
/// `hi_q` quantiles inclusive (§3.1's "mean of all the values in a
/// given range bounded by the 5th and 95th quantile values").
pub fn trimmed_mean(xs: &[f64], lo_q: f64, hi_q: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&lo_q) || !(0.0..=1.0).contains(&hi_q) || lo_q >= hi_q {
        return Err(StatsError::InvalidParameter(
            "trim bounds must satisfy 0 <= lo < hi <= 1",
        ));
    }
    if xs.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let lo_v = quantile_sorted(&sorted, lo_q);
    let hi_v = quantile_sorted(&sorted, hi_q);
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|x| (lo_v..=hi_v).contains(x))
        .collect();
    if kept.is_empty() {
        return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
    }
    Ok(crate::descriptive::sum(&kept) / kept.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn quantile_type7_reference() {
        // R: quantile(1:10, c(.25,.5,.75)) -> 3.25, 5.50, 7.75
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!((quantile(&xs, 0.25).unwrap() - 3.25).abs() < 1e-12);
        assert!((quantile(&xs, 0.5).unwrap() - 5.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75).unwrap() - 7.75).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 10.0);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn quartiles_and_five_numbers_agree() {
        let xs: Vec<f64> = (0..101).map(f64::from).rev().collect();
        let (q1, q2, q3) = quartiles(&xs).unwrap();
        let five = five_number_summary(&xs).unwrap();
        assert_eq!(five, [0.0, q1, q2, q3, 100.0]);
        assert_eq!(q2, 50.0);
    }

    #[test]
    fn kth_order_statistics() {
        let xs = [9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0];
        assert_eq!(kth_smallest(&xs, 0).unwrap(), 1.0);
        assert_eq!(kth_smallest(&xs, 4).unwrap(), 5.0);
        assert_eq!(kth_smallest(&xs, 8).unwrap(), 9.0);
        // "The 10th largest value" style query (here: 2nd largest).
        assert_eq!(kth_largest(&xs, 0).unwrap(), 9.0);
        assert_eq!(kth_largest(&xs, 1).unwrap(), 8.0);
        assert!(kth_smallest(&xs, 9).is_err());
    }

    #[test]
    fn quickselect_handles_duplicates_and_sorted_input() {
        let mut xs: Vec<f64> = (0..1000).map(|i| f64::from(i / 10)).collect();
        assert_eq!(kth_smallest(&xs, 500).unwrap(), 50.0);
        xs.reverse();
        assert_eq!(kth_smallest(&xs, 0).unwrap(), 0.0);
        let all_same = vec![3.0; 100];
        assert_eq!(kth_smallest(&all_same, 57).unwrap(), 3.0);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        let mut xs: Vec<f64> = (1..=99).map(f64::from).collect();
        xs.push(1e9); // wild outlier
        let plain = crate::descriptive::mean(&xs).unwrap();
        let trimmed = trimmed_mean(&xs, 0.05, 0.95).unwrap();
        assert!(plain > 1e6);
        assert!((45.0..56.0).contains(&trimmed), "trimmed {trimmed}");
        assert!(trimmed_mean(&xs, 0.9, 0.1).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_quickselect_matches_sort(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
            k_idx in proptest::prelude::any::<proptest::sample::Index>()
        ) {
            let k = k_idx.index(xs.len());
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            proptest::prop_assert_eq!(kth_smallest(&xs, k).unwrap(), sorted[k]);
        }

        #[test]
        fn prop_quantiles_monotone(
            xs in proptest::collection::vec(-1e6f64..1e6, 2..200)
        ) {
            let q25 = quantile(&xs, 0.25).unwrap();
            let q50 = quantile(&xs, 0.50).unwrap();
            let q75 = quantile(&xs, 0.75).unwrap();
            proptest::prop_assert!(q25 <= q50 && q50 <= q75);
        }
    }
}
