//! Streaming / incremental accumulators.
//!
//! These are the algebraic building blocks behind §4.2's finite
//! differencing: a cached aggregate can be *downdated* and *updated*
//! from a value change without rescanning the column, as long as the
//! function's state is expressible in a small constant-size summary
//! (count, sum, sum of squares…). Order statistics are not — the paper
//! handles those with the histogram-window scheme in `sdbms-summary`.
//!
//! [`Moments`] maintains count/mean/M2 with Welford-style `add`,
//! `remove`, and `merge`, giving exact incremental mean and variance.
//! [`MinMaxAcc`] shows the asymmetric case the paper calls out: adding
//! a value is trivial, but removing the current extreme requires a
//! rescan — `remove` reports whether the cached extreme survived.

use crate::error::{Result, StatsError};

/// Incremental count/mean/variance via Welford's recurrence.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a full pass over data.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut acc = Self::new();
        for &x in xs {
            acc.add(x);
        }
        acc
    }

    /// Rebuild from raw parts (count, mean, M2) — for deserializing a
    /// persisted accumulator. Parts must come from [`Moments::parts`].
    #[must_use]
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        Moments { n, mean, m2 }
    }

    /// Raw parts `(count, mean, M2)` for serialization.
    #[must_use]
    pub fn parts(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Observation count.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (error if empty).
    pub fn mean(&self) -> Result<f64> {
        if self.n == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        Ok(self.mean)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.n as f64
    }

    /// Sample variance (n−1 denominator).
    pub fn variance(&self) -> Result<f64> {
        if self.n < 2 {
            return Err(StatsError::NotEnoughData {
                needed: 2,
                got: usize::try_from(self.n).unwrap_or(usize::MAX),
            });
        }
        Ok(self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Result<f64> {
        Ok(self.variance()?.sqrt())
    }

    /// Add one observation — O(1).
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Remove one (previously added) observation — O(1). This is the
    /// "derivative" of the mean/variance computation in the finite
    /// differencing sense.
    pub fn remove(&mut self, x: f64) -> Result<()> {
        if self.n == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if self.n == 1 {
            *self = Self::new();
            return Ok(());
        }
        let n = self.n as f64;
        let mean_without = (n * self.mean - x) / (n - 1.0);
        self.m2 -= (x - self.mean) * (x - mean_without);
        // Guard tiny negative residue from float cancellation.
        if self.m2 < 0.0 {
            self.m2 = 0.0;
        }
        self.mean = mean_without;
        self.n -= 1;
        Ok(())
    }

    /// Replace observation `old` with `new` — O(1).
    pub fn replace(&mut self, old: f64, new: f64) -> Result<()> {
        self.remove(old)?;
        self.add(new);
        Ok(())
    }

    /// Add `n` observations of the same value `x` — the run-aware
    /// entry point for consuming `(value, run-length)` pairs from
    /// compressed pages.
    ///
    /// This deliberately replays the per-value Welford recurrence `n`
    /// times rather than folding the run in closed form: the executor's
    /// determinism contract requires a run-fed profile to be
    /// **bit-identical** to the decoded per-row path, and the two
    /// formulations round differently. The loop is a few flops per row
    /// (runs are bounded by the 256-row segment), dwarfed by the value
    /// decode and frequency-table work the run path eliminates.
    pub fn add_run(&mut self, x: f64, n: usize) {
        for _ in 0..n {
            self.add(x);
        }
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.n += other.n;
    }
}

/// What happened to a cached extreme after removing a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtremeAfterRemove {
    /// The cached min/max is still valid.
    Unchanged,
    /// The removed value *was* the extreme: a rescan is required.
    /// (§4.2: "most updates to the data set will not affect the min or
    /// max values" — this variant is the rare case.)
    NeedsRescan,
}

/// Incrementally maintained min/max with occurrence counts for the
/// current extremes, so removing a duplicate of the extreme does not
/// force a rescan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinMaxAcc {
    state: Option<MinMaxState>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct MinMaxState {
    min: f64,
    min_count: u64,
    max: f64,
    max_count: u64,
}

impl MinMaxAcc {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a full pass.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut acc = Self::new();
        for &x in xs {
            acc.add(x);
        }
        acc
    }

    /// Raw parts `(min, min_count, max, max_count)` for serialization
    /// (`None` when empty).
    #[must_use]
    pub fn parts(&self) -> Option<(f64, u64, f64, u64)> {
        self.state.map(|s| (s.min, s.min_count, s.max, s.max_count))
    }

    /// Rebuild from raw parts — for deserializing a persisted
    /// accumulator. Parts must come from [`MinMaxAcc::parts`].
    #[must_use]
    pub fn from_parts(parts: Option<(f64, u64, f64, u64)>) -> Self {
        MinMaxAcc {
            state: parts.map(|(min, min_count, max, max_count)| MinMaxState {
                min,
                min_count,
                max,
                max_count,
            }),
        }
    }

    /// Current minimum.
    pub fn min(&self) -> Result<f64> {
        self.state
            .map(|s| s.min)
            .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })
    }

    /// Current maximum.
    pub fn max(&self) -> Result<f64> {
        self.state
            .map(|s| s.max)
            .ok_or(StatsError::NotEnoughData { needed: 1, got: 0 })
    }

    /// Add one observation — O(1), never needs a rescan.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        match &mut self.state {
            None => {
                self.state = Some(MinMaxState {
                    min: x,
                    min_count: 1,
                    max: x,
                    max_count: 1,
                });
            }
            Some(s) => {
                if x < s.min {
                    s.min = x;
                    s.min_count = 1;
                } else if x == s.min {
                    s.min_count += 1;
                }
                if x > s.max {
                    s.max = x;
                    s.max_count = 1;
                } else if x == s.max {
                    s.max_count += 1;
                }
            }
        }
    }

    /// Add `n` observations of the same value `x` in O(1) — exactly
    /// the state `n` successive [`MinMaxAcc::add`] calls produce
    /// (extreme comparisons are order-independent and the occurrence
    /// counts are integers), so run-fed and per-row scans agree
    /// bit-for-bit.
    pub fn add_run(&mut self, x: f64, n: usize) {
        if n == 0 || x.is_nan() {
            return;
        }
        let n = n as u64; // lint: allow(lossy-cast): run lengths fit u64 on all supported targets
        match &mut self.state {
            None => {
                self.state = Some(MinMaxState {
                    min: x,
                    min_count: n,
                    max: x,
                    max_count: n,
                });
            }
            Some(s) => {
                if x < s.min {
                    s.min = x;
                    s.min_count = n;
                } else if x == s.min {
                    s.min_count += n;
                }
                if x > s.max {
                    s.max = x;
                    s.max_count = n;
                } else if x == s.max {
                    s.max_count += n;
                }
            }
        }
    }

    /// Merge another accumulator, as if every observation behind
    /// `other` had been added to `self`. Exact (min/max are
    /// associative), so parallel partial merges agree with a serial
    /// scan bit-for-bit; counts of coinciding extremes sum.
    pub fn merge(&mut self, other: &MinMaxAcc) {
        let Some(o) = other.state else { return };
        match &mut self.state {
            None => self.state = Some(o),
            Some(s) => {
                if o.min < s.min {
                    s.min = o.min;
                    s.min_count = o.min_count;
                } else if o.min == s.min {
                    s.min_count += o.min_count;
                }
                if o.max > s.max {
                    s.max = o.max;
                    s.max_count = o.max_count;
                } else if o.max == s.max {
                    s.max_count += o.max_count;
                }
            }
        }
    }

    /// Remove one observation. Interior removals are absorbed; removing
    /// the last copy of the current extreme reports
    /// [`ExtremeAfterRemove::NeedsRescan`], at which point the caller
    /// must rebuild from data (the accumulator is reset).
    pub fn remove(&mut self, x: f64) -> ExtremeAfterRemove {
        let Some(s) = &mut self.state else {
            return ExtremeAfterRemove::NeedsRescan;
        };
        if x.is_nan() {
            return ExtremeAfterRemove::Unchanged;
        }
        if x == s.min {
            if s.min_count > 1 {
                s.min_count -= 1;
            } else {
                self.state = None;
                return ExtremeAfterRemove::NeedsRescan;
            }
        }
        // `x` can equal both extremes when all values coincide; the
        // min branch above already reset in that case.
        if let Some(s) = &mut self.state {
            if x == s.max {
                if s.max_count > 1 {
                    s.max_count -= 1;
                } else {
                    self.state = None;
                    return ExtremeAfterRemove::NeedsRescan;
                }
            }
        }
        ExtremeAfterRemove::Unchanged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn moments_match_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let acc = Moments::from_slice(&xs);
        assert_eq!(acc.count(), 8);
        assert_eq!(acc.mean().unwrap(), descriptive::mean(&xs).unwrap());
        assert!((acc.variance().unwrap() - descriptive::variance(&xs).unwrap()).abs() < 1e-12);
        assert!((acc.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn add_remove_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let mut acc = Moments::from_slice(&xs);
        acc.add(99.0);
        acc.remove(99.0).unwrap();
        assert_eq!(acc.count(), 4);
        assert!((acc.mean().unwrap() - 2.5).abs() < 1e-9);
        assert!((acc.variance().unwrap() - descriptive::variance(&xs).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn remove_down_to_empty() {
        let mut acc = Moments::from_slice(&[5.0]);
        acc.remove(5.0).unwrap();
        assert_eq!(acc.count(), 0);
        assert!(acc.mean().is_err());
        assert!(acc.remove(1.0).is_err());
    }

    #[test]
    fn replace_equals_full_recompute() {
        let mut xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        let mut acc = Moments::from_slice(&xs);
        acc.replace(30.0, 35.0).unwrap();
        xs[2] = 35.0;
        assert!((acc.mean().unwrap() - descriptive::mean(&xs).unwrap()).abs() < 1e-9);
        assert!((acc.variance().unwrap() - descriptive::variance(&xs).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_concatenation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut acc = Moments::from_slice(&a);
        acc.merge(&Moments::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(acc.count(), 7);
        assert!((acc.mean().unwrap() - descriptive::mean(&all).unwrap()).abs() < 1e-12);
        assert!((acc.variance().unwrap() - descriptive::variance(&all).unwrap()).abs() < 1e-12);
        // Merging an empty accumulator is a no-op in both directions.
        let mut e = Moments::new();
        e.merge(&acc);
        assert_eq!(e, acc);
        acc.merge(&Moments::new());
        assert_eq!(e, acc);
    }

    #[test]
    fn minmax_interior_removal_is_absorbed() {
        let mut acc = MinMaxAcc::from_slice(&[1.0, 5.0, 9.0]);
        assert_eq!(acc.remove(5.0), ExtremeAfterRemove::Unchanged);
        assert_eq!(acc.min().unwrap(), 1.0);
        assert_eq!(acc.max().unwrap(), 9.0);
    }

    #[test]
    fn minmax_extreme_removal_needs_rescan() {
        let mut acc = MinMaxAcc::from_slice(&[1.0, 5.0, 9.0]);
        assert_eq!(acc.remove(1.0), ExtremeAfterRemove::NeedsRescan);
        assert!(acc.min().is_err(), "accumulator reset after rescan signal");
    }

    #[test]
    fn minmax_duplicate_extreme_survives_one_removal() {
        let mut acc = MinMaxAcc::from_slice(&[1.0, 1.0, 9.0]);
        assert_eq!(acc.remove(1.0), ExtremeAfterRemove::Unchanged);
        assert_eq!(acc.min().unwrap(), 1.0);
        assert_eq!(acc.remove(1.0), ExtremeAfterRemove::NeedsRescan);
    }

    #[test]
    fn minmax_all_equal_values() {
        let mut acc = MinMaxAcc::from_slice(&[4.0, 4.0]);
        assert_eq!(acc.remove(4.0), ExtremeAfterRemove::Unchanged);
        assert_eq!(acc.min().unwrap(), 4.0);
        assert_eq!(acc.max().unwrap(), 4.0);
        assert_eq!(acc.remove(4.0), ExtremeAfterRemove::NeedsRescan);
    }

    #[test]
    fn minmax_nan_ignored() {
        let mut acc = MinMaxAcc::new();
        acc.add(f64::NAN);
        assert!(acc.min().is_err());
        acc.add(2.0);
        acc.add(f64::NAN);
        assert_eq!(acc.min().unwrap(), 2.0);
        assert_eq!(acc.remove(f64::NAN), ExtremeAfterRemove::Unchanged);
    }

    #[test]
    fn minmax_merge_matches_concatenation() {
        let a = [3.0, -1.0, 7.0, -1.0];
        let b = [9.0, -1.0, 2.0];
        let mut merged = MinMaxAcc::from_slice(&a);
        merged.merge(&MinMaxAcc::from_slice(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, MinMaxAcc::from_slice(&all));
        assert_eq!(merged.parts(), Some((-1.0, 3, 9.0, 1)));
        // Empty merges are no-ops in both directions.
        let mut e = MinMaxAcc::new();
        e.merge(&merged);
        assert_eq!(e, merged);
        merged.merge(&MinMaxAcc::new());
        assert_eq!(e, merged);
    }

    #[test]
    fn add_run_bit_identical_to_repeated_adds() {
        let runs: [(f64, usize); 5] = [(3.5, 4), (-1.0, 1), (3.5, 2), (f64::NAN, 3), (0.25, 7)];
        let mut by_run_m = Moments::new();
        let mut by_one_m = Moments::new();
        let mut by_run_x = MinMaxAcc::new();
        let mut by_one_x = MinMaxAcc::new();
        // NaN poisons the moments identically down both paths, so
        // compare bit patterns, not float equality (NaN != NaN).
        let bits = |m: &Moments| {
            let (n, mean, m2) = m.parts();
            (n, mean.to_bits(), m2.to_bits())
        };
        for &(x, n) in &runs {
            by_run_m.add_run(x, n);
            by_run_x.add_run(x, n);
            for _ in 0..n {
                by_one_m.add(x);
                by_one_x.add(x);
            }
        }
        assert_eq!(bits(&by_run_m), bits(&by_one_m));
        assert_eq!(by_run_x, by_one_x);
        assert_eq!(by_run_x.parts(), Some((-1.0, 1, 3.5, 6)));
        // Zero-length runs are no-ops.
        by_run_m.add_run(9.0, 0);
        by_run_x.add_run(9.0, 0);
        assert_eq!(bits(&by_run_m), bits(&by_one_m));
        assert_eq!(by_run_x, by_one_x);
    }

    proptest::proptest! {
        #[test]
        fn prop_minmax_add_run_matches_repeat(
            runs in proptest::collection::vec((-50i32..50, 1usize..9), 0..40)
        ) {
            let mut by_run = MinMaxAcc::new();
            let mut by_one = MinMaxAcc::new();
            for &(x, n) in &runs {
                let x = f64::from(x);
                by_run.add_run(x, n);
                for _ in 0..n {
                    by_one.add(x);
                }
            }
            proptest::prop_assert_eq!(by_run, by_one);
        }

        #[test]
        fn prop_moments_merge_agrees_with_concatenation(
            a in proptest::collection::vec(-1e6f64..1e6, 0..60),
            b in proptest::collection::vec(-1e6f64..1e6, 0..60)
        ) {
            let mut merged = Moments::from_slice(&a);
            merged.merge(&Moments::from_slice(&b));
            let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let whole = Moments::from_slice(&all);
            proptest::prop_assert_eq!(merged.count(), whole.count());
            if !all.is_empty() {
                let (m1, m2) = (merged.mean().unwrap(), whole.mean().unwrap());
                proptest::prop_assert!((m1 - m2).abs() <= 1e-9 * m2.abs().max(1.0));
            }
            if all.len() >= 2 {
                let (v1, v2) = (merged.variance().unwrap(), whole.variance().unwrap());
                proptest::prop_assert!((v1 - v2).abs() <= 1e-6 * v2.abs().max(1.0));
            }
        }

        #[test]
        fn prop_moments_merge_associative_up_to_tolerance(
            a in proptest::collection::vec(-1e6f64..1e6, 1..40),
            b in proptest::collection::vec(-1e6f64..1e6, 1..40),
            c in proptest::collection::vec(-1e6f64..1e6, 1..40)
        ) {
            let (ma, mb, mc) = (
                Moments::from_slice(&a),
                Moments::from_slice(&b),
                Moments::from_slice(&c),
            );
            // (a ⊕ b) ⊕ c
            let mut left = ma;
            left.merge(&mb);
            left.merge(&mc);
            // a ⊕ (b ⊕ c)
            let mut bc = mb;
            bc.merge(&mc);
            let mut right = ma;
            right.merge(&bc);
            proptest::prop_assert_eq!(left.count(), right.count());
            let (l, r) = (left.mean().unwrap(), right.mean().unwrap());
            proptest::prop_assert!((l - r).abs() <= 1e-9 * r.abs().max(1.0));
            let (lv, rv) = (left.variance().unwrap(), right.variance().unwrap());
            proptest::prop_assert!((lv - rv).abs() <= 1e-6 * rv.abs().max(1.0));
        }

        #[test]
        fn prop_minmax_merge_exact_and_associative(
            a in proptest::collection::vec(-1e3f64..1e3, 0..40),
            b in proptest::collection::vec(-1e3f64..1e3, 0..40),
            c in proptest::collection::vec(-1e3f64..1e3, 0..40)
        ) {
            let (xa, xb, xc) = (
                MinMaxAcc::from_slice(&a),
                MinMaxAcc::from_slice(&b),
                MinMaxAcc::from_slice(&c),
            );
            let mut left = xa;
            left.merge(&xb);
            left.merge(&xc);
            let mut bc = xb;
            bc.merge(&xc);
            let mut right = xa;
            right.merge(&bc);
            // Min/max merging is exact: bitwise associative AND equal
            // to a from-scratch scan of the concatenation.
            proptest::prop_assert_eq!(left, right);
            let all: Vec<f64> = a.iter().chain(b.iter()).chain(c.iter()).copied().collect();
            proptest::prop_assert_eq!(left, MinMaxAcc::from_slice(&all));
        }

        #[test]
        fn prop_incremental_tracks_batch(
            xs in proptest::collection::vec(-1e6f64..1e6, 2..100),
            removals in proptest::collection::vec(proptest::prelude::any::<proptest::sample::Index>(), 0..20)
        ) {
            let mut data = xs.clone();
            let mut acc = Moments::from_slice(&data);
            for idx in removals {
                if data.len() <= 2 { break; }
                let i = idx.index(data.len());
                let x = data.swap_remove(i);
                acc.remove(x).unwrap();
            }
            let batch_mean = descriptive::mean(&data).unwrap();
            let batch_var = descriptive::variance(&data).unwrap();
            proptest::prop_assert!((acc.mean().unwrap() - batch_mean).abs() < 1e-6 * batch_mean.abs().max(1.0));
            proptest::prop_assert!((acc.variance().unwrap() - batch_var).abs() < 1e-5 * batch_var.abs().max(1.0));
        }
    }
}
