//! Error type for statistical computations.

use std::fmt;

use sdbms_data::DataError;

/// Errors raised by statistical functions.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The computation needs at least `needed` observations.
    NotEnoughData {
        /// Minimum observations required.
        needed: usize,
        /// Observations actually available (missing values excluded).
        got: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// Paired-sample functions need equal-length inputs.
    MismatchedLengths {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The attribute's metadata says summaries are meaningless
    /// (e.g. the median of an encoded AGE_GROUP, §3.2).
    NotSummarizable(String),
    /// Underlying data-model failure.
    Data(DataError),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "need at least {needed} observations, have {got}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::MismatchedLengths { left, right } => {
                write!(f, "paired inputs differ in length: {left} vs {right}")
            }
            StatsError::NotSummarizable(attr) => {
                write!(
                    f,
                    "attribute {attr:?} is not summarizable (see its metadata)"
                )
            }
            StatsError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for StatsError {
    fn from(e: DataError) -> Self {
        StatsError::Data(e)
    }
}

/// Convenient result alias for statistical computations.
pub type Result<T> = std::result::Result<T, StatsError>;
