//! Disk-resident B+tree with variable-length byte keys.
//!
//! Keys compare as raw bytes (see [`crate::keyenc`] for
//! order-preserving encodings) and map to `u64` values (typically a
//! packed [`crate::heap::Rid`]). Duplicate *keys* are allowed;
//! `(key, value)` pairs are unique, as in a secondary index where the
//! value is a record id. Internally, entries and separators are ordered
//! by the `(key, value)` pair, which keeps separator invariants exact
//! even when one key's postings span several leaves.
//!
//! Nodes are (de)serialized whole through the buffer pool — simple and
//! correct; the buffer pool keeps hot nodes resident so the I/O pattern
//! is still realistic. Deletion is *lazy* (no rebalancing): leaves may
//! underflow or empty out but stay linked, which matches the paper's
//! workload where indexes grow monotonically with the Summary Database
//! and deletions are rare.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, INVALID_PAGE, PAGE_SIZE};

/// Largest permitted key, chosen so a node always holds several keys.
pub const MAX_KEY: usize = 1000;

/// Split threshold: serialize up to this many bytes per node.
const MAX_NODE_BYTES: usize = PAGE_SIZE;

/// Lexicographic order on `(key, value)` pairs.
fn cmp_entry(k1: &[u8], v1: u64, k2: &[u8], v2: u64) -> Ordering {
    k1.cmp(k2).then(v1.cmp(&v2))
}

/// Cycle detector for page-link walks. A page that was allocated but
/// never flushed before a crash reads back zeroed, which decodes as an
/// empty leaf whose `next` pointer is page 0 — a walk that trusted the
/// link would loop forever. Any revisited page means the structure is
/// torn, and the walk must fail with [`StorageError::Corrupt`] so the
/// caller can quarantine and rebuild.
#[derive(Default)]
struct ChainGuard {
    seen: HashSet<PageId>,
}

impl ChainGuard {
    fn visit(&mut self, pid: PageId) -> Result<()> {
        if self.seen.insert(pid) {
            Ok(())
        } else {
            Err(StorageError::corrupt("page-link cycle in b+tree").at_page(pid))
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, u64)>,
        next: PageId,
    },
    Internal {
        /// `seps[i]` separates `children[i]` (strictly less) from
        /// `children[i+1]` (greater or equal), comparing `(key, value)`
        /// pairs.
        seps: Vec<(Vec<u8>, u64)>,
        children: Vec<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                1 + 2 + 4 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
            Node::Internal { seps, children } => {
                1 + 2
                    + 4 * children.len()
                    + seps.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn write_to(&self, p: &mut Page) {
        match self {
            Node::Leaf { entries, next } => {
                p.bytes_mut()[0] = 0;
                p.put_u16(1, entries.len() as u16);
                p.put_u32(3, *next);
                let mut off = 7;
                for (k, v) in entries {
                    p.put_u16(off, k.len() as u16);
                    off += 2;
                    p.write_slice(off, k);
                    off += k.len();
                    p.put_u64(off, *v);
                    off += 8;
                }
            }
            Node::Internal { seps, children } => {
                p.bytes_mut()[0] = 1;
                p.put_u16(1, seps.len() as u16);
                let mut off = 3;
                for c in children {
                    p.put_u32(off, *c);
                    off += 4;
                }
                for (k, v) in seps {
                    p.put_u16(off, k.len() as u16);
                    off += 2;
                    p.write_slice(off, k);
                    off += k.len();
                    p.put_u64(off, *v);
                    off += 8;
                }
            }
        }
    }

    fn read_from(p: &Page) -> Result<Node> {
        #[allow(clippy::type_complexity)] // local helper, not API surface
        let read_pairs =
            |p: &Page, mut off: usize, n: usize| -> Result<(Vec<(Vec<u8>, u64)>, usize)> {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    if off + 2 > PAGE_SIZE {
                        return Err(StorageError::corrupt("entry header past page end"));
                    }
                    let klen = p.get_u16(off) as usize;
                    off += 2;
                    if off + klen + 8 > PAGE_SIZE {
                        return Err(StorageError::corrupt("entry past page end"));
                    }
                    let k = p.slice(off, klen).to_vec();
                    off += klen;
                    let v = p.get_u64(off);
                    off += 8;
                    out.push((k, v));
                }
                Ok((out, off))
            };
        match p.bytes()[0] {
            0 => {
                let n = p.get_u16(1) as usize;
                let next = p.get_u32(3);
                let (entries, _) = read_pairs(p, 7, n)?;
                Ok(Node::Leaf { entries, next })
            }
            1 => {
                let n = p.get_u16(1) as usize;
                let mut off = 3;
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    children.push(p.get_u32(off));
                    off += 4;
                }
                let (seps, _) = read_pairs(p, off, n)?;
                Ok(Node::Internal { seps, children })
            }
            _ => Err(StorageError::corrupt("unknown node type byte")),
        }
    }
}

struct TreeState {
    root: PageId,
    len: u64,
}

/// A B+tree mapping byte keys to `u64` values. `(key, value)` pairs are
/// unique; one key may map to many values.
pub struct BTree {
    pool: Arc<BufferPool>,
    state: Mutex<TreeState>,
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("BTree")
            .field("root", &s.root)
            .field("len", &s.len)
            .finish()
    }
}

impl BTree {
    /// Create an empty tree (a single empty leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let root = Node::Leaf {
            entries: Vec::new(),
            next: INVALID_PAGE,
        };
        let (pid, guard) = pool.new_page()?;
        guard.with_mut(|p| root.write_to(p));
        drop(guard);
        Ok(BTree {
            pool,
            state: Mutex::new(TreeState { root: pid, len: 0 }),
        })
    }

    /// Number of `(key, value)` pairs in the tree.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.state.lock().len
    }

    /// True if the tree has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn load(&self, pid: PageId) -> Result<Node> {
        let guard = self.pool.fetch(pid)?;
        guard.with(Node::read_from).map_err(|e| e.at_page(pid))
    }

    fn store(&self, pid: PageId, node: &Node) -> Result<()> {
        debug_assert!(node.serialized_size() <= PAGE_SIZE);
        let guard = self.pool.fetch(pid)?;
        guard.with_mut(|p| node.write_to(p));
        Ok(())
    }

    fn store_new(&self, node: &Node) -> Result<PageId> {
        let (pid, guard) = self.pool.new_page()?;
        guard.with_mut(|p| node.write_to(p));
        Ok(pid)
    }

    /// Insert a `(key, value)` pair. Returns `false` (and changes
    /// nothing) if the exact pair is already present.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<bool> {
        if key.len() > MAX_KEY {
            return Err(StorageError::KeyTooLarge {
                len: key.len(),
                max: MAX_KEY,
            });
        }
        let root = self.state.lock().root;
        let outcome = self.insert_rec(root, key, value)?;
        match outcome {
            InsertOutcome::Duplicate => Ok(false),
            InsertOutcome::Done => {
                self.state.lock().len += 1;
                Ok(true)
            }
            InsertOutcome::Split(sep, right) => {
                // Root split: keep the root page id stable by moving the
                // old root's contents to a fresh page.
                let old_root_node = self.load(root)?;
                let moved_old = self.store_new(&old_root_node)?;
                let new_root = Node::Internal {
                    seps: vec![sep],
                    children: vec![moved_old, right],
                };
                self.store(root, &new_root)?;
                self.state.lock().len += 1;
                Ok(true)
            }
        }
    }

    fn insert_rec(&self, pid: PageId, key: &[u8], value: u64) -> Result<InsertOutcome> {
        let mut node = self.load(pid)?;
        match &mut node {
            Node::Leaf { entries, .. } => {
                let pos = match entries.binary_search_by(|(k, v)| cmp_entry(k, *v, key, value)) {
                    Ok(_) => return Ok(InsertOutcome::Duplicate),
                    Err(p) => p,
                };
                entries.insert(pos, (key.to_vec(), value));
                if node.serialized_size() <= MAX_NODE_BYTES {
                    self.store(pid, &node)?;
                    return Ok(InsertOutcome::Done);
                }
                // Split near the byte-size midpoint.
                let Node::Leaf { entries, next } = node else {
                    // lint: allow(no-panic): node was destructured as Leaf at the top of this arm; rebinding cannot change the variant
                    unreachable!()
                };
                let total: usize = entries.iter().map(|(k, _)| 2 + k.len() + 8).sum();
                let mut acc = 0usize;
                let mut split_at = entries.len() / 2;
                for (i, (k, _)) in entries.iter().enumerate() {
                    acc += 2 + k.len() + 8;
                    if acc * 2 >= total {
                        split_at = (i + 1).clamp(1, entries.len() - 1);
                        break;
                    }
                }
                let right_entries = entries[split_at..].to_vec();
                let left_entries = entries[..split_at].to_vec();
                let sep = right_entries[0].clone();
                let right = Node::Leaf {
                    entries: right_entries,
                    next,
                };
                let right_pid = self.store_new(&right)?;
                let left = Node::Leaf {
                    entries: left_entries,
                    next: right_pid,
                };
                self.store(pid, &left)?;
                Ok(InsertOutcome::Split(sep, right_pid))
            }
            Node::Internal { seps, children } => {
                let idx = child_index(seps, key, value);
                let child = children[idx];
                match self.insert_rec(child, key, value)? {
                    InsertOutcome::Duplicate => Ok(InsertOutcome::Duplicate),
                    InsertOutcome::Done => Ok(InsertOutcome::Done),
                    InsertOutcome::Split(sep, right_pid) => {
                        seps.insert(idx, sep);
                        children.insert(idx + 1, right_pid);
                        if node.serialized_size() <= MAX_NODE_BYTES {
                            self.store(pid, &node)?;
                            return Ok(InsertOutcome::Done);
                        }
                        let Node::Internal { seps, children } = node else {
                            // lint: allow(no-panic): node was destructured as Internal at the top of this arm; rebinding cannot change the variant
                            unreachable!()
                        };
                        let mid = seps.len() / 2;
                        let up = seps[mid].clone();
                        let right = Node::Internal {
                            seps: seps[mid + 1..].to_vec(),
                            children: children[mid + 1..].to_vec(),
                        };
                        let right_pid = self.store_new(&right)?;
                        let left = Node::Internal {
                            seps: seps[..mid].to_vec(),
                            children: children[..=mid].to_vec(),
                        };
                        self.store(pid, &left)?;
                        Ok(InsertOutcome::Split(up, right_pid))
                    }
                }
            }
        }
    }

    /// All values stored under exactly `key`, in ascending value order.
    pub fn get(&self, key: &[u8]) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.for_range(Some(key), Some(key), |_, v| {
            out.push(v);
            true
        })?;
        Ok(out)
    }

    /// Smallest value under `key`, if any.
    pub fn get_first(&self, key: &[u8]) -> Result<Option<u64>> {
        let mut out = None;
        self.for_range(Some(key), Some(key), |_, v| {
            out = Some(v);
            false
        })?;
        Ok(out)
    }

    /// True if the exact `(key, value)` pair is present.
    pub fn contains(&self, key: &[u8], value: u64) -> Result<bool> {
        let leaf_pid = self.descend(key, value)?;
        let node = self.load(leaf_pid)?;
        let Node::Leaf { entries, .. } = node else {
            return Err(StorageError::corrupt("descend hit internal node").at_page(leaf_pid));
        };
        Ok(entries
            .binary_search_by(|(k, v)| cmp_entry(k, *v, key, value))
            .is_ok())
    }

    /// Remove one `(key, value)` pair. Returns whether a pair was
    /// removed. Lazy: nodes are never merged.
    pub fn delete(&self, key: &[u8], value: u64) -> Result<bool> {
        let leaf_pid = self.descend(key, value)?;
        let mut node = self.load(leaf_pid)?;
        let Node::Leaf { entries, .. } = &mut node else {
            return Err(StorageError::corrupt("descend hit internal node").at_page(leaf_pid));
        };
        if let Ok(pos) = entries.binary_search_by(|(k, v)| cmp_entry(k, *v, key, value)) {
            entries.remove(pos);
            self.store(leaf_pid, &node)?;
            self.state.lock().len -= 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// Leaf that would contain the pair `(key, value)`.
    fn descend(&self, key: &[u8], value: u64) -> Result<PageId> {
        let mut pid = self.state.lock().root;
        let mut guard = ChainGuard::default();
        loop {
            guard.visit(pid)?;
            match self.load(pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal { seps, children } => {
                    pid = children[child_index(&seps, key, value)];
                }
            }
        }
    }

    /// Visit `(key, value)` pairs with `low <= key <= high` in
    /// `(key, value)` order (`None` bounds are unbounded). The visitor
    /// returns `false` to stop early.
    pub fn for_range(
        &self,
        low: Option<&[u8]>,
        high: Option<&[u8]>,
        mut visit: impl FnMut(&[u8], u64) -> bool,
    ) -> Result<()> {
        // Start at the leaf that would hold (low, value 0): every pair
        // with key >= low is at or after that position.
        let mut pid = self.descend(low.unwrap_or(&[]), 0)?;
        let mut guard = ChainGuard::default();
        loop {
            guard.visit(pid)?;
            let node = self.load(pid)?;
            let Node::Leaf { entries, next } = node else {
                return Err(StorageError::corrupt("leaf chain hit internal node").at_page(pid));
            };
            for (k, v) in &entries {
                if let Some(lo) = low {
                    if k.as_slice() < lo {
                        continue;
                    }
                }
                if let Some(hi) = high {
                    if k.as_slice() > hi {
                        return Ok(());
                    }
                }
                if !visit(k, *v) {
                    return Ok(());
                }
            }
            if next == INVALID_PAGE {
                return Ok(());
            }
            pid = next;
        }
    }

    /// Collect a whole key range (convenience over [`BTree::for_range`]).
    pub fn range(&self, low: Option<&[u8]>, high: Option<&[u8]>) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        self.for_range(low, high, |k, v| {
            out.push((k.to_vec(), v));
            true
        })?;
        Ok(out)
    }

    /// Collect every entry whose key starts with `prefix`.
    pub fn prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        let mut pid = self.descend(prefix, 0)?;
        let mut guard = ChainGuard::default();
        loop {
            guard.visit(pid)?;
            let node = self.load(pid)?;
            let Node::Leaf { entries, next } = node else {
                return Err(StorageError::corrupt("leaf chain hit internal node").at_page(pid));
            };
            for (k, v) in &entries {
                if k.as_slice() < prefix {
                    continue;
                }
                if !k.starts_with(prefix) {
                    return Ok(out);
                }
                out.push((k.clone(), *v));
            }
            if next == INVALID_PAGE {
                return Ok(out);
            }
            pid = next;
        }
    }

    /// Tree height (1 = a single leaf). Walks the leftmost spine.
    pub fn height(&self) -> Result<usize> {
        let mut pid = self.state.lock().root;
        let mut h = 1;
        let mut guard = ChainGuard::default();
        loop {
            guard.visit(pid)?;
            match self.load(pid)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { children, .. } => {
                    pid = children[0];
                    h += 1;
                }
            }
        }
    }
}

enum InsertOutcome {
    /// Pair already present; nothing changed.
    Duplicate,
    /// Inserted without splitting.
    Done,
    /// Inserted; this node split and the parent must absorb
    /// `(separator, right sibling)`.
    Split((Vec<u8>, u64), PageId),
}

/// Index of the child an entry `(key, value)` belongs to: entries equal
/// to a separator live in the right child.
fn child_index(seps: &[(Vec<u8>, u64)], key: &[u8], value: u64) -> usize {
    match seps.binary_search_by(|(k, v)| cmp_entry(k, *v, key, value)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Tracker;
    use crate::disk::DiskManager;
    use crate::keyenc::encode_u64;

    fn tree(frames: usize) -> BTree {
        let disk = Arc::new(DiskManager::new(Tracker::new()));
        let pool = Arc::new(BufferPool::new(disk, frames));
        BTree::create(pool).unwrap()
    }

    #[test]
    fn insert_get_single() {
        let t = tree(16);
        assert!(t.insert(b"alpha", 1).unwrap());
        assert_eq!(t.get(b"alpha").unwrap(), vec![1]);
        assert_eq!(t.get(b"beta").unwrap(), Vec::<u64>::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn exact_duplicate_pair_rejected() {
        let t = tree(16);
        assert!(t.insert(b"k", 7).unwrap());
        assert!(!t.insert(b"k", 7).unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k").unwrap(), vec![7]);
    }

    #[test]
    fn thousand_keys_sorted_scan() {
        let t = tree(64);
        let mut keys: Vec<u64> = (0..1000).collect();
        keys.reverse();
        for &k in &keys {
            assert!(t.insert(&encode_u64(k), k * 2).unwrap());
        }
        assert_eq!(t.len(), 1000);
        assert!(t.height().unwrap() > 1, "tree should have split");
        let all = t.range(None, None).unwrap();
        assert_eq!(all.len(), 1000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k.as_slice(), encode_u64(i as u64));
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn duplicate_keys_all_returned_in_value_order() {
        let t = tree(16);
        for v in (0..10u64).rev() {
            t.insert(b"dup", v).unwrap();
        }
        assert_eq!(t.get(b"dup").unwrap(), (0..10).collect::<Vec<_>>());
        assert_eq!(t.get_first(b"dup").unwrap(), Some(0));
    }

    #[test]
    fn many_duplicates_of_one_key_span_leaves() {
        let t = tree(64);
        // Enough postings under a single key to force splits.
        for v in 0..2000u64 {
            assert!(t.insert(b"hot-key", v).unwrap());
        }
        assert!(t.height().unwrap() > 1);
        let vals = t.get(b"hot-key").unwrap();
        assert_eq!(vals, (0..2000).collect::<Vec<_>>());
        // contains() must find pairs on both sides of splits.
        assert!(t.contains(b"hot-key", 0).unwrap());
        assert!(t.contains(b"hot-key", 1999).unwrap());
        assert!(!t.contains(b"hot-key", 2000).unwrap());
        // Re-inserting any existing posting is rejected.
        assert!(!t.insert(b"hot-key", 1000).unwrap());
    }

    #[test]
    fn delete_specific_pair() {
        let t = tree(16);
        t.insert(b"k", 1).unwrap();
        t.insert(b"k", 2).unwrap();
        t.insert(b"k", 3).unwrap();
        assert!(t.delete(b"k", 2).unwrap());
        assert!(!t.delete(b"k", 2).unwrap());
        assert_eq!(t.get(b"k").unwrap(), vec![1, 3]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn range_bounds_inclusive() {
        let t = tree(32);
        for k in 0..100u64 {
            t.insert(&encode_u64(k), k).unwrap();
        }
        let r = t
            .range(Some(&encode_u64(10)), Some(&encode_u64(20)))
            .unwrap();
        let vals: Vec<u64> = r.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_after_deletions() {
        let t = tree(32);
        for k in 0..200u64 {
            t.insert(&encode_u64(k), k).unwrap();
        }
        for k in (0..200u64).step_by(2) {
            assert!(t.delete(&encode_u64(k), k).unwrap());
        }
        let vals: Vec<u64> = t
            .range(None, None)
            .unwrap()
            .iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(vals, (1..200).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_scan() {
        let t = tree(16);
        t.insert(b"age:min", 1).unwrap();
        t.insert(b"age:max", 2).unwrap();
        t.insert(b"salary:min", 3).unwrap();
        t.insert(b"age:mean", 4).unwrap();
        let hits = t.prefix(b"age:").unwrap();
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|(k, _)| k.starts_with(b"age:")));
    }

    #[test]
    fn long_keys_split_correctly() {
        let t = tree(32);
        for i in 0..50u64 {
            let mut k = vec![b'x'; 900];
            k.extend_from_slice(&encode_u64(i));
            t.insert(&k, i).unwrap();
        }
        assert_eq!(t.len(), 50);
        let all = t.range(None, None).unwrap();
        assert_eq!(all.len(), 50);
        for (i, (_, v)) in all.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn oversized_key_rejected() {
        let t = tree(8);
        let k = vec![0u8; MAX_KEY + 1];
        assert!(matches!(
            t.insert(&k, 0),
            Err(StorageError::KeyTooLarge { .. })
        ));
    }

    #[test]
    fn early_stop_visitor() {
        let t = tree(16);
        for k in 0..100u64 {
            t.insert(&encode_u64(k), k).unwrap();
        }
        let mut seen = 0;
        t.for_range(None, None, |_, _| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(seen, 5);
    }

    #[test]
    fn works_with_tiny_pool() {
        let t = tree(3);
        for k in 0..500u64 {
            t.insert(&encode_u64(k), k).unwrap();
        }
        assert_eq!(t.get(&encode_u64(250)).unwrap(), vec![250]);
        assert_eq!(t.range(None, None).unwrap().len(), 500);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matches_btreeset(ops in proptest::collection::vec(
            (proptest::prelude::any::<u16>(), proptest::prelude::any::<bool>()), 1..200)) {
            let t = tree(32);
            let mut model: std::collections::BTreeSet<(Vec<u8>, u64)> = Default::default();
            for (k, is_insert) in ops {
                let key = encode_u64(u64::from(k % 64)).to_vec();
                let val = u64::from(k);
                if is_insert {
                    let inserted = t.insert(&key, val).unwrap();
                    let model_inserted = model.insert((key, val));
                    proptest::prop_assert_eq!(inserted, model_inserted);
                } else {
                    let removed = t.delete(&key, val).unwrap();
                    let model_removed = model.remove(&(key, val));
                    proptest::prop_assert_eq!(removed, model_removed);
                }
                proptest::prop_assert_eq!(t.len(), model.len() as u64);
            }
            let got = t.range(None, None).unwrap();
            let want: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
            proptest::prop_assert_eq!(got, want);
        }
    }
}
