//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that was never allocated (or was freed).
    InvalidPageId(u32),
    /// The buffer pool has no evictable frame (every frame is pinned).
    PoolExhausted,
    /// A record id referenced a slot that does not exist or was deleted.
    InvalidRid {
        /// Page component of the record id.
        page: u32,
        /// Slot component of the record id.
        slot: u16,
    },
    /// A record is too large to ever fit on a single page.
    RecordTooLarge {
        /// Size of the rejected record.
        len: usize,
        /// Largest storable record.
        max: usize,
    },
    /// A key is too large for a B+tree node.
    KeyTooLarge {
        /// Size of the rejected key.
        len: usize,
        /// Largest permitted key.
        max: usize,
    },
    /// An archive reel with this name does not exist.
    NoSuchReel(String),
    /// Attempted to read past the end of an archive reel.
    EndOfReel {
        /// Reel name.
        reel: String,
        /// Block position of the failed read.
        position: usize,
    },
    /// A named file does not exist in the catalog.
    NoSuchFile(String),
    /// A file with this name already exists in the catalog.
    FileExists(String),
    /// On-page bytes failed a structural sanity check (corruption).
    Corrupt(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidPageId(p) => write!(f, "invalid page id {p}"),
            StorageError::PoolExhausted => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds B+tree limit {max}")
            }
            StorageError::NoSuchReel(name) => write!(f, "no archive reel named {name:?}"),
            StorageError::EndOfReel { reel, position } => {
                write!(f, "read past end of reel {reel:?} at block {position}")
            }
            StorageError::NoSuchFile(name) => write!(f, "no file named {name:?}"),
            StorageError::FileExists(name) => write!(f, "file {name:?} already exists"),
            StorageError::Corrupt(what) => write!(f, "corrupt page structure: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
