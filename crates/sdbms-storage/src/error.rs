//! Error type for the storage layer.

use std::fmt;

/// Which file in the storage hierarchy a damaged page belongs to.
/// Carried by [`StorageError::Corrupt`] so repair triage and
/// user-facing messages can name the blast radius instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// View data pages (row images or column segments).
    Data,
    /// Persisted zone-map records.
    Zone,
    /// Summary Database pages (cached entries or their index).
    Summary,
    /// A write-ahead intent-log page.
    Wal,
    /// An archive block of the raw database.
    Archive,
    /// Not yet attributed to a file (the layer that detected the
    /// damage doesn't know which file it was reading for).
    Unknown,
}

impl fmt::Display for FileRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FileRole::Data => "data",
            FileRole::Zone => "zone",
            FileRole::Summary => "summary",
            FileRole::Wal => "wal",
            FileRole::Archive => "archive",
            FileRole::Unknown => "unknown",
        })
    }
}

/// Context of a [`StorageError::Corrupt`]: what check failed, and —
/// when the detecting layer knows — where the damage sits.
///
/// Construction sites deep in the storage layer only know the reason
/// (and sometimes the page); callers annotate role and view on the way
/// up via [`StorageError::at_page`] and [`StorageError::in_context`],
/// which fill only the fields still unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptDetail {
    /// The structural sanity check that failed.
    pub reason: &'static str,
    /// Page id (disk) or block index (archive) of the damaged bytes.
    pub page: Option<u64>,
    /// Which file the damaged page belongs to.
    pub role: FileRole,
    /// The view whose data was damaged, when attributable.
    pub view: Option<String>,
}

impl CorruptDetail {
    /// Detail with only the failed check known.
    #[must_use]
    pub fn new(reason: &'static str) -> Self {
        CorruptDetail {
            reason,
            page: None,
            role: FileRole::Unknown,
            view: None,
        }
    }
}

impl fmt::Display for CorruptDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)?;
        let mut parts: Vec<String> = Vec::new();
        if !matches!(self.role, FileRole::Unknown) {
            parts.push(format!("{} file", self.role));
        }
        if let Some(p) = self.page {
            parts.push(format!("page {p}"));
        }
        if let Some(v) = &self.view {
            parts.push(format!("view {v:?}"));
        }
        if !parts.is_empty() {
            write!(f, " [{}]", parts.join(", "))?;
        }
        Ok(())
    }
}

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that was never allocated (or was freed).
    InvalidPageId(u32),
    /// The buffer pool has no evictable frame (every frame is pinned).
    PoolExhausted,
    /// A record id referenced a slot that does not exist or was deleted.
    InvalidRid {
        /// Page component of the record id.
        page: u32,
        /// Slot component of the record id.
        slot: u16,
    },
    /// A record is too large to ever fit on a single page.
    RecordTooLarge {
        /// Size of the rejected record.
        len: usize,
        /// Largest storable record.
        max: usize,
    },
    /// A key is too large for a B+tree node.
    KeyTooLarge {
        /// Size of the rejected key.
        len: usize,
        /// Largest permitted key.
        max: usize,
    },
    /// An archive reel with this name does not exist.
    NoSuchReel(String),
    /// Attempted to read past the end of an archive reel.
    EndOfReel {
        /// Reel name.
        reel: String,
        /// Block position of the failed read.
        position: usize,
    },
    /// A named file does not exist in the catalog.
    NoSuchFile(String),
    /// A file with this name already exists in the catalog.
    FileExists(String),
    /// On-page bytes failed a structural sanity check (corruption).
    /// The detail names the failed check and, where known, the page,
    /// file role, and view so triage doesn't have to guess.
    Corrupt(CorruptDetail),
    /// An injected transient fault: the operation failed but a retry
    /// may succeed. Normally retried inside the storage layer (see
    /// `retry`); only surfaces when retries are disabled.
    TransientFault {
        /// Device name ("disk" or "archive").
        device: &'static str,
        /// Page id or block index.
        id: u64,
    },
    /// The target block is permanently lost (simulated media damage).
    PermanentFault {
        /// Device name ("disk" or "archive").
        device: &'static str,
        /// Page id or block index.
        id: u64,
    },
    /// A transient fault persisted through every permitted retry.
    RetriesExhausted {
        /// Device name ("disk" or "archive").
        device: &'static str,
        /// Page id or block index.
        id: u64,
        /// Attempts made, including the first.
        attempts: u32,
    },
    /// Stored bytes do not match their stored CRC32 (bit rot detected).
    ChecksumMismatch {
        /// Device name ("disk" or "archive").
        device: &'static str,
        /// Page id or block index.
        id: u64,
    },
    /// The simulated storage hierarchy has crashed; every operation
    /// fails until the environment is restarted.
    Crashed,
    /// The request driving this I/O was cancelled (see
    /// [`crate::budget::CancelToken`]). Not a fault and not a crash:
    /// the storage state is intact, the caller just stopped wanting
    /// the answer. Upper layers abort cleanly and surface the typed
    /// error instead of a partial result.
    Cancelled,
    /// The request driving this I/O ran out of deadline budget (see
    /// [`crate::budget::CancelToken`]). Like [`StorageError::Cancelled`],
    /// a clean cooperative stop — not a fault, not a crash.
    DeadlineExceeded,
    /// A lock guarding shared storage state was poisoned by a panic in
    /// another thread.
    LockPoisoned(&'static str),
}

impl StorageError {
    /// A corruption error carrying only the failed check; location
    /// context is attached later via [`StorageError::at_page`] and
    /// [`StorageError::in_context`].
    #[must_use]
    pub fn corrupt(reason: &'static str) -> Self {
        StorageError::Corrupt(CorruptDetail::new(reason))
    }

    /// Attach the damaged page id to a `Corrupt` error. A no-op on
    /// other variants, and never overwrites a page already recorded by
    /// a deeper layer (the first attribution is the most precise).
    #[must_use]
    pub fn at_page(self, page: impl Into<u64>) -> Self {
        match self {
            StorageError::Corrupt(mut d) => {
                if d.page.is_none() {
                    d.page = Some(page.into());
                }
                StorageError::Corrupt(d)
            }
            other => other,
        }
    }

    /// Attach the file role and owning view to a `Corrupt` error.
    /// A no-op on other variants; fills only fields still unknown.
    #[must_use]
    pub fn in_context(self, role: FileRole, view: Option<&str>) -> Self {
        match self {
            StorageError::Corrupt(mut d) => {
                if matches!(d.role, FileRole::Unknown) {
                    d.role = role;
                }
                if d.view.is_none() {
                    d.view = view.map(str::to_owned);
                }
                StorageError::Corrupt(d)
            }
            other => other,
        }
    }

    /// True for errors produced by the fault-injection machinery —
    /// the class upper layers may respond to by quarantining and
    /// recomputing rather than failing outright.
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            StorageError::TransientFault { .. }
                | StorageError::PermanentFault { .. }
                | StorageError::RetriesExhausted { .. }
                | StorageError::ChecksumMismatch { .. }
                | StorageError::Crashed
        )
    }

    /// True only for the simulated-crash error: callers must stop and
    /// wait for a restart rather than degrade around it.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Crashed)
    }

    /// True for the cooperative-stop errors raised when a request's
    /// budget trips ([`StorageError::Cancelled`] /
    /// [`StorageError::DeadlineExceeded`]). Deliberately *not* part of
    /// [`StorageError::is_fault`]: nothing is wrong with the storage,
    /// so quarantine, repair, and circuit-breaker machinery must not
    /// react to them — and not part of [`StorageError::is_crash`], so
    /// a cancelled batch commit takes the clean-abort path rather than
    /// leaving a pending intent.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        matches!(
            self,
            StorageError::Cancelled | StorageError::DeadlineExceeded
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidPageId(p) => write!(f, "invalid page id {p}"),
            StorageError::PoolExhausted => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
            StorageError::InvalidRid { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds B+tree limit {max}")
            }
            StorageError::NoSuchReel(name) => write!(f, "no archive reel named {name:?}"),
            StorageError::EndOfReel { reel, position } => {
                write!(f, "read past end of reel {reel:?} at block {position}")
            }
            StorageError::NoSuchFile(name) => write!(f, "no file named {name:?}"),
            StorageError::FileExists(name) => write!(f, "file {name:?} already exists"),
            StorageError::Corrupt(detail) => {
                write!(f, "corrupt page structure: {detail}")
            }
            StorageError::TransientFault { device, id } => {
                write!(f, "transient {device} fault at {id}")
            }
            StorageError::PermanentFault { device, id } => {
                write!(f, "{device} block {id} permanently lost")
            }
            StorageError::RetriesExhausted {
                device,
                id,
                attempts,
            } => {
                write!(
                    f,
                    "{device} fault at {id} persisted through {attempts} attempts"
                )
            }
            StorageError::ChecksumMismatch { device, id } => {
                write!(f, "checksum mismatch on {device} block {id}")
            }
            StorageError::Crashed => write!(f, "simulated storage crash in effect"),
            StorageError::Cancelled => write!(f, "request cancelled"),
            StorageError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            StorageError::LockPoisoned(what) => {
                write!(f, "lock poisoned: {what}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
