//! Fixed-size pages and little-endian field access helpers.
//!
//! Everything stored on the simulated disk lives in [`PAGE_SIZE`]-byte
//! pages. Higher layers (slotted heap pages, B+tree nodes, column
//! segments) impose their own structure on the raw bytes through the
//! accessors here.

/// Size in bytes of every disk page.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page on the simulated disk.
pub type PageId = u32;

/// Sentinel meaning "no page" in on-page link fields.
pub const INVALID_PAGE: PageId = u32::MAX;

/// A raw disk page: a boxed byte array so frames are heap-allocated.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", PAGE_SIZE)
    }
}

impl Page {
    /// A zero-filled page.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable view of the full page.
    #[must_use]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable view of the full page.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Read a `u16` stored little-endian at `off`.
    ///
    /// # Panics
    /// Panics if `off + 2 > PAGE_SIZE` (an internal layout bug).
    #[must_use]
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    /// Write a `u16` little-endian at `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` stored little-endian at `off`.
    #[must_use]
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes([
            self.data[off],
            self.data[off + 1],
            self.data[off + 2],
            self.data[off + 3],
        ])
    }

    /// Write a `u32` little-endian at `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u64` stored little-endian at `off`.
    #[must_use]
    pub fn get_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Write a `u64` little-endian at `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read an `f64` stored little-endian at `off`.
    #[must_use]
    pub fn get_f64(&self, off: usize) -> f64 {
        f64::from_bits(self.get_u64(off))
    }

    /// Write an `f64` little-endian at `off`.
    pub fn put_f64(&mut self, off: usize, v: f64) {
        self.put_u64(off, v.to_bits());
    }

    /// A byte slice `[off, off+len)` of the page.
    #[must_use]
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Copy `src` into the page starting at `off`.
    pub fn write_slice(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Zero the byte range `[off, off+len)`.
    pub fn zero(&mut self, off: usize, len: usize) {
        self.data[off..off + len].fill(0);
    }

    /// CRC32 of the full page contents. The simulated disk stores this
    /// out-of-band with each page (like a sector ECC field) and
    /// verifies it on every read, so injected bit flips surface as
    /// [`crate::error::StorageError::ChecksumMismatch`] instead of
    /// silently wrong data.
    #[must_use]
    pub fn crc32(&self) -> u32 {
        crate::checksum::crc32(&self.data[..])
    }

    /// Flip one bit (test/fault-injection hook).
    pub fn flip_bit(&mut self, bit: usize) {
        self.data[(bit / 8) % PAGE_SIZE] ^= 1 << (bit % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let p = Page::new();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn u16_roundtrip() {
        let mut p = Page::new();
        p.put_u16(10, 0xBEEF);
        assert_eq!(p.get_u16(10), 0xBEEF);
    }

    #[test]
    fn u32_roundtrip_at_end() {
        let mut p = Page::new();
        p.put_u32(PAGE_SIZE - 4, 0xDEAD_BEEF);
        assert_eq!(p.get_u32(PAGE_SIZE - 4), 0xDEAD_BEEF);
    }

    #[test]
    fn u64_and_f64_roundtrip() {
        let mut p = Page::new();
        p.put_u64(0, u64::MAX - 7);
        assert_eq!(p.get_u64(0), u64::MAX - 7);
        p.put_f64(8, -123.456e78);
        assert_eq!(p.get_f64(8), -123.456e78);
        p.put_f64(16, f64::NEG_INFINITY);
        assert_eq!(p.get_f64(16), f64::NEG_INFINITY);
    }

    #[test]
    fn slice_write_read() {
        let mut p = Page::new();
        p.write_slice(100, b"statistics");
        assert_eq!(p.slice(100, 10), b"statistics");
        p.zero(100, 10);
        assert_eq!(p.slice(100, 10), &[0u8; 10]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let p = Page::new();
        let _ = p.get_u32(PAGE_SIZE - 2);
    }

    #[test]
    fn crc_detects_any_flipped_bit() {
        let mut p = Page::new();
        p.write_slice(0, b"summary database entry");
        let crc = p.crc32();
        for bit in [0, 77, PAGE_SIZE * 8 - 1] {
            let mut q = p.clone();
            q.flip_bit(bit);
            assert_ne!(q.crc32(), crc, "bit {bit}");
            q.flip_bit(bit);
            assert_eq!(q.crc32(), crc);
        }
    }
}
