//! Per-request deadlines and cooperative cancellation.
//!
//! Every request entering the serving layer carries a [`CancelToken`]:
//! a small shared handle that any layer can consult ("should I keep
//! going?") and the request's owner can trip ("stop now"). Two budget
//! forms are supported, and both surface as typed errors instead of
//! partial results:
//!
//! - an **operation budget** ([`CancelToken::with_op_budget`]) counted
//!   in simulated I/O time units — the deterministic clock the fault
//!   injector and the backoff accounting already use, so chaos tests
//!   and the differential suites replay identically on every run;
//! - a **wall-clock deadline** ([`CancelToken::with_wall_deadline`])
//!   for real deployments and the tail-latency experiments, where
//!   determinism is not required.
//!
//! The token travels *ambiently* through a [`BudgetScope`], a
//! thread-local stack modeled on [`crate::cost::IoScope`]: the serving
//! layer enters a scope around each request, and every disk or archive
//! attempt underneath — including retries and their backoff — charges
//! the innermost token without any signature changes through the
//! intermediate layers. Parallel scans re-install the calling thread's
//! ambient token in each worker, so a deadline caps a scan no matter
//! how many threads it fans out over.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::StorageError;

thread_local! {
    /// Per-thread stack of ambient request budgets. The innermost
    /// (most recently entered) token is the one storage-level
    /// operations consult; outer tokens still apply because an inner
    /// scope is always created as a [`CancelToken::child`] of — or
    /// alongside — the outer request's token.
    static BUDGETS: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelError {
    /// The token was explicitly cancelled (client disconnect, session
    /// teardown, or a sibling worker hitting an error).
    Cancelled,
    /// The request ran out of budget: its operation allowance is spent
    /// or its wall-clock deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for CancelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelError::Cancelled => write!(f, "request cancelled"),
            CancelError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for CancelError {}

impl From<CancelError> for StorageError {
    fn from(e: CancelError) -> Self {
        match e {
            CancelError::Cancelled => StorageError::Cancelled,
            CancelError::DeadlineExceeded => StorageError::DeadlineExceeded,
        }
    }
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Remaining operation allowance, in simulated I/O time units.
    /// `None` = unmetered. Goes negative when a multi-unit charge (a
    /// slow-fault delay, a retry backoff) overshoots; any non-positive
    /// value means the budget is spent.
    ops_left: Option<AtomicI64>,
    /// Wall-clock deadline. `None` = untimed.
    deadline: Option<Instant>,
    /// Link to the token this one was derived from; a parent's
    /// cancellation or exhaustion trips every descendant.
    parent: Option<Arc<TokenInner>>,
}

/// Shared cancellation / deadline handle for one request.
///
/// Cloning shares the same state: cancelling any clone trips them all.
/// [`CancelToken::child`] derives a *separately cancellable* token that
/// still honours the parent's budget — the executor hands one to each
/// scan so an internal worker error can stop its siblings without
/// marking the whole request as client-cancelled.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl CancelToken {
    fn from_parts(ops: Option<i64>, deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                ops_left: ops.map(AtomicI64::new),
                deadline,
                parent: None,
            }),
        }
    }

    /// A token with no deadline and no budget; only an explicit
    /// [`CancelToken::cancel`] can trip it.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::from_parts(None, None)
    }

    /// A token allowing `ops` simulated I/O time units; the first
    /// charge past the allowance fails with
    /// [`CancelError::DeadlineExceeded`]. Deterministic: the unit
    /// counter is the same logical clock the fault injector uses.
    #[must_use]
    pub fn with_op_budget(ops: u64) -> Self {
        Self::from_parts(Some(i64::try_from(ops).unwrap_or(i64::MAX)), None)
    }

    /// A token that trips [`CancelError::DeadlineExceeded`] once
    /// `budget` of wall-clock time has elapsed.
    #[must_use]
    pub fn with_wall_deadline(budget: Duration) -> Self {
        Self::from_parts(None, Instant::now().checked_add(budget))
    }

    /// Derive a separately cancellable token that still honours this
    /// token's (and its ancestors') budget and cancellation.
    #[must_use]
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                ops_left: None,
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trip the token: every subsequent [`CancelToken::check`] on this
    /// token or any child fails with [`CancelError::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Why the token has tripped, if it has. Explicit cancellation
    /// anywhere in the ancestry wins over budget exhaustion, so a
    /// cancelled-then-slow request reports `Cancelled`, not
    /// `DeadlineExceeded`.
    #[must_use]
    pub fn tripped(&self) -> Option<CancelError> {
        let mut exhausted = false;
        let mut cur = Some(&self.inner);
        while let Some(inner) = cur {
            if inner.cancelled.load(Ordering::SeqCst) {
                return Some(CancelError::Cancelled);
            }
            if let Some(left) = &inner.ops_left {
                exhausted |= left.load(Ordering::SeqCst) <= 0;
            }
            if let Some(dl) = inner.deadline {
                exhausted |= Instant::now() >= dl;
            }
            cur = inner.parent.as_ref();
        }
        exhausted.then_some(CancelError::DeadlineExceeded)
    }

    /// Fail if the token has tripped; the cooperative checkpoint every
    /// layer calls at its own granularity (per morsel in the executor,
    /// per attempt on the disk, per retry in the backoff loop).
    pub fn check(&self) -> Result<(), CancelError> {
        match self.tripped() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spend `n` simulated I/O time units from every metered budget in
    /// the ancestry. Spending is separate from checking: an operation
    /// that was admitted completes even if it lands the budget at (or
    /// past) zero — the *next* checkpoint trips.
    pub fn consume_ops(&self, n: u64) {
        let n = i64::try_from(n).unwrap_or(i64::MAX);
        let mut cur = Some(&self.inner);
        while let Some(inner) = cur {
            if let Some(left) = &inner.ops_left {
                left.fetch_sub(n, Ordering::SeqCst);
            }
            cur = inner.parent.as_ref();
        }
    }

    /// Remaining operation allowance of the tightest metered budget in
    /// the ancestry (`None` when unmetered). The retry loop uses this
    /// to report how much of a deadline a flaky device consumed.
    #[must_use]
    pub fn ops_remaining(&self) -> Option<u64> {
        let mut tightest: Option<i64> = None;
        let mut cur = Some(&self.inner);
        while let Some(inner) = cur {
            if let Some(left) = &inner.ops_left {
                let v = left.load(Ordering::SeqCst);
                tightest = Some(tightest.map_or(v, |t: i64| t.min(v)));
            }
            cur = inner.parent.as_ref();
        }
        tightest.map(|v| u64::try_from(v).unwrap_or(0))
    }

    /// True when two tokens share the same underlying state.
    #[must_use]
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// An RAII guard that makes a [`CancelToken`] the *ambient request
/// budget* for the current thread until dropped. Modeled on
/// [`crate::cost::IoScope`]: entering pushes onto a thread-local stack,
/// and storage-level attempts consult the innermost entry via
/// [`ambient_token`] / [`charge_ambient_ops`] without any plumbing
/// through the intermediate layers.
#[derive(Debug)]
pub struct BudgetScope {
    token: CancelToken,
}

impl BudgetScope {
    /// Enter a scope on the current thread: until the returned guard
    /// drops, `token` is the innermost ambient budget here.
    #[must_use]
    pub fn enter(token: CancelToken) -> BudgetScope {
        BUDGETS.with(|stack| stack.borrow_mut().push(token.clone()));
        BudgetScope { token }
    }

    /// The scope's token.
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        BUDGETS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards usually drop LIFO, but search from the top so an
            // out-of-order drop removes its own entry, not a peer's.
            if let Some(i) = stack.iter().rposition(|t| t.same_token(&self.token)) {
                stack.remove(i);
            }
        });
    }
}

/// The innermost ambient [`CancelToken`] on this thread, if any. The
/// executor captures this before fanning out so worker threads inherit
/// the calling request's budget.
#[must_use]
pub fn ambient_token() -> Option<CancelToken> {
    BUDGETS.with(|stack| stack.borrow().last().cloned())
}

/// Storage-level budget checkpoint: fail with a typed
/// [`StorageError::Cancelled`] / [`StorageError::DeadlineExceeded`] if
/// the ambient budget (when present) has tripped, otherwise spend
/// `ops` units from it. Called once per device I/O attempt, and with
/// the delay's weight when a slow fault stalls an operation.
pub fn charge_ambient_ops(ops: u64) -> Result<(), StorageError> {
    BUDGETS.with(|stack| {
        if let Some(token) = stack.borrow().last() {
            token.check()?;
            token.consume_ops(ops);
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_trips_on_its_own() {
        let t = CancelToken::unbounded();
        t.consume_ops(1_000_000);
        assert_eq!(t.check(), Ok(()));
        t.cancel();
        assert_eq!(t.check(), Err(CancelError::Cancelled));
    }

    #[test]
    fn op_budget_admits_exactly_its_allowance() {
        let t = CancelToken::with_op_budget(3);
        for _ in 0..3 {
            assert_eq!(t.check(), Ok(()));
            t.consume_ops(1);
        }
        assert_eq!(t.check(), Err(CancelError::DeadlineExceeded));
        assert_eq!(t.ops_remaining(), Some(0));
    }

    #[test]
    fn zero_budget_trips_before_the_first_op() {
        let t = CancelToken::with_op_budget(0);
        assert_eq!(t.check(), Err(CancelError::DeadlineExceeded));
    }

    #[test]
    fn overshoot_saturates_remaining_at_zero() {
        let t = CancelToken::with_op_budget(5);
        t.consume_ops(40);
        assert_eq!(t.ops_remaining(), Some(0));
        assert_eq!(t.check(), Err(CancelError::DeadlineExceeded));
    }

    #[test]
    fn child_inherits_parent_budget_and_cancellation() {
        let parent = CancelToken::with_op_budget(2);
        let child = parent.child();
        child.consume_ops(2);
        assert_eq!(child.check(), Err(CancelError::DeadlineExceeded));
        assert_eq!(
            parent.check(),
            Err(CancelError::DeadlineExceeded),
            "child charges spend the parent's budget"
        );

        let parent = CancelToken::unbounded();
        let child = parent.child();
        parent.cancel();
        assert_eq!(child.check(), Err(CancelError::Cancelled));
    }

    #[test]
    fn child_cancel_does_not_trip_the_parent() {
        let parent = CancelToken::unbounded();
        let child = parent.child();
        child.cancel();
        assert_eq!(child.check(), Err(CancelError::Cancelled));
        assert_eq!(parent.check(), Ok(()));
    }

    #[test]
    fn cancellation_wins_over_exhaustion() {
        let t = CancelToken::with_op_budget(0);
        t.cancel();
        assert_eq!(t.check(), Err(CancelError::Cancelled));
    }

    #[test]
    fn wall_deadline_in_the_past_trips() {
        let t = CancelToken::with_wall_deadline(Duration::ZERO);
        assert_eq!(t.check(), Err(CancelError::DeadlineExceeded));
        let far = CancelToken::with_wall_deadline(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
    }

    #[test]
    fn ambient_scope_charges_the_entered_token() {
        assert_eq!(ambient_token().map(|_| ()), None);
        let t = CancelToken::with_op_budget(2);
        {
            let _scope = BudgetScope::enter(t.clone());
            assert!(ambient_token().is_some_and(|a| a.same_token(&t)));
            assert_eq!(charge_ambient_ops(1), Ok(()));
            assert_eq!(charge_ambient_ops(1), Ok(()));
            assert_eq!(charge_ambient_ops(1), Err(StorageError::DeadlineExceeded));
        }
        assert_eq!(ambient_token().map(|_| ()), None);
        assert_eq!(charge_ambient_ops(1), Ok(()), "no scope, no metering");
    }

    #[test]
    fn inner_scope_shadows_outer_for_ambient_charges() {
        let outer = CancelToken::with_op_budget(100);
        let _o = BudgetScope::enter(outer.clone());
        {
            let inner = outer.child();
            let _i = BudgetScope::enter(inner);
            assert_eq!(charge_ambient_ops(10), Ok(()));
        }
        assert_eq!(
            outer.ops_remaining(),
            Some(90),
            "child charges flowed up to the outer budget"
        );
    }

    #[test]
    fn cancelled_scope_reports_typed_cancelled() {
        let t = CancelToken::unbounded();
        let _scope = BudgetScope::enter(t.clone());
        t.cancel();
        assert_eq!(charge_ambient_ops(1), Err(StorageError::Cancelled));
    }
}
