//! Order-preserving key encodings.
//!
//! B+tree keys are compared as raw bytes, so anything indexed must be
//! encoded such that byte order equals logical order. These encodings
//! are used by the Summary Database's `(function, attribute)` secondary
//! index and by relational sort keys.

/// Encode a `u64` big-endian (byte order == numeric order).
#[must_use]
pub fn encode_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Decode [`encode_u64`].
#[must_use]
pub fn decode_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_be_bytes(a)
}

/// Encode an `i64` so byte order equals numeric order (flip the sign
/// bit, then big-endian).
#[must_use]
pub fn encode_i64(v: i64) -> [u8; 8] {
    ((v as u64) ^ (1u64 << 63)).to_be_bytes()
}

/// Decode [`encode_i64`].
#[must_use]
pub fn decode_i64(b: &[u8]) -> i64 {
    (decode_u64(b) ^ (1u64 << 63)) as i64
}

/// Encode an `f64` so byte order equals numeric order.
///
/// Positive floats get the sign bit set; negative floats are bitwise
/// inverted. Total order: -inf < ... < -0.0 < +0.0 < ... < +inf. NaNs
/// sort above +inf (quiet NaN bit patterns); callers should filter NaNs
/// before indexing.
#[must_use]
pub fn encode_f64(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let mapped = if bits & (1u64 << 63) == 0 {
        bits | (1u64 << 63)
    } else {
        !bits
    };
    mapped.to_be_bytes()
}

/// Decode [`encode_f64`].
#[must_use]
pub fn decode_f64(b: &[u8]) -> f64 {
    let mapped = decode_u64(b);
    let bits = if mapped & (1u64 << 63) != 0 {
        mapped & !(1u64 << 63)
    } else {
        !mapped
    };
    f64::from_bits(bits)
}

/// Append a string to a composite key such that the composite ordering
/// is (this string, then whatever follows).
///
/// Uses 0x00-terminated escaping: 0x00 bytes in the string become
/// `0x00 0xFF`, and the field ends with `0x00 0x00`. This keeps prefix
/// strings ordered before their extensions and makes field boundaries
/// unambiguous.
pub fn push_str(buf: &mut Vec<u8>, s: &str) {
    for &b in s.as_bytes() {
        if b == 0 {
            buf.push(0);
            buf.push(0xFF);
        } else {
            buf.push(b);
        }
    }
    buf.push(0);
    buf.push(0);
}

/// Build a composite key of strings (e.g. `(attribute, function)`).
#[must_use]
pub fn composite_str_key(parts: &[&str]) -> Vec<u8> {
    let mut buf = Vec::new();
    for p in parts {
        push_str(&mut buf, p);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_order_preserved() {
        let vals = [0u64, 1, 255, 256, 1 << 40, u64::MAX];
        for w in vals.windows(2) {
            assert!(encode_u64(w[0]) < encode_u64(w[1]));
        }
        for v in vals {
            assert_eq!(decode_u64(&encode_u64(v)), v);
        }
    }

    #[test]
    fn i64_order_preserved() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(encode_i64(w[0]) < encode_i64(w[1]));
        }
        for v in vals {
            assert_eq!(decode_i64(&encode_i64(v)), v);
        }
    }

    #[test]
    fn f64_order_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                encode_f64(w[0]) <= encode_f64(w[1]),
                "{} should encode <= {}",
                w[0],
                w[1]
            );
        }
        for v in vals {
            let d = decode_f64(&encode_f64(v));
            assert!(d == v || (d == 0.0 && v == 0.0));
        }
    }

    #[test]
    fn f64_negative_zero_vs_positive_zero() {
        assert!(encode_f64(-0.0) < encode_f64(0.0));
    }

    #[test]
    fn string_prefix_orders_first() {
        let a = composite_str_key(&["abc"]);
        let b = composite_str_key(&["abcd"]);
        assert!(a < b);
    }

    #[test]
    fn composite_field_boundary_not_confused() {
        // ("ab", "c") must differ from ("abc", "") and order sanely.
        let x = composite_str_key(&["ab", "c"]);
        let y = composite_str_key(&["abc", ""]);
        assert_ne!(x, y);
    }

    #[test]
    fn embedded_nul_escaped() {
        let x = composite_str_key(&["a\0b"]);
        let y = composite_str_key(&["a"]);
        let z = composite_str_key(&["ab"]);
        assert!(x > y);
        assert!(x < z);
    }

    proptest::proptest! {
        #[test]
        fn prop_i64_roundtrip_and_order(a: i64, b: i64) {
            proptest::prop_assert_eq!(decode_i64(&encode_i64(a)), a);
            proptest::prop_assert_eq!(encode_i64(a) < encode_i64(b), a < b);
        }

        #[test]
        fn prop_f64_order(a: f64, b: f64) {
            proptest::prop_assume!(!a.is_nan() && !b.is_nan());
            let (ea, eb) = (encode_f64(a), encode_f64(b));
            if a < b { proptest::prop_assert!(ea < eb); }
            if a > b { proptest::prop_assert!(ea > eb); }
        }

        #[test]
        fn prop_composite_str_order(a in "[a-z]{0,8}", b in "[a-z]{0,8}") {
            let ka = composite_str_key(&[&a]);
            let kb = composite_str_key(&[&b]);
            proptest::prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        }
    }
}
