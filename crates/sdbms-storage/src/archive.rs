//! Sequential archive ("tape") storage for the raw database.
//!
//! The paper assumes the raw statistical database "will almost always
//! reside on slow secondary storage devices such as tapes" (§2.3), and
//! builds its whole architecture — materialize a concrete view once,
//! keep it on disk — around how expensive it is to go back to the tape.
//!
//! An [`ArchiveStore`] holds named *reels*. A reel is an append-only
//! sequence of variable-length blocks that can only be read through a
//! [`ReelReader`] which models a physical tape head: reading block `i`
//! while positioned at block `j` charges a repositioning cost of
//! `|i - j|` blocks on the shared tracker, plus the block transfer
//! itself. Experiments E9 and E12 use these counters to show when
//! materialization amortizes.
//!
//! Tape is the least reliable medium in the hierarchy, so each block
//! carries a CRC32 computed at append time and verified on every read,
//! and the shared [`FaultInjector`] is consulted on both appends and
//! reads: transient read faults are retried under the store's
//! [`RetryPolicy`], permanent faults model a damaged stretch of tape,
//! and injected corruption flips a stored bit that the next read's CRC
//! verification catches.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::budget::charge_ambient_ops;
use crate::checksum::crc32;
use crate::cost::Tracker;
use crate::error::{Result, StorageError};
use crate::fault::{Device, FaultInjector, InjectedFault, IoOp};
use crate::retry::{with_retries, RetryPolicy};

/// One tape block and the checksum recorded beside it.
#[derive(Debug, Clone)]
struct Block {
    data: Arc<[u8]>,
    crc: u32,
}

#[derive(Debug, Default)]
struct Reel {
    blocks: Vec<Block>,
}

/// A collection of named append-only tape reels.
pub struct ArchiveStore {
    reels: Mutex<HashMap<String, Reel>>,
    tracker: Tracker,
    injector: Arc<FaultInjector>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for ArchiveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveStore")
            .field("reels", &self.reels.lock().len())
            .finish()
    }
}

impl ArchiveStore {
    /// Create an empty archive charging the given tracker, with fault
    /// injection disabled.
    #[must_use]
    pub fn new(tracker: Tracker) -> Self {
        Self::with_faults(
            tracker,
            Arc::new(FaultInjector::disabled()),
            RetryPolicy::default(),
        )
    }

    /// Create an empty archive that consults `injector` on every block
    /// I/O and retries transient faults under `retry`.
    #[must_use]
    pub fn with_faults(tracker: Tracker, injector: Arc<FaultInjector>, retry: RetryPolicy) -> Self {
        ArchiveStore {
            reels: Mutex::new(HashMap::new()),
            tracker,
            injector,
            retry,
        }
    }

    /// The shared I/O tracker this archive charges.
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The fault injector this archive consults.
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Create an empty reel. Fails if the name is taken.
    pub fn create_reel(&self, name: &str) -> Result<()> {
        let mut reels = self.reels.lock();
        if reels.contains_key(name) {
            return Err(StorageError::FileExists(name.to_string()));
        }
        reels.insert(name.to_string(), Reel::default());
        Ok(())
    }

    /// Append a block to a reel. Writing is free in the cost model
    /// (the raw database is loaded once, offline), but the fault
    /// injector is still consulted: a transient fault is retried, and
    /// injected corruption stores a flipped bit that the next read's
    /// CRC verification will catch.
    pub fn append_block(&self, name: &str, block: &[u8]) -> Result<()> {
        with_retries(&self.retry, &self.tracker, || {
            self.append_attempt(name, block)
        })
    }

    fn append_attempt(&self, name: &str, block: &[u8]) -> Result<()> {
        charge_ambient_ops(1)?;
        let mut reels = self.reels.lock();
        let reel = reels
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))?;
        let index = reel.blocks.len() as u64;
        let fault = self
            .injector
            .decide(Device::Archive, IoOp::Write, index, block.len());
        match fault {
            Some(InjectedFault::Crash) => return Err(StorageError::Crashed),
            Some(InjectedFault::Transient) => {
                return Err(StorageError::TransientFault {
                    device: "archive",
                    id: index,
                })
            }
            Some(InjectedFault::Permanent) => {
                return Err(StorageError::PermanentFault {
                    device: "archive",
                    id: index,
                })
            }
            Some(InjectedFault::Delay { units }) => {
                // Slow-but-correct I/O: charge the stall as backoff and
                // spend it from the ambient request budget.
                self.tracker.count_backoff(units);
                charge_ambient_ops(units)?;
            }
            Some(InjectedFault::Corrupt { .. }) | None => {}
        }
        let crc = crc32(block);
        let mut data: Vec<u8> = block.to_vec();
        if let Some(InjectedFault::Corrupt { bit }) = fault {
            if !data.is_empty() {
                let byte = (bit / 8) % data.len();
                data[byte] ^= 1 << (bit % 8);
            }
        }
        reel.blocks.push(Block {
            data: Arc::from(data),
            crc,
        });
        Ok(())
    }

    /// Number of blocks on a reel.
    pub fn block_count(&self, name: &str) -> Result<usize> {
        let reels = self.reels.lock();
        reels
            .get(name)
            .map(|r| r.blocks.len())
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))
    }

    /// Names of all reels, sorted.
    #[must_use]
    pub fn reel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.reels.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Flip one bit of the stored copy of block `index` on `name`
    /// without updating its CRC (test hook for corruption-detection
    /// paths). Readers opened after the corruption will see it.
    pub fn corrupt_block(&self, name: &str, index: usize, bit: usize) -> Result<()> {
        let mut reels = self.reels.lock();
        let reel = reels
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))?;
        let block = reel.blocks.get_mut(index).ok_or(StorageError::EndOfReel {
            reel: name.to_string(),
            position: index,
        })?;
        let mut data = block.data.to_vec();
        if data.is_empty() {
            return Ok(());
        }
        let byte = (bit / 8) % data.len();
        data[byte] ^= 1 << (bit % 8);
        block.data = Arc::from(data);
        Ok(())
    }

    /// Mount a reel for reading. The head starts at block 0.
    pub fn open(&self, name: &str) -> Result<ReelReader> {
        let reels = self.reels.lock();
        let reel = reels
            .get(name)
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))?;
        Ok(ReelReader {
            name: name.to_string(),
            blocks: reel.blocks.clone(),
            position: 0,
            tracker: self.tracker.clone(),
            injector: self.injector.clone(),
            retry: self.retry,
        })
    }
}

/// A tape head over one reel. Sequential reads are cheap; seeking
/// backwards (or skipping forwards) charges repositioning per block.
pub struct ReelReader {
    name: String,
    blocks: Vec<Block>,
    position: usize,
    tracker: Tracker,
    injector: Arc<FaultInjector>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for ReelReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReelReader")
            .field("reel", &self.name)
            .field("position", &self.position)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl ReelReader {
    /// Reel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current head position (next block to be read).
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Total blocks on the mounted reel snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the reel has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Read the block under the head and advance. Errors at end of
    /// reel. Transient faults are retried under the store's policy
    /// (charging the tracker); block bytes are verified against the
    /// CRC recorded at append time.
    pub fn read_next(&mut self) -> Result<Arc<[u8]>> {
        let retry = self.retry;
        let tracker = self.tracker.clone();
        with_retries(&retry, &tracker, || self.read_attempt())
    }

    fn read_attempt(&mut self) -> Result<Arc<[u8]>> {
        charge_ambient_ops(1)?;
        let index = self.position as u64;
        let len = self.blocks.get(self.position).map_or(0, |b| b.data.len());
        match self
            .injector
            .decide(Device::Archive, IoOp::Read, index, len)
        {
            Some(InjectedFault::Crash) => return Err(StorageError::Crashed),
            Some(InjectedFault::Transient) => {
                self.tracker.count_archive_read();
                return Err(StorageError::TransientFault {
                    device: "archive",
                    id: index,
                });
            }
            Some(InjectedFault::Permanent) => {
                self.tracker.count_archive_read();
                return Err(StorageError::PermanentFault {
                    device: "archive",
                    id: index,
                });
            }
            Some(InjectedFault::Delay { units }) => {
                // Slow-but-correct I/O, as on the disk read path.
                self.tracker.count_backoff(units);
                charge_ambient_ops(units)?;
            }
            Some(InjectedFault::Corrupt { .. }) | None => {}
        }
        match self.blocks.get(self.position) {
            Some(b) => {
                self.position += 1;
                self.tracker.count_archive_read();
                if crc32(&b.data) != b.crc {
                    self.tracker.count_checksum_failure();
                    return Err(StorageError::ChecksumMismatch {
                        device: "archive",
                        id: index,
                    });
                }
                Ok(b.data.clone())
            }
            None => Err(StorageError::EndOfReel {
                reel: self.name.clone(),
                position: self.position,
            }),
        }
    }

    /// Rewind to block 0, charging repositioning for the distance.
    pub fn rewind(&mut self) {
        self.tracker.count_archive_reposition(self.position as u64);
        self.position = 0;
    }

    /// Position the head at `block`, charging repositioning for the
    /// distance moved (forward skips cost the same as rewinds: the
    /// tape still has to run past every block).
    pub fn seek(&mut self, block: usize) -> Result<()> {
        if block > self.blocks.len() {
            return Err(StorageError::EndOfReel {
                reel: self.name.clone(),
                position: block,
            });
        }
        let dist = self.position.abs_diff(block);
        self.tracker.count_archive_reposition(dist as u64);
        self.position = block;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, ScriptedFault};

    fn archive() -> ArchiveStore {
        ArchiveStore::new(Tracker::new())
    }

    #[test]
    fn create_append_read() {
        let a = archive();
        a.create_reel("census").unwrap();
        a.append_block("census", b"block-0").unwrap();
        a.append_block("census", b"block-1").unwrap();
        let mut r = a.open("census").unwrap();
        assert_eq!(&*r.read_next().unwrap(), b"block-0");
        assert_eq!(&*r.read_next().unwrap(), b"block-1");
        assert!(r.read_next().is_err());
    }

    #[test]
    fn duplicate_reel_rejected() {
        let a = archive();
        a.create_reel("x").unwrap();
        assert!(matches!(
            a.create_reel("x"),
            Err(StorageError::FileExists(_))
        ));
    }

    #[test]
    fn missing_reel_errors() {
        let a = archive();
        assert!(a.open("nope").is_err());
        assert!(a.append_block("nope", b"x").is_err());
        assert!(a.block_count("nope").is_err());
    }

    #[test]
    fn sequential_reads_charge_transfer_only() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..10u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        while rd.read_next().is_ok() {}
        let s = a.tracker().snapshot();
        assert_eq!(s.archive_block_reads, 10);
        assert_eq!(s.archive_repositioned_blocks, 0);
    }

    #[test]
    fn rewind_charges_distance() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..10u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        for _ in 0..7 {
            rd.read_next().unwrap();
        }
        rd.rewind();
        assert_eq!(a.tracker().snapshot().archive_repositioned_blocks, 7);
        assert_eq!(rd.position(), 0);
        // Second full pass re-reads everything.
        for _ in 0..10 {
            rd.read_next().unwrap();
        }
        assert_eq!(a.tracker().snapshot().archive_block_reads, 17);
    }

    #[test]
    fn seek_charges_absolute_distance() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..20u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        rd.seek(15).unwrap();
        rd.seek(5).unwrap();
        assert_eq!(a.tracker().snapshot().archive_repositioned_blocks, 25);
        assert_eq!(&*rd.read_next().unwrap(), &[5]);
        assert!(rd.seek(999).is_err());
    }

    #[test]
    fn reader_is_a_snapshot() {
        let a = archive();
        a.create_reel("r").unwrap();
        a.append_block("r", b"one").unwrap();
        let mut rd = a.open("r").unwrap();
        a.append_block("r", b"two").unwrap();
        assert_eq!(rd.len(), 1, "reader mounted before the append");
        assert_eq!(&*rd.read_next().unwrap(), b"one");
        assert!(rd.read_next().is_err());
        let mut rd2 = a.open("r").unwrap();
        assert_eq!(rd2.len(), 2);
        rd2.seek(1).unwrap();
        assert_eq!(&*rd2.read_next().unwrap(), b"two");
    }

    // ---- fault injection ---------------------------------------------

    fn faulty_archive() -> (ArchiveStore, Arc<FaultInjector>) {
        let inj = Arc::new(FaultInjector::disabled());
        let a = ArchiveStore::with_faults(Tracker::new(), inj.clone(), RetryPolicy::default());
        (a, inj)
    }

    #[test]
    fn transient_read_fault_is_retried() {
        let (a, inj) = faulty_archive();
        a.create_reel("r").unwrap();
        a.append_block("r", b"payload").unwrap();
        inj.script(
            ScriptedFault::new(Device::Archive, FaultKind::Transient)
                .on(IoOp::Read)
                .times(2),
        );
        let mut rd = a.open("r").unwrap();
        assert_eq!(&*rd.read_next().unwrap(), b"payload");
        let s = a.tracker().snapshot();
        assert_eq!(s.retries, 2);
        assert!(s.backoff_units > 0);
    }

    #[test]
    fn corrupted_block_fails_crc() {
        let (a, _inj) = faulty_archive();
        a.create_reel("r").unwrap();
        a.append_block("r", b"good block").unwrap();
        a.append_block("r", b"bad block").unwrap();
        a.corrupt_block("r", 1, 13).unwrap();
        let mut rd = a.open("r").unwrap();
        assert!(rd.read_next().is_ok());
        assert!(matches!(
            rd.read_next(),
            Err(StorageError::ChecksumMismatch {
                device: "archive",
                id: 1
            })
        ));
        assert_eq!(a.tracker().snapshot().checksum_failures, 1);
    }

    #[test]
    fn injected_append_corruption_caught_on_read() {
        let (a, inj) = faulty_archive();
        a.create_reel("r").unwrap();
        inj.script(ScriptedFault::new(Device::Archive, FaultKind::Corrupt).on(IoOp::Write));
        a.append_block("r", b"silently damaged").unwrap();
        let mut rd = a.open("r").unwrap();
        assert!(matches!(
            rd.read_next(),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn permanent_fault_models_damaged_tape_stretch() {
        let (a, inj) = faulty_archive();
        a.create_reel("r").unwrap();
        for i in 0..5u8 {
            a.append_block("r", &[i]).unwrap();
        }
        inj.script(ScriptedFault::new(Device::Archive, FaultKind::Permanent).at(2));
        let mut rd = a.open("r").unwrap();
        assert!(rd.read_next().is_ok());
        assert!(rd.read_next().is_ok());
        assert!(matches!(
            rd.read_next(),
            Err(StorageError::PermanentFault { .. })
        ));
        // The head did not advance past the bad block; skip over it.
        rd.seek(3).unwrap();
        assert_eq!(&*rd.read_next().unwrap(), &[3]);
    }

    #[test]
    fn crash_blocks_archive_reads() {
        let (a, inj) = faulty_archive();
        a.create_reel("r").unwrap();
        a.append_block("r", b"x").unwrap();
        let mut rd = a.open("r").unwrap();
        inj.crash_now();
        assert_eq!(rd.read_next(), Err(StorageError::Crashed));
        inj.restart();
        assert!(rd.read_next().is_ok());
    }
}
