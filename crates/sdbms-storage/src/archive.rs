//! Sequential archive ("tape") storage for the raw database.
//!
//! The paper assumes the raw statistical database "will almost always
//! reside on slow secondary storage devices such as tapes" (§2.3), and
//! builds its whole architecture — materialize a concrete view once,
//! keep it on disk — around how expensive it is to go back to the tape.
//!
//! An [`ArchiveStore`] holds named *reels*. A reel is an append-only
//! sequence of variable-length blocks that can only be read through a
//! [`ReelReader`] which models a physical tape head: reading block `i`
//! while positioned at block `j` charges a repositioning cost of
//! `|i - j|` blocks on the shared tracker, plus the block transfer
//! itself. Experiments E9 and E12 use these counters to show when
//! materialization amortizes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cost::Tracker;
use crate::error::{Result, StorageError};

#[derive(Debug, Default)]
struct Reel {
    blocks: Vec<Arc<[u8]>>,
}

/// A collection of named append-only tape reels.
pub struct ArchiveStore {
    reels: Mutex<HashMap<String, Reel>>,
    tracker: Tracker,
}

impl std::fmt::Debug for ArchiveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveStore")
            .field("reels", &self.reels.lock().len())
            .finish()
    }
}

impl ArchiveStore {
    /// Create an empty archive charging the given tracker.
    #[must_use]
    pub fn new(tracker: Tracker) -> Self {
        ArchiveStore {
            reels: Mutex::new(HashMap::new()),
            tracker,
        }
    }

    /// The shared I/O tracker this archive charges.
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Create an empty reel. Fails if the name is taken.
    pub fn create_reel(&self, name: &str) -> Result<()> {
        let mut reels = self.reels.lock();
        if reels.contains_key(name) {
            return Err(StorageError::FileExists(name.to_string()));
        }
        reels.insert(name.to_string(), Reel::default());
        Ok(())
    }

    /// Append a block to a reel. Writing is free in the cost model
    /// (the raw database is loaded once, offline).
    pub fn append_block(&self, name: &str, block: &[u8]) -> Result<()> {
        let mut reels = self.reels.lock();
        let reel = reels
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))?;
        reel.blocks.push(Arc::from(block));
        Ok(())
    }

    /// Number of blocks on a reel.
    pub fn block_count(&self, name: &str) -> Result<usize> {
        let reels = self.reels.lock();
        reels
            .get(name)
            .map(|r| r.blocks.len())
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))
    }

    /// Names of all reels, sorted.
    #[must_use]
    pub fn reel_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.reels.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Mount a reel for reading. The head starts at block 0.
    pub fn open(&self, name: &str) -> Result<ReelReader> {
        let reels = self.reels.lock();
        let reel = reels
            .get(name)
            .ok_or_else(|| StorageError::NoSuchReel(name.to_string()))?;
        Ok(ReelReader {
            name: name.to_string(),
            blocks: reel.blocks.clone(),
            position: 0,
            tracker: self.tracker.clone(),
        })
    }
}

/// A tape head over one reel. Sequential reads are cheap; seeking
/// backwards (or skipping forwards) charges repositioning per block.
pub struct ReelReader {
    name: String,
    blocks: Vec<Arc<[u8]>>,
    position: usize,
    tracker: Tracker,
}

impl std::fmt::Debug for ReelReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReelReader")
            .field("reel", &self.name)
            .field("position", &self.position)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl ReelReader {
    /// Reel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current head position (next block to be read).
    #[must_use]
    pub fn position(&self) -> usize {
        self.position
    }

    /// Total blocks on the mounted reel snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the reel has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Read the block under the head and advance. Errors at end of
    /// reel.
    pub fn read_next(&mut self) -> Result<Arc<[u8]>> {
        match self.blocks.get(self.position) {
            Some(b) => {
                self.position += 1;
                self.tracker.count_archive_read();
                Ok(b.clone())
            }
            None => Err(StorageError::EndOfReel {
                reel: self.name.clone(),
                position: self.position,
            }),
        }
    }

    /// Rewind to block 0, charging repositioning for the distance.
    pub fn rewind(&mut self) {
        self.tracker.count_archive_reposition(self.position as u64);
        self.position = 0;
    }

    /// Position the head at `block`, charging repositioning for the
    /// distance moved (forward skips cost the same as rewinds: the
    /// tape still has to run past every block).
    pub fn seek(&mut self, block: usize) -> Result<()> {
        if block > self.blocks.len() {
            return Err(StorageError::EndOfReel {
                reel: self.name.clone(),
                position: block,
            });
        }
        let dist = self.position.abs_diff(block);
        self.tracker.count_archive_reposition(dist as u64);
        self.position = block;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> ArchiveStore {
        ArchiveStore::new(Tracker::new())
    }

    #[test]
    fn create_append_read() {
        let a = archive();
        a.create_reel("census").unwrap();
        a.append_block("census", b"block-0").unwrap();
        a.append_block("census", b"block-1").unwrap();
        let mut r = a.open("census").unwrap();
        assert_eq!(&*r.read_next().unwrap(), b"block-0");
        assert_eq!(&*r.read_next().unwrap(), b"block-1");
        assert!(r.read_next().is_err());
    }

    #[test]
    fn duplicate_reel_rejected() {
        let a = archive();
        a.create_reel("x").unwrap();
        assert!(matches!(
            a.create_reel("x"),
            Err(StorageError::FileExists(_))
        ));
    }

    #[test]
    fn missing_reel_errors() {
        let a = archive();
        assert!(a.open("nope").is_err());
        assert!(a.append_block("nope", b"x").is_err());
        assert!(a.block_count("nope").is_err());
    }

    #[test]
    fn sequential_reads_charge_transfer_only() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..10u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        while rd.read_next().is_ok() {}
        let s = a.tracker().snapshot();
        assert_eq!(s.archive_block_reads, 10);
        assert_eq!(s.archive_repositioned_blocks, 0);
    }

    #[test]
    fn rewind_charges_distance() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..10u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        for _ in 0..7 {
            rd.read_next().unwrap();
        }
        rd.rewind();
        assert_eq!(a.tracker().snapshot().archive_repositioned_blocks, 7);
        assert_eq!(rd.position(), 0);
        // Second full pass re-reads everything.
        for _ in 0..10 {
            rd.read_next().unwrap();
        }
        assert_eq!(a.tracker().snapshot().archive_block_reads, 17);
    }

    #[test]
    fn seek_charges_absolute_distance() {
        let a = archive();
        a.create_reel("r").unwrap();
        for i in 0..20u8 {
            a.append_block("r", &[i]).unwrap();
        }
        let mut rd = a.open("r").unwrap();
        rd.seek(15).unwrap();
        rd.seek(5).unwrap();
        assert_eq!(a.tracker().snapshot().archive_repositioned_blocks, 25);
        assert_eq!(&*rd.read_next().unwrap(), &[5]);
        assert!(rd.seek(999).is_err());
    }

    #[test]
    fn reader_is_a_snapshot() {
        let a = archive();
        a.create_reel("r").unwrap();
        a.append_block("r", b"one").unwrap();
        let mut rd = a.open("r").unwrap();
        a.append_block("r", b"two").unwrap();
        assert_eq!(rd.len(), 1, "reader mounted before the append");
        assert_eq!(&*rd.read_next().unwrap(), b"one");
        assert!(rd.read_next().is_err());
        let mut rd2 = a.open("r").unwrap();
        assert_eq!(rd2.len(), 2);
        rd2.seek(1).unwrap();
        assert_eq!(&*rd2.read_next().unwrap(), b"two");
    }
}
