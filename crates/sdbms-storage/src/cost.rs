//! I/O accounting.
//!
//! Every storage-level operation charges counters on an [`IoStats`]
//! instance shared (via `Arc`) by the disk, the archive, and any
//! higher-level operator that wants to report tuple counts. Experiments
//! report these counters alongside wall time so results are
//! machine-independent: the paper's arguments (transposed files,
//! summary caching, view materialization) are all about *I/O volume*,
//! which the counters capture exactly.
//!
//! A [`CostModel`] converts the raw counters into abstract *cost
//! units* that mimic the 1982 hardware balance the paper assumes: disk
//! pages are cheap but not free, seeks cost more than sequential
//! transfers, and tape (archive) access is dominated by serpentine
//! rewinds.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-thread stack of session-scoped accounting sinks. Every
    /// charge made through a [`Tracker`] on this thread is mirrored
    /// into each active scope, which is how a snapshot session learns
    /// *its own* I/O on counters shared by every analyst — the global
    /// totals stay exact, and each session's scope sees exactly the
    /// operations the current thread performed while it was entered.
    static SCOPES: RefCell<Vec<Arc<IoStats>>> = const { RefCell::new(Vec::new()) };
}

/// One monotone event counter.
///
/// The only place in the accounting layer that touches atomic memory
/// orderings. `Relaxed` is sound here and nowhere weaker would do:
/// each counter is independent (no cross-counter invariant is read
/// concurrently), increments are atomic read-modify-writes (no lost
/// updates at any ordering), and exact totals are only asserted after
/// the producing threads have been joined — the join itself is the
/// synchronisation edge that publishes the final values.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` events.
    pub fn add(&self, n: u64) {
        // lint: allow(relaxed-ordering): independent monotone counter; RMW atomicity prevents lost updates and thread join publishes totals
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        // lint: allow(relaxed-ordering): single-counter read; exactness is only claimed for quiesced (joined) producers
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiment phases, while quiesced).
    pub fn zero(&self) {
        // lint: allow(relaxed-ordering): reset runs between phases with no concurrent producers
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Shared, thread-safe I/O counters.
///
/// Cloning the wrapper [`Tracker`] shares the same counters; call
/// [`IoStats::snapshot`] to read a consistent-enough view (counters are
/// monotone, so a snapshot taken while idle is exact).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages fetched from the simulated disk into the buffer pool.
    pub page_reads: Counter,
    /// Dirty pages written back to the simulated disk.
    pub page_writes: Counter,
    /// Non-sequential disk accesses (head movement).
    pub seeks: Counter,
    /// Buffer pool hits (requests satisfied without disk I/O).
    pub pool_hits: Counter,
    /// Blocks read from archive (tape) reels.
    pub archive_block_reads: Counter,
    /// Blocks skipped or rewound over to reposition an archive reel.
    pub archive_repositioned_blocks: Counter,
    /// Tuples produced by relational / statistical operators.
    pub tuples: Counter,
    /// I/O attempts re-issued after a transient fault.
    pub retries: Counter,
    /// Abstract backoff delay units charged by the retry policy.
    pub backoff_units: Counter,
    /// Reads rejected because stored bytes failed CRC verification.
    pub checksum_failures: Counter,
}

/// A point-in-time copy of the counters in [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages fetched from disk.
    pub page_reads: u64,
    /// Pages written back to disk.
    pub page_writes: u64,
    /// Non-sequential disk accesses.
    pub seeks: u64,
    /// Buffer pool hits.
    pub pool_hits: u64,
    /// Archive blocks read.
    pub archive_block_reads: u64,
    /// Archive blocks skipped or rewound over.
    pub archive_repositioned_blocks: u64,
    /// Tuples produced by operators.
    pub tuples: u64,
    /// I/O attempts re-issued after a transient fault.
    pub retries: u64,
    /// Abstract backoff delay units charged by the retry policy.
    pub backoff_units: u64,
    /// Reads rejected by CRC verification.
    pub checksum_failures: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier`, for measuring one
    /// operation's contribution.
    #[must_use]
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            seeks: self.seeks - earlier.seeks,
            pool_hits: self.pool_hits - earlier.pool_hits,
            archive_block_reads: self.archive_block_reads - earlier.archive_block_reads,
            archive_repositioned_blocks: self.archive_repositioned_blocks
                - earlier.archive_repositioned_blocks,
            tuples: self.tuples - earlier.tuples,
            retries: self.retries - earlier.retries,
            backoff_units: self.backoff_units - earlier.backoff_units,
            checksum_failures: self.checksum_failures - earlier.checksum_failures,
        }
    }

    /// Total disk page I/Os (reads + writes).
    #[must_use]
    pub fn page_ios(&self) -> u64 {
        self.page_reads + self.page_writes
    }

    /// Counter-wise sum `self + other`, for combining per-worker
    /// deltas from a parallel scan. Integer addition is exact and
    /// associative, so merged snapshots sum to the serial totals
    /// regardless of how the work was partitioned.
    pub fn merge(&mut self, other: &IoSnapshot) {
        self.page_reads += other.page_reads;
        self.page_writes += other.page_writes;
        self.seeks += other.seeks;
        self.pool_hits += other.pool_hits;
        self.archive_block_reads += other.archive_block_reads;
        self.archive_repositioned_blocks += other.archive_repositioned_blocks;
        self.tuples += other.tuples;
        self.retries += other.retries;
        self.backoff_units += other.backoff_units;
        self.checksum_failures += other.checksum_failures;
    }
}

impl IoStats {
    /// Read all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.get(),
            page_writes: self.page_writes.get(),
            seeks: self.seeks.get(),
            pool_hits: self.pool_hits.get(),
            archive_block_reads: self.archive_block_reads.get(),
            archive_repositioned_blocks: self.archive_repositioned_blocks.get(),
            tuples: self.tuples.get(),
            retries: self.retries.get(),
            backoff_units: self.backoff_units.get(),
            checksum_failures: self.checksum_failures.get(),
        }
    }

    /// Reset every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.page_reads.zero();
        self.page_writes.zero();
        self.seeks.zero();
        self.pool_hits.zero();
        self.archive_block_reads.zero();
        self.archive_repositioned_blocks.zero();
        self.tuples.zero();
        self.retries.zero();
        self.backoff_units.zero();
        self.checksum_failures.zero();
    }
}

/// Cheap-to-clone handle to shared [`IoStats`].
#[derive(Debug, Clone, Default)]
pub struct Tracker(Arc<IoStats>);

/// An RAII marker that routes a copy of this thread's I/O charges into
/// a private [`IoStats`] until dropped. Scopes nest (an inner scope's
/// charges also land in the outer one) and are cheap: entering pushes
/// one `Arc` onto a thread-local stack.
///
/// This is what gives per-session I/O accounting on shared storage:
/// the global tracker keeps exact totals for the whole system, while
/// each open snapshot enters a scope around its reads and sees only
/// the I/O *it* incurred — never another analyst's.
#[derive(Debug)]
pub struct IoScope {
    stats: Arc<IoStats>,
}

impl IoScope {
    /// Enter a scope on the current thread: until the returned guard
    /// drops, every charge made on this thread is mirrored into
    /// `stats`.
    #[must_use]
    pub fn enter(stats: Arc<IoStats>) -> IoScope {
        SCOPES.with(|stack| stack.borrow_mut().push(Arc::clone(&stats)));
        IoScope { stats }
    }

    /// The scope's private stats sink.
    #[must_use]
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

impl Drop for IoScope {
    fn drop(&mut self) {
        SCOPES.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards usually drop LIFO, but search from the top so an
            // out-of-order drop removes its own entry, not a peer's.
            if let Some(i) = stack.iter().rposition(|s| Arc::ptr_eq(s, &self.stats)) {
                stack.remove(i);
            }
        });
    }
}

impl Tracker {
    /// Create a fresh tracker with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one charge to the shared counters and mirror it into
    /// every [`IoScope`] active on the current thread.
    fn charge(&self, f: impl Fn(&IoStats)) {
        f(&self.0);
        SCOPES.with(|stack| {
            for scope in stack.borrow().iter() {
                f(scope);
            }
        });
    }

    /// The underlying shared stats.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        &self.0
    }

    /// Read all counters.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        self.0.snapshot()
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.0.reset();
    }

    /// Charge one disk page read.
    pub fn count_page_read(&self) {
        self.charge(|s| s.page_reads.add(1));
    }
    /// Charge one disk page write.
    pub fn count_page_write(&self) {
        self.charge(|s| s.page_writes.add(1));
    }
    /// Charge one disk seek.
    pub fn count_seek(&self) {
        self.charge(|s| s.seeks.add(1));
    }
    /// Charge one buffer-pool hit (no disk I/O).
    pub fn count_pool_hit(&self) {
        self.charge(|s| s.pool_hits.add(1));
    }
    /// Charge one archive block transfer.
    pub fn count_archive_read(&self) {
        self.charge(|s| s.archive_block_reads.add(1));
    }
    /// Charge `blocks` of archive repositioning (skip/rewind).
    pub fn count_archive_reposition(&self, blocks: u64) {
        self.charge(|s| s.archive_repositioned_blocks.add(blocks));
    }
    /// Charge `n` tuples produced by an operator.
    pub fn count_tuples(&self, n: u64) {
        self.charge(|s| s.tuples.add(n));
    }
    /// Charge one retried I/O attempt.
    pub fn count_retry(&self) {
        self.charge(|s| s.retries.add(1));
    }
    /// Charge `units` of simulated backoff delay before a retry.
    pub fn count_backoff(&self, units: u64) {
        self.charge(|s| s.backoff_units.add(units));
    }
    /// Charge one CRC verification failure.
    pub fn count_checksum_failure(&self) {
        self.charge(|s| s.checksum_failures.add(1));
    }

    /// Add a snapshot's counts into the shared counters — used when a
    /// parallel worker accounted its I/O on a private tracker and the
    /// coordinator folds the per-worker deltas back in. The folded
    /// work belongs to the calling session, so active scopes on this
    /// thread are charged too.
    pub fn absorb(&self, s: &IoSnapshot) {
        self.charge(|t| {
            t.page_reads.add(s.page_reads);
            t.page_writes.add(s.page_writes);
            t.seeks.add(s.seeks);
            t.pool_hits.add(s.pool_hits);
            t.archive_block_reads.add(s.archive_block_reads);
            t.archive_repositioned_blocks
                .add(s.archive_repositioned_blocks);
            t.tuples.add(s.tuples);
            t.retries.add(s.retries);
            t.backoff_units.add(s.backoff_units);
            t.checksum_failures.add(s.checksum_failures);
        });
    }
}

/// Converts raw I/O counters into abstract cost units.
///
/// The defaults model the storage hierarchy the paper assumes: disk
/// page transfers are the unit, a seek costs several transfers, a tape
/// block transfer is comparable to a disk page but *repositioning* the
/// reel is very expensive — which is exactly why the paper insists
/// views be materialized onto disk rather than re-read from tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of transferring one disk page.
    pub page_read: f64,
    /// Cost of writing one disk page.
    pub page_write: f64,
    /// Cost of one disk seek (non-sequential access).
    pub seek: f64,
    /// Cost of reading one archive (tape) block in sequence.
    pub archive_block_read: f64,
    /// Cost of skipping / rewinding over one archive block.
    pub archive_reposition_block: f64,
    /// Cost of one backoff delay unit charged by the retry policy
    /// (the failed attempt's transfer is already counted separately).
    pub backoff_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            page_read: 1.0,
            page_write: 1.0,
            seek: 4.0,
            archive_block_read: 1.5,
            archive_reposition_block: 0.5,
            backoff_unit: 0.25,
        }
    }
}

impl CostModel {
    /// Total abstract cost of a counter snapshot under this model.
    #[must_use]
    pub fn cost(&self, s: &IoSnapshot) -> f64 {
        s.page_reads as f64 * self.page_read
            + s.page_writes as f64 * self.page_write
            + s.seeks as f64 * self.seek
            + s.archive_block_reads as f64 * self.archive_block_read
            + s.archive_repositioned_blocks as f64 * self.archive_reposition_block
            + s.backoff_units as f64 * self.backoff_unit
    }

    /// The same cost in integer **milli-units** (1/1000 of a cost
    /// unit), computed with integer arithmetic only. Unlike the float
    /// form, milli-costs are exact and associative: charging a tenant
    /// request-by-request sums to precisely the cost of the merged
    /// counters, which is the property the serving layer's
    /// token-bucket quota accounting asserts. Weights are rounded to
    /// the nearest milli-unit once, up front.
    #[must_use]
    pub fn cost_milli(&self, s: &IoSnapshot) -> u64 {
        fn milli(w: f64) -> u64 {
            (w * 1000.0).round().max(0.0) as u64
        }
        s.page_reads * milli(self.page_read)
            + s.page_writes * milli(self.page_write)
            + s.seeks * milli(self.seek)
            + s.archive_block_reads * milli(self.archive_block_read)
            + s.archive_repositioned_blocks * milli(self.archive_reposition_block)
            + s.backoff_units * milli(self.backoff_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let t = Tracker::new();
        t.count_page_read();
        t.count_page_read();
        t.count_page_write();
        t.count_seek();
        t.count_pool_hit();
        t.count_archive_read();
        t.count_archive_reposition(10);
        t.count_tuples(5);
        let s = t.snapshot();
        assert_eq!(s.page_reads, 2);
        assert_eq!(s.page_writes, 1);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.archive_block_reads, 1);
        assert_eq!(s.archive_repositioned_blocks, 10);
        assert_eq!(s.tuples, 5);
        assert_eq!(s.page_ios(), 3);
    }

    #[test]
    fn since_subtracts() {
        let t = Tracker::new();
        t.count_page_read();
        let before = t.snapshot();
        t.count_page_read();
        t.count_page_read();
        let after = t.snapshot();
        let d = after.since(&before);
        assert_eq!(d.page_reads, 2);
        assert_eq!(d.page_writes, 0);
    }

    #[test]
    fn clones_share_counters() {
        let t = Tracker::new();
        let t2 = t.clone();
        t2.count_seek();
        assert_eq!(t.snapshot().seeks, 1);
    }

    #[test]
    fn reset_zeroes() {
        let t = Tracker::new();
        t.count_page_read();
        t.reset();
        assert_eq!(t.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn cost_model_weights() {
        let m = CostModel::default();
        let s = IoSnapshot {
            page_reads: 10,
            page_writes: 2,
            seeks: 1,
            pool_hits: 100, // free
            archive_block_reads: 4,
            archive_repositioned_blocks: 8,
            tuples: 0,
            retries: 3, // free in themselves; the re-issued I/O is counted
            backoff_units: 8,
            checksum_failures: 1, // free: detection costs nothing extra
        };
        let expected = 10.0 + 2.0 + 4.0 + 4.0 * 1.5 + 8.0 * 0.5 + 8.0 * 0.25;
        assert!((m.cost(&s) - expected).abs() < 1e-12);
        // The integer form agrees with the float form at default
        // weights (all of which are exact multiples of a milli-unit).
        assert_eq!(m.cost_milli(&s), (expected * 1000.0).round() as u64);
    }

    #[test]
    fn milli_cost_is_exactly_associative() {
        // Charging piecewise must sum to exactly the cost of the
        // merged counters — the serving layer's quota ledgers assert
        // this equality across thousands of requests.
        let m = CostModel::default();
        let mut state = 0x5EED_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut merged = IoSnapshot::default();
        let mut piecewise = 0u64;
        for _ in 0..1000 {
            let s = IoSnapshot {
                page_reads: next() % 50,
                page_writes: next() % 20,
                seeks: next() % 10,
                pool_hits: next() % 100,
                archive_block_reads: next() % 8,
                archive_repositioned_blocks: next() % 30,
                tuples: next() % 1000,
                retries: next() % 4,
                backoff_units: next() % 12,
                checksum_failures: 0,
            };
            piecewise += m.cost_milli(&s);
            merged.merge(&s);
        }
        assert_eq!(piecewise, m.cost_milli(&merged));
    }

    #[test]
    fn snapshot_merge_and_absorb_sum_exactly() {
        let a = IoSnapshot {
            page_reads: 3,
            seeks: 1,
            tuples: 10,
            ..IoSnapshot::default()
        };
        let b = IoSnapshot {
            page_reads: 4,
            page_writes: 2,
            tuples: 5,
            retries: 1,
            ..IoSnapshot::default()
        };
        let mut sum = a;
        sum.merge(&b);
        assert_eq!(sum.page_reads, 7);
        assert_eq!(sum.page_writes, 2);
        assert_eq!(sum.seeks, 1);
        assert_eq!(sum.tuples, 15);
        assert_eq!(sum.retries, 1);
        let t = Tracker::new();
        t.count_pool_hit();
        t.absorb(&sum);
        let s = t.snapshot();
        assert_eq!(s.page_reads, 7);
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.tuples, 15);
    }

    #[test]
    fn concurrent_hammer_counts_exactly() {
        // Many threads hammering one shared tracker, plus per-worker
        // private trackers whose snapshots are merged: both paths must
        // agree with the arithmetic total exactly.
        const THREADS: u64 = 8;
        const OPS: u64 = 10_000;
        let shared = Tracker::new();
        let merged = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let private = Tracker::new();
                        for _ in 0..OPS {
                            shared.count_page_read();
                            shared.count_tuples(2);
                            private.count_page_read();
                            private.count_tuples(2);
                        }
                        private.snapshot()
                    })
                })
                .collect();
            let mut merged = IoSnapshot::default();
            for h in handles {
                merged.merge(&h.join().expect("hammer worker panicked"));
            }
            merged
        });
        let s = shared.snapshot();
        assert_eq!(s.page_reads, THREADS * OPS);
        assert_eq!(s.tuples, 2 * THREADS * OPS);
        assert_eq!(merged, s);
        // Absorbing the merged per-worker deltas doubles the shared
        // counters — exact integer accounting end to end.
        shared.absorb(&merged);
        assert_eq!(shared.snapshot().page_reads, 2 * THREADS * OPS);
    }

    #[test]
    fn scope_mirrors_only_this_threads_charges() {
        let t = Tracker::new();
        t.count_page_read(); // before the scope — not mirrored
        let scope = IoScope::enter(Arc::new(IoStats::default()));
        t.count_page_read();
        t.count_tuples(3);
        t.absorb(&IoSnapshot {
            seeks: 2,
            ..IoSnapshot::default()
        });
        let scoped = scope.stats().snapshot();
        drop(scope);
        t.count_page_read(); // after the scope — not mirrored
        assert_eq!(scoped.page_reads, 1);
        assert_eq!(scoped.tuples, 3);
        assert_eq!(scoped.seeks, 2);
        // Global totals stay exact regardless of scoping.
        let s = t.snapshot();
        assert_eq!(s.page_reads, 3);
        assert_eq!(s.tuples, 3);
        assert_eq!(s.seeks, 2);
    }

    #[test]
    fn nested_scopes_both_see_inner_charges() {
        let t = Tracker::new();
        let outer = IoScope::enter(Arc::new(IoStats::default()));
        t.count_seek();
        let inner = IoScope::enter(Arc::new(IoStats::default()));
        t.count_page_write();
        assert_eq!(inner.stats().snapshot().page_writes, 1);
        assert_eq!(inner.stats().snapshot().seeks, 0);
        drop(inner);
        t.count_pool_hit();
        let o = outer.stats().snapshot();
        assert_eq!(o.seeks, 1);
        assert_eq!(o.page_writes, 1);
        assert_eq!(o.pool_hits, 1);
    }

    #[test]
    fn out_of_order_drop_removes_the_right_scope() {
        let t = Tracker::new();
        let a = IoScope::enter(Arc::new(IoStats::default()));
        let b = IoScope::enter(Arc::new(IoStats::default()));
        // Drop the *outer* guard first; the inner one must keep
        // receiving charges.
        drop(a);
        t.count_page_read();
        assert_eq!(b.stats().snapshot().page_reads, 1);
        drop(b);
        t.count_page_read();
        assert_eq!(t.snapshot().page_reads, 2);
    }

    #[test]
    fn scoped_hammer_attributes_io_per_session_exactly() {
        // Eight analyst sessions on one shared tracker, each scoping
        // its own thread's work: every session's scope must sum to
        // exactly its own operations, and the shared totals to the
        // grand total — no charge lost, none double-attributed.
        const THREADS: u64 = 8;
        const OPS: u64 = 10_000;
        let shared = Tracker::new();
        let per_session = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|i| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let guard = IoScope::enter(Arc::new(IoStats::default()));
                        for _ in 0..OPS {
                            shared.count_page_read();
                            shared.count_tuples(i + 1);
                        }
                        let s = guard.stats().snapshot();
                        (i, s)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scoped hammer worker panicked"))
                .collect::<Vec<_>>()
        });
        for (i, s) in &per_session {
            assert_eq!(s.page_reads, OPS, "session {i} page reads");
            assert_eq!(s.tuples, (i + 1) * OPS, "session {i} tuples");
        }
        let total = shared.snapshot();
        assert_eq!(total.page_reads, THREADS * OPS);
        let tuple_sum: u64 = (1..=THREADS).map(|k| k * OPS).sum();
        assert_eq!(total.tuples, tuple_sum);
    }

    #[test]
    fn retry_counters_roundtrip() {
        let t = Tracker::new();
        t.count_retry();
        t.count_retry();
        t.count_backoff(3);
        t.count_checksum_failure();
        let s = t.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff_units, 3);
        assert_eq!(s.checksum_failures, 1);
        t.reset();
        assert_eq!(t.snapshot(), IoSnapshot::default());
    }
}
