//! Long records: values spanning multiple pages.
//!
//! WiSS (the storage system the paper planned to build on) supported
//! "long data items"; we need them because Summary Database entries are
//! explicitly varying-length (§3.2) and can exceed a page — a
//! fine-grained histogram, a verbal data-set description, a wide
//! frequency table.
//!
//! A long record is a chain of heap-file chunks. Each chunk starts with
//! a 7-byte header — `u8` has-next flag, then the successor's record
//! id — followed by payload. Chunks are inserted tail-first so every
//! chunk knows its successor at insert time; the returned [`Rid`] is
//! the head chunk's.

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::heap::{HeapFile, Rid, MAX_RECORD};

/// Per-chunk header: flag byte + page id + slot.
const HEADER: usize = 1 + 4 + 2;

/// Payload capacity per chunk.
pub const CHUNK_PAYLOAD: usize = MAX_RECORD - HEADER;

/// A heap file storing records of unbounded length.
pub struct LongRecordFile {
    file: HeapFile,
}

impl std::fmt::Debug for LongRecordFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LongRecordFile")
            .field("chunks", &self.file.record_count())
            .field("pages", &self.file.page_count())
            .finish()
    }
}

fn encode_chunk(next: Option<Rid>, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    match next {
        Some(rid) => {
            buf.push(1);
            buf.extend_from_slice(&rid.page.to_le_bytes());
            buf.extend_from_slice(&rid.slot.to_le_bytes());
        }
        None => {
            buf.push(0);
            buf.extend_from_slice(&[0u8; 6]);
        }
    }
    buf.extend_from_slice(payload);
    buf
}

fn decode_chunk(bytes: &[u8]) -> Result<(Option<Rid>, &[u8])> {
    if bytes.len() < HEADER {
        return Err(StorageError::corrupt("long-record chunk too short"));
    }
    let next = match bytes[0] {
        0 => None,
        1 => {
            let page = bytes[1..5]
                .try_into()
                .map_err(|_| StorageError::corrupt("long-record header truncated"))?;
            let slot = bytes[5..7]
                .try_into()
                .map_err(|_| StorageError::corrupt("long-record header truncated"))?;
            Some(Rid::new(u32::from_le_bytes(page), u16::from_le_bytes(slot)))
        }
        _ => return Err(StorageError::corrupt("bad long-record flag byte")),
    };
    Ok((next, &bytes[HEADER..]))
}

impl LongRecordFile {
    /// Create an empty long-record file.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Ok(LongRecordFile {
            file: HeapFile::create(pool)?,
        })
    }

    /// Store `bytes` (any length), returning the head record id.
    pub fn insert(&self, bytes: &[u8]) -> Result<Rid> {
        // Insert tail-first so each chunk can point at its successor.
        let chunks: Vec<&[u8]> = if bytes.is_empty() {
            vec![&[][..]]
        } else {
            bytes.chunks(CHUNK_PAYLOAD).collect()
        };
        let mut next: Option<Rid> = None;
        for chunk in chunks.iter().rev() {
            let rid = self.file.insert(&encode_chunk(next, chunk))?;
            next = Some(rid);
        }
        next.ok_or_else(|| StorageError::corrupt("long record produced no chunks"))
    }

    /// Read the full record starting at `head`.
    pub fn get(&self, head: Rid) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cursor = Some(head);
        while let Some(rid) = cursor {
            // Corrupt or crash-torn headers can link chunks into a
            // cycle; revisiting a chunk means the chain is damaged.
            if !seen.insert(rid) {
                return Err(StorageError::corrupt("long-record chunk cycle").at_page(rid.page));
            }
            let bytes = self.file.get(rid)?;
            let (next, payload) = decode_chunk(&bytes).map_err(|e| e.at_page(rid.page))?;
            out.extend_from_slice(payload);
            cursor = next;
        }
        Ok(out)
    }

    /// Delete the record starting at `head`, freeing every chunk.
    pub fn delete(&self, head: Rid) -> Result<()> {
        let mut seen = std::collections::HashSet::new();
        let mut cursor = Some(head);
        while let Some(rid) = cursor {
            if !seen.insert(rid) {
                return Err(StorageError::corrupt("long-record chunk cycle").at_page(rid.page));
            }
            let bytes = self.file.get(rid)?;
            let (next, _) = decode_chunk(&bytes).map_err(|e| e.at_page(rid.page))?;
            self.file.delete(rid)?;
            cursor = next;
        }
        Ok(())
    }

    /// Replace the record at `head` with `bytes`. The head id may
    /// change; callers maintaining an index must use the returned id.
    pub fn update(&self, head: Rid, bytes: &[u8]) -> Result<Rid> {
        self.delete(head)?;
        self.insert(bytes)
    }

    /// Number of live chunks (diagnostics).
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        self.file.record_count()
    }

    /// Number of disk pages used.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.file.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Tracker;
    use crate::disk::DiskManager;

    fn file(frames: usize) -> LongRecordFile {
        let disk = Arc::new(DiskManager::new(Tracker::new()));
        let pool = Arc::new(BufferPool::new(disk, frames));
        LongRecordFile::create(pool).unwrap()
    }

    fn blob(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn small_record_single_chunk() {
        let f = file(8);
        let rid = f.insert(b"short").unwrap();
        assert_eq!(f.get(rid).unwrap(), b"short");
        assert_eq!(f.chunk_count(), 1);
    }

    #[test]
    fn empty_record_roundtrip() {
        let f = file(8);
        let rid = f.insert(&[]).unwrap();
        assert_eq!(f.get(rid).unwrap(), Vec::<u8>::new());
        f.delete(rid).unwrap();
        assert_eq!(f.chunk_count(), 0);
    }

    #[test]
    fn multi_page_record_roundtrip() {
        let f = file(16);
        // 3.5 chunks worth.
        let data = blob(CHUNK_PAYLOAD * 3 + CHUNK_PAYLOAD / 2, 7);
        let rid = f.insert(&data).unwrap();
        assert_eq!(f.chunk_count(), 4);
        assert_eq!(f.get(rid).unwrap(), data);
    }

    #[test]
    fn boundary_sizes() {
        let f = file(16);
        for len in [
            CHUNK_PAYLOAD - 1,
            CHUNK_PAYLOAD,
            CHUNK_PAYLOAD + 1,
            2 * CHUNK_PAYLOAD,
        ] {
            let data = blob(len, len as u8);
            let rid = f.insert(&data).unwrap();
            assert_eq!(f.get(rid).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn delete_frees_all_chunks() {
        let f = file(16);
        let before = f.chunk_count();
        let rid = f.insert(&blob(CHUNK_PAYLOAD * 5, 3)).unwrap();
        assert_eq!(f.chunk_count(), before + 5);
        f.delete(rid).unwrap();
        assert_eq!(f.chunk_count(), before);
        assert!(f.get(rid).is_err(), "head chunk gone");
    }

    #[test]
    fn update_shrinks_and_grows() {
        let f = file(16);
        let rid = f.insert(&blob(CHUNK_PAYLOAD * 3, 1)).unwrap();
        let small = blob(100, 2);
        let rid2 = f.update(rid, &small).unwrap();
        assert_eq!(f.get(rid2).unwrap(), small);
        assert_eq!(f.chunk_count(), 1);
        let big = blob(CHUNK_PAYLOAD * 6, 3);
        let rid3 = f.update(rid2, &big).unwrap();
        assert_eq!(f.get(rid3).unwrap(), big);
        assert_eq!(f.chunk_count(), 6);
    }

    #[test]
    fn many_interleaved_records() {
        let f = file(32);
        let mut rids = Vec::new();
        for i in 0..30usize {
            let data = blob(i * 997, i as u8);
            rids.push((f.insert(&data).unwrap(), data));
        }
        // Delete every third.
        for (rid, _) in rids.iter().step_by(3) {
            f.delete(*rid).unwrap();
        }
        for (i, (rid, data)) in rids.iter().enumerate() {
            if i % 3 == 0 {
                continue;
            }
            assert_eq!(&f.get(*rid).unwrap(), data, "record {i}");
        }
    }

    #[test]
    fn works_with_tiny_pool() {
        let f = file(3);
        let data = blob(CHUNK_PAYLOAD * 10, 9);
        let rid = f.insert(&data).unwrap();
        assert_eq!(f.get(rid).unwrap(), data);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip_any_size(len in 0usize..20_000, seed: u8) {
            let f = file(16);
            let data = blob(len, seed);
            let rid = f.insert(&data).unwrap();
            proptest::prop_assert_eq!(f.get(rid).unwrap(), data);
        }
    }
}
