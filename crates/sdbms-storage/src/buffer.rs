//! Buffer pool with clock (second-chance) replacement.
//!
//! A fixed number of in-memory frames cache disk pages. Guards returned
//! by [`BufferPool::fetch`] keep their frame pinned until dropped;
//! mutation through a guard marks the frame dirty and the page is
//! written back only on eviction or [`BufferPool::flush_all`]. The pool
//! charges a `pool_hit` on the shared tracker when a request avoids
//! disk I/O, which is how experiment E4 measures the interaction
//! between pool size and file layout.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cost::Tracker;
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId};

#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    page_id: PageId,
    pin_count: u32,
    dirty: bool,
    referenced: bool,
    valid: bool,
}

impl FrameMeta {
    fn empty() -> Self {
        FrameMeta {
            page_id: 0,
            pin_count: 0,
            dirty: false,
            referenced: false,
            valid: false,
        }
    }
}

struct PoolState {
    meta: Vec<FrameMeta>,
    map: HashMap<PageId, usize>,
    clock_hand: usize,
}

/// A fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    frames: Vec<Mutex<Page>>,
    state: Mutex<PoolState>,
    tracker: Tracker,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("frames", &self.frames.len())
            .finish()
    }
}

/// A pinned page. The frame cannot be evicted while the guard lives.
///
/// Access page bytes with [`PageGuard::with`]; mutate (and mark dirty)
/// with [`PageGuard::with_mut`].
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    frame: usize,
    page_id: PageId,
}

impl PageGuard<'_> {
    /// The id of the pinned page.
    #[must_use]
    pub fn page_id(&self) -> PageId {
        self.page_id
    }

    /// Run `f` with shared access to the page bytes.
    pub fn with<R>(&self, f: impl FnOnce(&Page) -> R) -> R {
        let page = self.pool.frames[self.frame].lock();
        f(&page)
    }

    /// Run `f` with mutable access to the page bytes and mark the frame
    /// dirty.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Page) -> R) -> R {
        let mut page = self.pool.frames[self.frame].lock();
        let r = f(&mut page);
        drop(page);
        self.pool.state.lock().meta[self.frame].dirty = true;
        r
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.pool.state.lock();
        let meta = &mut state.meta[self.frame];
        debug_assert!(meta.valid && meta.page_id == self.page_id);
        meta.pin_count = meta.pin_count.saturating_sub(1);
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let tracker = disk.tracker().clone();
        BufferPool {
            disk,
            frames: (0..capacity).map(|_| Mutex::new(Page::new())).collect(),
            state: Mutex::new(PoolState {
                meta: vec![FrameMeta::empty(); capacity],
                map: HashMap::new(),
                clock_hand: 0,
            }),
            tracker,
        }
    }

    /// Number of frames.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The disk underneath this pool.
    #[must_use]
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// The shared I/O tracker.
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Pin page `pid`, reading it from disk if not resident.
    ///
    /// Pool hits consult the shared fault injector too (advancing its
    /// operation counter, and failing while a simulated crash is in
    /// effect); misses are covered by the disk's own fault handling.
    pub fn fetch(&self, pid: PageId) -> Result<PageGuard<'_>> {
        let mut state = self.state.lock();
        if let Some(&frame) = state.map.get(&pid) {
            if self.disk.injector().on_cache_op().is_some() {
                return Err(StorageError::Crashed);
            }
            // Budget checkpoint only — hits consume no budget (cache
            // reads cost ~0 in the cost model), but a cancelled or
            // expired request must still stop a long fully-cached scan.
            crate::budget::charge_ambient_ops(0)?;
            let meta = &mut state.meta[frame];
            meta.pin_count += 1;
            meta.referenced = true;
            self.tracker.count_pool_hit();
            return Ok(PageGuard {
                pool: self,
                frame,
                page_id: pid,
            });
        }
        let frame = self.take_victim(&mut state)?;
        // Read the page into the frame while holding the state lock:
        // the frame is not yet mapped, so no other guard can touch it,
        // and holding the lock keeps victim selection race-free.
        {
            let mut page = self.frames[frame].lock();
            self.disk.read_page(pid, &mut page)?;
        }
        state.meta[frame] = FrameMeta {
            page_id: pid,
            pin_count: 1,
            dirty: false,
            referenced: true,
            valid: true,
        };
        state.map.insert(pid, frame);
        Ok(PageGuard {
            pool: self,
            frame,
            page_id: pid,
        })
    }

    /// Allocate a fresh zeroed page on disk and pin it without a disk
    /// read.
    pub fn new_page(&self) -> Result<(PageId, PageGuard<'_>)> {
        if self.disk.injector().is_crashed() {
            return Err(StorageError::Crashed);
        }
        let pid = self.disk.allocate();
        let mut state = self.state.lock();
        // The disk may recycle a page id that was deallocated behind
        // the pool's back (a direct `DiskManager::deallocate`). Any
        // frame still mapped to that id holds stale bytes from the
        // page's previous life and must be invalidated, or the next
        // fetch would serve them as a pool hit.
        if let Some(&stale) = state.map.get(&pid) {
            if state.meta[stale].pin_count > 0 {
                return Err(
                    StorageError::corrupt("recycled page id still pinned in buffer pool")
                        .at_page(pid),
                );
            }
            state.map.remove(&pid);
            state.meta[stale] = FrameMeta::empty();
        }
        let frame = match self.take_victim(&mut state) {
            Ok(f) => f,
            Err(e) => {
                // Roll back the allocation so the disk doesn't leak.
                // lint: allow(swallowed-error): best-effort rollback of a just-made allocation; the eviction error is the one the caller must see
                let _ = self.disk.deallocate(pid);
                return Err(e);
            }
        };
        {
            let mut page = self.frames[frame].lock();
            *page = Page::new();
        }
        state.meta[frame] = FrameMeta {
            page_id: pid,
            pin_count: 1,
            dirty: true,
            referenced: true,
            valid: true,
        };
        state.map.insert(pid, frame);
        Ok((
            pid,
            PageGuard {
                pool: self,
                frame,
                page_id: pid,
            },
        ))
    }

    /// Drop page `pid` from the pool (without write-back) and free it
    /// on disk. Fails if the page is pinned.
    pub fn free_page(&self, pid: PageId) -> Result<()> {
        let mut state = self.state.lock();
        if let Some(&frame) = state.map.get(&pid) {
            if state.meta[frame].pin_count > 0 {
                return Err(StorageError::PoolExhausted);
            }
            state.map.remove(&pid);
            state.meta[frame] = FrameMeta::empty();
        }
        self.disk.deallocate(pid)
    }

    /// Write every dirty frame back to disk (frames stay resident).
    ///
    /// Frames are flushed in ascending page-id order so the simulated
    /// disk sees a mostly-sequential pass; a fault part-way through
    /// leaves earlier pages durable and later ones still dirty, which
    /// is exactly the torn state crash-recovery protocols must handle.
    pub fn flush_all(&self) -> Result<()> {
        if self.disk.injector().is_crashed() {
            return Err(StorageError::Crashed);
        }
        let mut state = self.state.lock();
        let mut dirty: Vec<usize> = (0..self.frames.len())
            .filter(|&f| state.meta[f].valid && state.meta[f].dirty)
            .collect();
        dirty.sort_by_key(|&f| state.meta[f].page_id);
        for frame in dirty {
            let pid = state.meta[frame].page_id;
            let page = self.frames[frame].lock();
            self.disk.write_page(pid, &page)?;
            drop(page);
            state.meta[frame].dirty = false;
        }
        Ok(())
    }

    /// Drop every unpinned frame *without* write-back, modelling the
    /// loss of volatile memory in a crash. Returns how many dirty
    /// frames were discarded. Fails (touching nothing) if any frame is
    /// still pinned — guards must be dropped before simulating a
    /// restart.
    pub fn discard_frames(&self) -> Result<usize> {
        let mut state = self.state.lock();
        if state.meta.iter().any(|m| m.valid && m.pin_count > 0) {
            return Err(StorageError::PoolExhausted);
        }
        let lost = state.meta.iter().filter(|m| m.valid && m.dirty).count();
        state.map.clear();
        for meta in &mut state.meta {
            *meta = FrameMeta::empty();
        }
        state.clock_hand = 0;
        Ok(lost)
    }

    /// Number of currently resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Pick a victim frame, evicting (with write-back if dirty) as
    /// needed. Returns the frame index, unmapped and ready for reuse.
    fn take_victim(&self, state: &mut PoolState) -> Result<usize> {
        let n = self.frames.len();
        // Two full sweeps: the first clears reference bits, the second
        // must then find any unpinned frame.
        for _ in 0..2 * n {
            let f = state.clock_hand;
            state.clock_hand = (state.clock_hand + 1) % n;
            let meta = state.meta[f];
            if !meta.valid {
                return Ok(f);
            }
            if meta.pin_count > 0 {
                continue;
            }
            if meta.referenced {
                state.meta[f].referenced = false;
                continue;
            }
            // Evict.
            if meta.dirty {
                let page = self.frames[f].lock();
                self.disk.write_page(meta.page_id, &page)?;
            }
            state.map.remove(&meta.page_id);
            state.meta[f] = FrameMeta::empty();
            return Ok(f);
        }
        Err(StorageError::PoolExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        let disk = Arc::new(DiskManager::new(Tracker::new()));
        BufferPool::new(disk, frames)
    }

    #[test]
    fn new_page_roundtrip_through_eviction() {
        let p = pool(2);
        let pid = {
            let (pid, g) = p.new_page().unwrap();
            g.with_mut(|pg| pg.put_u32(0, 7));
            pid
        };
        // Evict by filling the pool with other pages.
        for _ in 0..4 {
            let _ = p.new_page().unwrap();
        }
        let g = p.fetch(pid).unwrap();
        assert_eq!(g.with(|pg| pg.get_u32(0)), 7);
    }

    #[test]
    fn pool_hit_counts() {
        let p = pool(4);
        let (pid, g) = p.new_page().unwrap();
        drop(g);
        let before = p.tracker().snapshot();
        let _g = p.fetch(pid).unwrap();
        let d = p.tracker().snapshot().since(&before);
        assert_eq!(d.pool_hits, 1);
        assert_eq!(d.page_reads, 0);
    }

    #[test]
    fn pinned_pages_cannot_be_evicted() {
        let p = pool(2);
        let (_a, ga) = p.new_page().unwrap();
        let (_b, gb) = p.new_page().unwrap();
        // Both frames pinned: next allocation must fail.
        assert!(matches!(p.new_page(), Err(StorageError::PoolExhausted)));
        drop(ga);
        drop(gb);
        assert!(p.new_page().is_ok());
    }

    #[test]
    fn dirty_page_written_back_on_eviction_only() {
        let p = pool(1);
        let (pid, g) = p.new_page().unwrap();
        g.with_mut(|pg| pg.put_u16(0, 9));
        drop(g);
        let writes_before = p.tracker().snapshot().page_writes;
        // Force eviction.
        let (_, g2) = p.new_page().unwrap();
        drop(g2);
        assert!(p.tracker().snapshot().page_writes > writes_before);
        let g = p.fetch(pid).unwrap();
        assert_eq!(g.with(|pg| pg.get_u16(0)), 9);
    }

    #[test]
    fn clean_page_eviction_skips_write() {
        let p = pool(1);
        let (pid, g) = p.new_page().unwrap();
        drop(g);
        p.flush_all().unwrap();
        let w0 = p.tracker().snapshot().page_writes;
        // Fetch again (hit), drop, then evict: page is clean.
        drop(p.fetch(pid).unwrap());
        let (_, g2) = p.new_page().unwrap();
        drop(g2);
        assert_eq!(p.tracker().snapshot().page_writes, w0);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let p = pool(4);
        let (pid, g) = p.new_page().unwrap();
        g.with_mut(|pg| pg.put_u64(16, 123));
        drop(g);
        p.flush_all().unwrap();
        let mut raw = Page::new();
        p.disk().read_page(pid, &mut raw).unwrap();
        assert_eq!(raw.get_u64(16), 123);
    }

    #[test]
    fn free_page_rejects_pinned() {
        let p = pool(2);
        let (pid, g) = p.new_page().unwrap();
        assert!(p.free_page(pid).is_err());
        drop(g);
        p.free_page(pid).unwrap();
        assert!(p.fetch(pid).is_err());
    }

    #[test]
    fn many_pages_through_small_pool() {
        let p = pool(3);
        let mut pids = Vec::new();
        for i in 0..50u32 {
            let (pid, g) = p.new_page().unwrap();
            g.with_mut(|pg| pg.put_u32(0, i));
            pids.push(pid);
        }
        for (i, &pid) in pids.iter().enumerate() {
            let g = p.fetch(pid).unwrap();
            assert_eq!(g.with(|pg| pg.get_u32(0)), i as u32);
        }
        assert!(p.resident_pages() <= 3);
    }

    #[test]
    fn repinning_same_page_twice_is_allowed() {
        let p = pool(2);
        let (pid, g1) = p.new_page().unwrap();
        let g2 = p.fetch(pid).unwrap();
        g1.with_mut(|pg| pg.put_u16(0, 5));
        assert_eq!(g2.with(|pg| pg.get_u16(0)), 5);
    }

    #[test]
    fn recycled_page_id_does_not_serve_stale_bytes() {
        let p = pool(4);
        let (pid, g) = p.new_page().unwrap();
        g.with_mut(|pg| pg.put_u64(0, 0xDEAD_BEEF));
        drop(g);
        // Deallocate behind the pool's back: the frame stays mapped.
        p.disk().deallocate(pid).unwrap();
        // The recycled allocation must not hit the stale frame.
        let (pid2, g2) = p.new_page().unwrap();
        assert_eq!(pid2, pid, "disk recycles the freed id");
        assert_eq!(g2.with(|pg| pg.get_u64(0)), 0, "no stale bytes");
        drop(g2);
        let g3 = p.fetch(pid).unwrap();
        assert_eq!(g3.with(|pg| pg.get_u64(0)), 0);
    }

    #[test]
    fn discard_frames_loses_unflushed_writes() {
        let p = pool(4);
        let (durable, g) = p.new_page().unwrap();
        g.with_mut(|pg| pg.put_u32(0, 1));
        drop(g);
        p.flush_all().unwrap();
        let (lost, g) = p.new_page().unwrap();
        g.with_mut(|pg| pg.put_u32(0, 2));
        drop(g);
        let dropped = p.discard_frames().unwrap();
        assert_eq!(dropped, 1, "one dirty frame lost");
        let g = p.fetch(durable).unwrap();
        assert_eq!(g.with(|pg| pg.get_u32(0)), 1, "flushed data survives");
        drop(g);
        let g = p.fetch(lost).unwrap();
        assert_eq!(g.with(|pg| pg.get_u32(0)), 0, "unflushed write gone");
    }

    #[test]
    fn discard_frames_refuses_while_pinned() {
        let p = pool(2);
        let (_pid, g) = p.new_page().unwrap();
        assert!(p.discard_frames().is_err());
        drop(g);
        assert!(p.discard_frames().is_ok());
    }

    #[test]
    fn pool_hits_fail_during_crash() {
        use crate::fault::FaultInjector;
        use crate::retry::RetryPolicy;
        let inj = Arc::new(FaultInjector::disabled());
        let disk = Arc::new(DiskManager::with_faults(
            Tracker::new(),
            inj.clone(),
            RetryPolicy::default(),
        ));
        let p = BufferPool::new(disk, 4);
        let (pid, g) = p.new_page().unwrap();
        drop(g);
        inj.crash_now();
        assert!(matches!(p.fetch(pid), Err(StorageError::Crashed)));
        assert!(matches!(p.new_page(), Err(StorageError::Crashed)));
        assert!(matches!(p.flush_all(), Err(StorageError::Crashed)));
        inj.restart();
        assert!(p.fetch(pid).is_ok());
    }
}
