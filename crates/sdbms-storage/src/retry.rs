//! Bounded retry with exponential backoff for transient faults.
//!
//! Transient faults injected by [`crate::fault::FaultInjector`] model
//! the recoverable errors real devices report (a read that succeeds on
//! the second revolution, a tape that needs re-tensioning). The storage
//! layer retries them internally under a [`RetryPolicy`]; each retry
//! charges the shared [`Tracker`] — one `retries` count plus an
//! exponentially growing number of `backoff_units` — so experiments see
//! the true cost of running on flaky media. When the budget is
//! exhausted the error escalates to
//! [`StorageError::RetriesExhausted`], which upper layers treat like a
//! permanent fault.

use crate::budget::charge_ambient_ops;
use crate::cost::Tracker;
use crate::error::{Result, StorageError};

/// How many times to retry a transient fault, and how the simulated
/// backoff delay grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff charged before the first retry, in abstract cost units.
    pub backoff_base: u64,
    /// Multiplier applied to the backoff after each failed retry.
    pub backoff_multiplier: u64,
}

impl Default for RetryPolicy {
    /// Three retries with backoffs of 1, 2, and 4 units.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 1,
            backoff_multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Never retry: transient faults surface immediately (as
    /// [`StorageError::RetriesExhausted`] after one attempt).
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: 0,
            backoff_multiplier: 1,
        }
    }

    /// Backoff units charged before retry number `retry` (1-based).
    #[must_use]
    pub fn backoff_units(&self, retry: u32) -> u64 {
        let mut units = self.backoff_base;
        for _ in 1..retry {
            units = units.saturating_mul(self.backoff_multiplier);
        }
        units
    }
}

/// Run `op`, retrying transient faults under `policy` and charging each
/// retry (and its backoff) to `tracker`. Non-transient errors pass
/// through untouched.
///
/// The retry loop is also a deadline checkpoint: each backoff spends
/// its units from the ambient request budget (see [`crate::budget`]),
/// so the *remaining deadline* caps the retry budget — a dying disk
/// can burn at most what the request has left, never more, and the
/// caller gets a typed [`StorageError::DeadlineExceeded`] /
/// [`StorageError::Cancelled`] instead of waiting out every attempt.
pub fn with_retries<T>(
    policy: &RetryPolicy,
    tracker: &Tracker,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 1u32;
    loop {
        match op() {
            Err(StorageError::TransientFault { device, id }) => {
                if attempt >= policy.max_attempts.max(1) {
                    return Err(StorageError::RetriesExhausted {
                        device,
                        id,
                        attempts: attempt,
                    });
                }
                let backoff = policy.backoff_units(attempt);
                tracker.count_retry();
                tracker.count_backoff(backoff);
                charge_ambient_ops(backoff)?;
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> StorageError {
        StorageError::TransientFault {
            device: "disk",
            id: 9,
        }
    }

    #[test]
    fn success_needs_no_retry() {
        let t = Tracker::new();
        let r = with_retries(&RetryPolicy::default(), &t, || Ok(5));
        assert_eq!(r, Ok(5));
        assert_eq!(t.snapshot().retries, 0);
    }

    #[test]
    fn transient_then_success_charges_backoff() {
        let t = Tracker::new();
        let mut calls = 0;
        let r = with_retries(&RetryPolicy::default(), &t, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r, Ok(3));
        let s = t.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff_units, 1 + 2, "exponential: 1 then 2 units");
    }

    #[test]
    fn budget_exhaustion_escalates() {
        let t = Tracker::new();
        let r: Result<()> = with_retries(&RetryPolicy::default(), &t, || Err(transient()));
        assert_eq!(
            r,
            Err(StorageError::RetriesExhausted {
                device: "disk",
                id: 9,
                attempts: 4,
            })
        );
        assert_eq!(t.snapshot().retries, 3);
        assert_eq!(t.snapshot().backoff_units, 1 + 2 + 4);
    }

    #[test]
    fn non_transient_errors_pass_through() {
        let t = Tracker::new();
        let r: Result<()> = with_retries(&RetryPolicy::default(), &t, || {
            Err(StorageError::InvalidPageId(3))
        });
        assert_eq!(r, Err(StorageError::InvalidPageId(3)));
        assert_eq!(t.snapshot().retries, 0);
    }

    #[test]
    fn remaining_deadline_caps_the_retry_budget() {
        use crate::budget::{BudgetScope, CancelToken};
        let t = Tracker::new();
        // Budget of 2 units: the first backoff (1 unit) fits, the
        // second (2 units) spends the rest, and the check before the
        // third retry trips — well before max_attempts would.
        let token = CancelToken::with_op_budget(2);
        let _scope = BudgetScope::enter(token);
        let mut calls = 0;
        let r: Result<()> = with_retries(
            &RetryPolicy {
                max_attempts: 100,
                backoff_base: 1,
                backoff_multiplier: 2,
            },
            &t,
            || {
                calls += 1;
                Err(transient())
            },
        );
        assert_eq!(r, Err(StorageError::DeadlineExceeded));
        assert!(calls < 100, "deadline cut retries short (made {calls})");
    }

    #[test]
    fn cancellation_stops_retries_with_typed_error() {
        use crate::budget::{BudgetScope, CancelToken};
        let t = Tracker::new();
        let token = CancelToken::unbounded();
        let _scope = BudgetScope::enter(token.clone());
        let mut calls = 0;
        let r: Result<()> = with_retries(&RetryPolicy::default(), &t, || {
            calls += 1;
            token.cancel();
            Err(transient())
        });
        assert_eq!(r, Err(StorageError::Cancelled));
        assert_eq!(calls, 1, "cancelled before the first retry");
    }

    #[test]
    fn policy_none_fails_fast() {
        let t = Tracker::new();
        let mut calls = 0;
        let r: Result<()> = with_retries(&RetryPolicy::none(), &t, || {
            calls += 1;
            Err(transient())
        });
        assert!(matches!(r, Err(StorageError::RetriesExhausted { .. })));
        assert_eq!(calls, 1);
    }
}
