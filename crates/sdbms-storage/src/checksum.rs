//! CRC32 checksums for pages and archive blocks.
//!
//! The fault-injection layer (see [`crate::fault`]) can flip bits in
//! stored data without any error surfacing at write time — exactly the
//! failure mode real media exhibit. Every disk page and archive block
//! therefore carries a CRC32 (IEEE 802.3 polynomial, reflected)
//! computed at write time and verified at read time, so corruption is
//! *detected* at the device boundary instead of propagating into the
//! record, index, and summary layers as silently wrong answers.

/// CRC32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 4096];
        data[100] = 7;
        let before = crc32(&data);
        for bit in [0, 1, 800 * 8 + 3, 4095 * 8 + 7] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&flipped), before, "bit {bit}");
        }
    }

    #[test]
    fn deterministic() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(crc32(&data), crc32(&data));
    }
}
