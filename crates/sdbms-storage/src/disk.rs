//! Simulated disk.
//!
//! The "disk" is an in-memory vector of pages behind a mutex. Its
//! purpose is not persistence but *accounting*: every read and write
//! charges the shared [`Tracker`], and non-sequential accesses charge a
//! seek, so experiments can report exactly the I/O pattern a real 1982
//! disk would have seen. Free pages are recycled through a free list.
//!
//! Each stored page carries an out-of-band CRC32 (think sector ECC)
//! computed at write time and verified on every read. A
//! [`FaultInjector`] is consulted on every I/O: transient faults are
//! retried internally under the disk's [`RetryPolicy`] (charging the
//! tracker), permanent faults surface as
//! [`StorageError::PermanentFault`], and injected corruption flips a
//! stored bit so the *next read* fails CRC verification instead of
//! returning silently wrong bytes.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::budget::charge_ambient_ops;
use crate::cost::Tracker;
use crate::error::{Result, StorageError};
use crate::fault::{Device, FaultInjector, InjectedFault, IoOp};
use crate::page::{Page, PageId};
use crate::retry::{with_retries, RetryPolicy};

/// One allocated page plus the checksum stored beside it.
struct Slot {
    page: Page,
    crc: u32,
}

impl Slot {
    fn zeroed() -> Self {
        let page = Page::new();
        let crc = page.crc32();
        Slot { page, crc }
    }
}

struct DiskInner {
    pages: Vec<Option<Slot>>,
    free: Vec<PageId>,
    /// Last page touched, for sequential-vs-seek accounting.
    head_at: Option<PageId>,
}

/// An in-memory simulated disk with I/O accounting, per-page CRC32
/// verification, and fault injection.
pub struct DiskManager {
    inner: Mutex<DiskInner>,
    tracker: Tracker,
    injector: Arc<FaultInjector>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for DiskManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DiskManager")
            .field("pages", &inner.pages.len())
            .field("free", &inner.free.len())
            .finish()
    }
}

impl DiskManager {
    /// Create an empty disk charging the given tracker, with fault
    /// injection disabled.
    #[must_use]
    pub fn new(tracker: Tracker) -> Self {
        Self::with_faults(
            tracker,
            Arc::new(FaultInjector::disabled()),
            RetryPolicy::default(),
        )
    }

    /// Create an empty disk that consults `injector` on every I/O and
    /// retries transient faults under `retry`.
    #[must_use]
    pub fn with_faults(tracker: Tracker, injector: Arc<FaultInjector>, retry: RetryPolicy) -> Self {
        DiskManager {
            inner: Mutex::new(DiskInner {
                pages: Vec::new(),
                free: Vec::new(),
                head_at: None,
            }),
            tracker,
            injector,
            retry,
        }
    }

    /// The shared I/O tracker this disk charges.
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// The fault injector this disk consults.
    #[must_use]
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The retry policy applied to transient faults.
    #[must_use]
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Allocate a fresh zeroed page and return its id.
    ///
    /// Allocation itself is free (the page is materialized on first
    /// write-back); only reads and writes charge I/O.
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        if let Some(pid) = inner.free.pop() {
            inner.pages[pid as usize] = Some(Slot::zeroed());
            pid
        } else {
            let pid = inner.pages.len() as PageId;
            inner.pages.push(Some(Slot::zeroed()));
            pid
        }
    }

    /// Return a page to the free list, zeroing its contents first so a
    /// later re-allocation can never observe stale bytes (even through
    /// a code path that skips the allocate-time zeroing). Subsequent
    /// reads of `pid` fail until it is re-allocated.
    pub fn deallocate(&self, pid: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.pages.get_mut(pid as usize) {
            Some(slot @ Some(_)) => {
                // Zero-on-free: scrub the bytes before releasing the
                // slot, so no later path can resurrect them.
                if let Some(s) = slot.as_mut() {
                    s.page.bytes_mut().fill(0);
                    s.crc = s.page.crc32();
                }
                *slot = None;
                inner.free.push(pid);
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Read page `pid` into `out`, charging one page read (plus a seek
    /// if the previous access was not to the immediately preceding
    /// page). Transient faults are retried under the disk's policy;
    /// stored bytes are verified against their CRC32.
    pub fn read_page(&self, pid: PageId, out: &mut Page) -> Result<()> {
        with_retries(&self.retry, &self.tracker, || self.read_attempt(pid, out))
    }

    fn read_attempt(&self, pid: PageId, out: &mut Page) -> Result<()> {
        charge_ambient_ops(1)?;
        let mut inner = self.inner.lock();
        match self
            .injector
            .decide(Device::Disk, IoOp::Read, u64::from(pid), 0)
        {
            Some(InjectedFault::Crash) => return Err(StorageError::Crashed),
            Some(InjectedFault::Permanent) => {
                self.charge_access(&mut inner, pid);
                self.tracker.count_page_read();
                return Err(StorageError::PermanentFault {
                    device: "disk",
                    id: u64::from(pid),
                });
            }
            Some(InjectedFault::Transient) => {
                self.charge_access(&mut inner, pid);
                self.tracker.count_page_read();
                return Err(StorageError::TransientFault {
                    device: "disk",
                    id: u64::from(pid),
                });
            }
            Some(InjectedFault::Delay { units }) => {
                // Slow-but-correct I/O: the stall is charged as backoff
                // and spent from the ambient request budget, so a slow
                // fault eats a deadline without corrupting anything.
                self.tracker.count_backoff(units);
                charge_ambient_ops(units)?;
            }
            Some(InjectedFault::Corrupt { .. }) | None => {}
        }
        self.charge_access(&mut inner, pid);
        self.tracker.count_page_read();
        match inner.pages.get(pid as usize) {
            Some(Some(slot)) => {
                if slot.page.crc32() != slot.crc {
                    self.tracker.count_checksum_failure();
                    return Err(StorageError::ChecksumMismatch {
                        device: "disk",
                        id: u64::from(pid),
                    });
                }
                out.bytes_mut().copy_from_slice(slot.page.bytes());
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Write `src` to page `pid`, charging one page write (plus a seek
    /// when non-sequential). The stored CRC32 is refreshed from `src`;
    /// an injected corruption then flips one stored bit so the damage
    /// is caught by the next read's verification.
    pub fn write_page(&self, pid: PageId, src: &Page) -> Result<()> {
        with_retries(&self.retry, &self.tracker, || self.write_attempt(pid, src))
    }

    fn write_attempt(&self, pid: PageId, src: &Page) -> Result<()> {
        charge_ambient_ops(1)?;
        let mut inner = self.inner.lock();
        let fault =
            self.injector
                .decide(Device::Disk, IoOp::Write, u64::from(pid), src.bytes().len());
        match fault {
            Some(InjectedFault::Crash) => return Err(StorageError::Crashed),
            Some(InjectedFault::Transient) => {
                self.charge_access(&mut inner, pid);
                self.tracker.count_page_write();
                return Err(StorageError::TransientFault {
                    device: "disk",
                    id: u64::from(pid),
                });
            }
            Some(InjectedFault::Permanent) => {
                self.charge_access(&mut inner, pid);
                self.tracker.count_page_write();
                return Err(StorageError::PermanentFault {
                    device: "disk",
                    id: u64::from(pid),
                });
            }
            Some(InjectedFault::Delay { units }) => {
                // Slow-but-correct I/O, as on the read path.
                self.tracker.count_backoff(units);
                charge_ambient_ops(units)?;
            }
            Some(InjectedFault::Corrupt { .. }) | None => {}
        }
        self.charge_access(&mut inner, pid);
        self.tracker.count_page_write();
        match inner.pages.get_mut(pid as usize) {
            Some(Some(slot)) => {
                slot.page.bytes_mut().copy_from_slice(src.bytes());
                slot.crc = src.crc32();
                if let Some(InjectedFault::Corrupt { bit }) = fault {
                    slot.page.flip_bit(bit);
                }
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Flip one bit of the stored copy of `pid` without updating its
    /// CRC (test hook for corruption-detection paths).
    pub fn corrupt_page(&self, pid: PageId, bit: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.pages.get_mut(pid as usize) {
            Some(Some(slot)) => {
                slot.page.flip_bit(bit);
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Number of live (allocated) pages.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        let inner = self.inner.lock();
        inner.pages.len() - inner.free.len()
    }

    fn charge_access(&self, inner: &mut DiskInner, pid: PageId) {
        let sequential = matches!(inner.head_at, Some(prev) if pid == prev || pid == prev + 1);
        if !sequential {
            self.tracker.count_seek();
        }
        inner.head_at = Some(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, ScriptedFault};

    fn disk() -> DiskManager {
        DiskManager::new(Tracker::new())
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = disk();
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u32(0, 42);
        d.write_page(pid, &p).unwrap();
        let mut out = Page::new();
        d.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u32(0), 42);
    }

    #[test]
    fn read_unallocated_fails() {
        let d = disk();
        let mut out = Page::new();
        assert_eq!(
            d.read_page(9, &mut out),
            Err(StorageError::InvalidPageId(9))
        );
    }

    #[test]
    fn deallocate_then_read_fails_and_id_is_recycled() {
        let d = disk();
        let a = d.allocate();
        let b = d.allocate();
        assert_ne!(a, b);
        d.deallocate(a).unwrap();
        let mut out = Page::new();
        assert!(d.read_page(a, &mut out).is_err());
        let c = d.allocate();
        assert_eq!(c, a, "freed id should be recycled");
        assert_eq!(d.allocated_pages(), 2);
    }

    #[test]
    fn double_free_fails() {
        let d = disk();
        let a = d.allocate();
        d.deallocate(a).unwrap();
        assert!(d.deallocate(a).is_err());
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let d = disk();
        let pids: Vec<_> = (0..4).map(|_| d.allocate()).collect();
        let p = Page::new();
        for &pid in &pids {
            d.write_page(pid, &p).unwrap();
        }
        let s = d.tracker().snapshot();
        // First access seeks; the rest are to pid+1 and are sequential.
        assert_eq!(s.seeks, 1);
        assert_eq!(s.page_writes, 4);
    }

    #[test]
    fn random_access_seeks_every_time() {
        let d = disk();
        let a = d.allocate();
        let _ = d.allocate();
        let c = d.allocate();
        let mut out = Page::new();
        d.read_page(c, &mut out).unwrap();
        d.read_page(a, &mut out).unwrap();
        d.read_page(c, &mut out).unwrap();
        assert_eq!(d.tracker().snapshot().seeks, 3);
    }

    #[test]
    fn rereading_same_page_is_sequential() {
        let d = disk();
        let a = d.allocate();
        let mut out = Page::new();
        d.read_page(a, &mut out).unwrap();
        d.read_page(a, &mut out).unwrap();
        assert_eq!(d.tracker().snapshot().seeks, 1);
    }

    #[test]
    fn freshly_allocated_page_is_zeroed_even_after_recycle() {
        let d = disk();
        let a = d.allocate();
        let mut p = Page::new();
        p.put_u64(8, u64::MAX);
        d.write_page(a, &p).unwrap();
        d.deallocate(a).unwrap();
        let b = d.allocate();
        assert_eq!(b, a);
        let mut out = Page::new();
        d.read_page(b, &mut out).unwrap();
        assert_eq!(out.get_u64(8), 0);
    }

    // ---- fault injection ---------------------------------------------

    fn faulty(
        injector: Arc<FaultInjector>,
        retry: RetryPolicy,
    ) -> (DiskManager, Arc<FaultInjector>) {
        let d = DiskManager::with_faults(Tracker::new(), injector.clone(), retry);
        (d, injector)
    }

    #[test]
    fn transient_read_fault_is_retried_and_charged() {
        let inj = Arc::new(FaultInjector::disabled());
        let (d, inj) = faulty(inj, RetryPolicy::default());
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u32(0, 5);
        d.write_page(pid, &p).unwrap();
        inj.script(
            ScriptedFault::new(Device::Disk, FaultKind::Transient)
                .on(IoOp::Read)
                .times(2),
        );
        let mut out = Page::new();
        d.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u32(0), 5);
        let s = d.tracker().snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff_units, 1 + 2);
        // Each failed attempt still charged a transfer.
        assert_eq!(s.page_reads, 3);
    }

    #[test]
    fn persistent_transient_fault_exhausts_budget() {
        let inj = Arc::new(FaultInjector::disabled());
        let (d, inj) = faulty(inj, RetryPolicy::default());
        let pid = d.allocate();
        inj.script(
            ScriptedFault::new(Device::Disk, FaultKind::Transient)
                .on(IoOp::Read)
                .times(100),
        );
        let mut out = Page::new();
        assert!(matches!(
            d.read_page(pid, &mut out),
            Err(StorageError::RetriesExhausted { attempts: 4, .. })
        ));
    }

    #[test]
    fn permanent_fault_kills_the_page_for_good() {
        let inj = Arc::new(FaultInjector::disabled());
        let (d, inj) = faulty(inj, RetryPolicy::default());
        let pid = d.allocate();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Permanent).at(u64::from(pid)));
        let mut out = Page::new();
        for _ in 0..3 {
            assert!(matches!(
                d.read_page(pid, &mut out),
                Err(StorageError::PermanentFault { device: "disk", .. })
            ));
        }
    }

    #[test]
    fn injected_write_corruption_is_caught_by_read_crc() {
        let inj = Arc::new(FaultInjector::disabled());
        let (d, inj) = faulty(inj, RetryPolicy::default());
        let pid = d.allocate();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Corrupt).on(IoOp::Write));
        let mut p = Page::new();
        p.put_u64(0, 0xFEED);
        d.write_page(pid, &p).unwrap(); // reports success: silent corruption
        let mut out = Page::new();
        assert!(matches!(
            d.read_page(pid, &mut out),
            Err(StorageError::ChecksumMismatch { device: "disk", .. })
        ));
        assert_eq!(d.tracker().snapshot().checksum_failures, 1);
        // Rewriting the page repairs it.
        d.write_page(pid, &p).unwrap();
        d.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u64(0), 0xFEED);
    }

    #[test]
    fn corrupt_page_hook_fails_reads_until_rewritten() {
        let d = disk();
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u32(100, 77);
        d.write_page(pid, &p).unwrap();
        d.corrupt_page(pid, 800).unwrap();
        let mut out = Page::new();
        assert!(matches!(
            d.read_page(pid, &mut out),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        d.write_page(pid, &p).unwrap();
        assert!(d.read_page(pid, &mut out).is_ok());
    }

    #[test]
    fn crash_blocks_all_io_until_restart() {
        let inj = Arc::new(FaultInjector::new(FaultPlan::none()));
        let (d, inj) = faulty(inj, RetryPolicy::default());
        let pid = d.allocate();
        let p = Page::new();
        d.write_page(pid, &p).unwrap();
        inj.crash_now();
        let mut out = Page::new();
        assert_eq!(d.read_page(pid, &mut out), Err(StorageError::Crashed));
        assert_eq!(d.write_page(pid, &p), Err(StorageError::Crashed));
        inj.restart();
        assert!(d.read_page(pid, &mut out).is_ok());
    }
}
