//! Simulated disk.
//!
//! The "disk" is an in-memory vector of pages behind a mutex. Its
//! purpose is not persistence but *accounting*: every read and write
//! charges the shared [`Tracker`], and non-sequential accesses charge a
//! seek, so experiments can report exactly the I/O pattern a real 1982
//! disk would have seen. Free pages are recycled through a free list.

use parking_lot::Mutex;

use crate::cost::Tracker;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId};

struct DiskInner {
    pages: Vec<Option<Page>>,
    free: Vec<PageId>,
    /// Last page touched, for sequential-vs-seek accounting.
    head_at: Option<PageId>,
}

/// An in-memory simulated disk with I/O accounting.
pub struct DiskManager {
    inner: Mutex<DiskInner>,
    tracker: Tracker,
}

impl std::fmt::Debug for DiskManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("DiskManager")
            .field("pages", &inner.pages.len())
            .field("free", &inner.free.len())
            .finish()
    }
}

impl DiskManager {
    /// Create an empty disk charging the given tracker.
    #[must_use]
    pub fn new(tracker: Tracker) -> Self {
        DiskManager {
            inner: Mutex::new(DiskInner {
                pages: Vec::new(),
                free: Vec::new(),
                head_at: None,
            }),
            tracker,
        }
    }

    /// The shared I/O tracker this disk charges.
    #[must_use]
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }

    /// Allocate a fresh zeroed page and return its id.
    ///
    /// Allocation itself is free (the page is materialized on first
    /// write-back); only reads and writes charge I/O.
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        if let Some(pid) = inner.free.pop() {
            inner.pages[pid as usize] = Some(Page::new());
            pid
        } else {
            let pid = inner.pages.len() as PageId;
            inner.pages.push(Some(Page::new()));
            pid
        }
    }

    /// Return a page to the free list. Subsequent reads of `pid` fail
    /// until it is re-allocated.
    pub fn deallocate(&self, pid: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.pages.get_mut(pid as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                inner.free.push(pid);
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Read page `pid` into `out`, charging one page read (plus a seek
    /// if the previous access was not to the immediately preceding
    /// page).
    pub fn read_page(&self, pid: PageId, out: &mut Page) -> Result<()> {
        let mut inner = self.inner.lock();
        self.charge_access(&mut inner, pid);
        self.tracker.count_page_read();
        match inner.pages.get(pid as usize) {
            Some(Some(p)) => {
                out.bytes_mut().copy_from_slice(p.bytes());
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Write `src` to page `pid`, charging one page write (plus a seek
    /// when non-sequential).
    pub fn write_page(&self, pid: PageId, src: &Page) -> Result<()> {
        let mut inner = self.inner.lock();
        self.charge_access(&mut inner, pid);
        self.tracker.count_page_write();
        match inner.pages.get_mut(pid as usize) {
            Some(Some(p)) => {
                p.bytes_mut().copy_from_slice(src.bytes());
                Ok(())
            }
            _ => Err(StorageError::InvalidPageId(pid)),
        }
    }

    /// Number of live (allocated) pages.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        let inner = self.inner.lock();
        inner.pages.len() - inner.free.len()
    }

    fn charge_access(&self, inner: &mut DiskInner, pid: PageId) {
        let sequential = matches!(inner.head_at, Some(prev) if pid == prev || pid == prev + 1);
        if !sequential {
            self.tracker.count_seek();
        }
        inner.head_at = Some(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskManager {
        DiskManager::new(Tracker::new())
    }

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = disk();
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u32(0, 42);
        d.write_page(pid, &p).unwrap();
        let mut out = Page::new();
        d.read_page(pid, &mut out).unwrap();
        assert_eq!(out.get_u32(0), 42);
    }

    #[test]
    fn read_unallocated_fails() {
        let d = disk();
        let mut out = Page::new();
        assert_eq!(
            d.read_page(9, &mut out),
            Err(StorageError::InvalidPageId(9))
        );
    }

    #[test]
    fn deallocate_then_read_fails_and_id_is_recycled() {
        let d = disk();
        let a = d.allocate();
        let b = d.allocate();
        assert_ne!(a, b);
        d.deallocate(a).unwrap();
        let mut out = Page::new();
        assert!(d.read_page(a, &mut out).is_err());
        let c = d.allocate();
        assert_eq!(c, a, "freed id should be recycled");
        assert_eq!(d.allocated_pages(), 2);
    }

    #[test]
    fn double_free_fails() {
        let d = disk();
        let a = d.allocate();
        d.deallocate(a).unwrap();
        assert!(d.deallocate(a).is_err());
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let d = disk();
        let pids: Vec<_> = (0..4).map(|_| d.allocate()).collect();
        let p = Page::new();
        for &pid in &pids {
            d.write_page(pid, &p).unwrap();
        }
        let s = d.tracker().snapshot();
        // First access seeks; the rest are to pid+1 and are sequential.
        assert_eq!(s.seeks, 1);
        assert_eq!(s.page_writes, 4);
    }

    #[test]
    fn random_access_seeks_every_time() {
        let d = disk();
        let a = d.allocate();
        let _ = d.allocate();
        let c = d.allocate();
        let mut out = Page::new();
        d.read_page(c, &mut out).unwrap();
        d.read_page(a, &mut out).unwrap();
        d.read_page(c, &mut out).unwrap();
        assert_eq!(d.tracker().snapshot().seeks, 3);
    }

    #[test]
    fn rereading_same_page_is_sequential() {
        let d = disk();
        let a = d.allocate();
        let mut out = Page::new();
        d.read_page(a, &mut out).unwrap();
        d.read_page(a, &mut out).unwrap();
        assert_eq!(d.tracker().snapshot().seeks, 1);
    }

    #[test]
    fn freshly_allocated_page_is_zeroed_even_after_recycle() {
        let d = disk();
        let a = d.allocate();
        let mut p = Page::new();
        p.put_u64(8, u64::MAX);
        d.write_page(a, &p).unwrap();
        d.deallocate(a).unwrap();
        let b = d.allocate();
        assert_eq!(b, a);
        let mut out = Page::new();
        d.read_page(b, &mut out).unwrap();
        assert_eq!(out.get_u64(8), 0);
    }
}
