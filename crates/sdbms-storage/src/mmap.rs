//! Memory-mapped read path for immutable, sealed segment data.
//!
//! `MmapSegmentSource` models an `mmap(2)` of the pages backing a
//! sealed (immutable) column file: at *map* time every page is read
//! once through [`DiskManager::read_page`] — which CRC-verifies the
//! image and consults the fault injector, so corruption and injected
//! faults surface as errors **at the seal**, never later — and the
//! verified images are then held privately by the source. Steady-state
//! scans borrow record bytes straight out of those images with zero
//! further I/O, zero buffer-pool traffic, and zero copies
//! ([`MmapSegmentSource::record`] returns a `&[u8]` into the page).
//!
//! Because the crate forbids `unsafe`, the "mapping" is a one-time
//! page-image capture rather than a raw OS mapping; the observable
//! contract is the same one a real mmap of an immutable file would
//! give: bytes fixed at map time, no write path, and no interaction
//! with the fault-injection seam after the map succeeds ("excluded
//! from fault schedules by construction" — there simply is no I/O
//! left to inject into).
//!
//! Lifecycle rules (enforced by the `mmap-seam-bypass` lint and the
//! columnar layer):
//! - a source may only be constructed through the sanctioned storage
//!   door (`TransposedFile::seal_for_scan`), which flushes the buffer
//!   pool first so the disk images are current;
//! - any mutation of the owning store drops the source (unseals);
//! - the source is owned by the store object, so MVCC-lite epoch
//!   retirement of a superseded store is what finally "unmaps" it —
//!   never while a pinned snapshot can still reach it.

use std::collections::HashMap;
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::heap::{record_in_page, Rid};
use crate::page::{Page, PageId};

/// CRC-verified, immutable images of the pages behind sealed segments.
///
/// See the module docs for the lifecycle contract. Construct only via
/// [`MmapSegmentSource::map`], and only from the sanctioned storage
/// door — direct construction elsewhere is an `mmap-seam-bypass`
/// lint finding.
#[derive(Debug)]
pub struct MmapSegmentSource {
    pages: HashMap<PageId, Page>,
}

impl MmapSegmentSource {
    /// Map the given pages: flush the pool so disk is current, then
    /// read and CRC-verify every page image once.
    ///
    /// Fails (leaving nothing mapped) if any page is corrupt or a
    /// fault fires during the capture — callers degrade to the
    /// buffer-pool path on error. After success the source performs
    /// no further I/O.
    pub fn map(pool: &Arc<BufferPool>, page_ids: &[PageId]) -> Result<Self> {
        pool.flush_all()?;
        let disk: &Arc<DiskManager> = pool.disk();
        let mut pages = HashMap::with_capacity(page_ids.len());
        for &pid in page_ids {
            let mut page = Page::new();
            disk.read_page(pid, &mut page)?;
            pages.insert(pid, page);
        }
        Ok(MmapSegmentSource { pages })
    }

    /// Borrow the record at `rid` from the mapped image — zero-copy,
    /// no I/O, no pool traffic.
    pub fn record_bytes(&self, rid: Rid) -> Result<&[u8]> {
        let page = self
            .pages
            .get(&rid.page)
            .ok_or(StorageError::InvalidPageId(rid.page))?;
        record_in_page(page, rid)
    }

    /// Number of pages captured by the map.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapFile;
    use crate::StorageEnv;

    fn env(frames: usize) -> Arc<BufferPool> {
        Arc::clone(&StorageEnv::new(frames).pool)
    }

    #[test]
    fn mapped_records_match_heap_reads() {
        let pool = env(8);
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let mut rids = Vec::new();
        for i in 0..50u32 {
            let rec = vec![(i % 251) as u8; 40 + (i as usize % 300)];
            rids.push((heap.insert(&rec).unwrap(), rec));
        }
        let src = MmapSegmentSource::map(&pool, &heap.pages()).unwrap();
        for (rid, rec) in &rids {
            assert_eq!(src.record_bytes(*rid).unwrap(), &rec[..], "rid {rid:?}");
            assert_eq!(heap.get(*rid).unwrap(), *rec);
        }
    }

    #[test]
    fn map_is_a_point_in_time_capture() {
        let pool = env(8);
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let rid = heap.insert(b"before").unwrap();
        let src = MmapSegmentSource::map(&pool, &heap.pages()).unwrap();
        // Later mutations of the heap are invisible to the capture.
        heap.delete(rid).unwrap();
        assert_eq!(src.record_bytes(rid).unwrap(), b"before");
        assert!(heap.get(rid).is_err());
    }

    #[test]
    fn corrupt_page_fails_the_map_not_the_scan() {
        let pool = env(8);
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        heap.insert(b"payload").unwrap();
        pool.flush_all().unwrap();
        let pid = heap.pages()[0];
        pool.discard_frames().unwrap();
        pool.disk().corrupt_page(pid, 13).unwrap();
        let err = MmapSegmentSource::map(&pool, &heap.pages()).unwrap_err();
        assert!(
            matches!(err, StorageError::ChecksumMismatch { .. }),
            "expected checksum mismatch, got {err:?}"
        );
    }

    #[test]
    fn unknown_rid_is_invalid() {
        let pool = env(8);
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let rid = heap.insert(b"x").unwrap();
        let src = MmapSegmentSource::map(&pool, &heap.pages()).unwrap();
        assert!(matches!(
            src.record_bytes(Rid::new(rid.page + 999, 0)),
            Err(StorageError::InvalidPageId(_))
        ));
        assert!(matches!(
            src.record_bytes(Rid::new(rid.page, 99)),
            Err(StorageError::InvalidRid { .. })
        ));
    }
}
