//! Slotted-page heap files.
//!
//! A heap file is a chain of slotted pages holding variable-length
//! records addressed by stable [`Rid`]s. This is the WiSS-style record
//! layer the paper's concrete views are stored in (when row-oriented;
//! see `sdbms-columnar` for the transposed alternative).
//!
//! ## Page layout
//!
//! ```text
//! 0..2    u16  slot_count
//! 2..4    u16  free_ptr        start of the record area (grows down)
//! 4..8    u32  next_page       chain link (INVALID_PAGE at tail)
//! 8..     slot array           4 bytes/slot: u16 offset, u16 len
//! ...     free space
//! ...     record area          records packed toward PAGE_SIZE
//! ```
//!
//! A slot with `offset == 0` is vacant (no record can start inside the
//! header). Deleting a record vacates its slot; the space is reclaimed
//! by in-page compaction when a later insert needs it.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, INVALID_PAGE, PAGE_SIZE};

const HEADER: usize = 8;
const SLOT_SIZE: usize = 4;

/// Largest record a page can hold (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER - SLOT_SIZE;

/// Stable record identifier: page id + slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl Rid {
    /// Build a record id from its components.
    #[must_use]
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }
}

// ---- On-page helpers (free functions over `Page`) -----------------------

fn slot_count(p: &Page) -> u16 {
    p.get_u16(0)
}
fn set_slot_count(p: &mut Page, n: u16) {
    p.put_u16(0, n);
}
fn free_ptr(p: &Page) -> u16 {
    p.get_u16(2)
}
fn set_free_ptr(p: &mut Page, v: u16) {
    p.put_u16(2, v);
}
#[allow(dead_code)] // chain-traversal counterpart of set_next_page, kept for symmetry
fn next_page(p: &Page) -> PageId {
    p.get_u32(4)
}
fn set_next_page(p: &mut Page, pid: PageId) {
    p.put_u32(4, pid);
}
fn slot(p: &Page, i: u16) -> (u16, u16) {
    let off = HEADER + SLOT_SIZE * i as usize;
    (p.get_u16(off), p.get_u16(off + 2))
}
fn set_slot(p: &mut Page, i: u16, offset: u16, len: u16) {
    let off = HEADER + SLOT_SIZE * i as usize;
    p.put_u16(off, offset);
    p.put_u16(off + 2, len);
}

/// Borrow the record at `rid.slot` from a slotted page image without
/// copying it out.
///
/// This is the zero-copy counterpart of [`HeapFile::get`] for callers
/// that already hold the page bytes (the sealed-segment scan source
/// keeps verified page images outside the buffer pool and parses
/// records in place). The error behaviour matches `HeapFile::get`:
/// an out-of-range or vacant slot is `InvalidRid`.
pub fn record_in_page(p: &Page, rid: Rid) -> Result<&[u8]> {
    if rid.slot >= slot_count(p) {
        return Err(StorageError::InvalidRid {
            page: rid.page,
            slot: rid.slot,
        });
    }
    let (off, len) = slot(p, rid.slot);
    if off == 0 {
        return Err(StorageError::InvalidRid {
            page: rid.page,
            slot: rid.slot,
        });
    }
    Ok(p.slice(off as usize, len as usize))
}

/// Initialize raw bytes as an empty slotted page.
fn init_page(p: &mut Page) {
    set_slot_count(p, 0);
    set_free_ptr(p, PAGE_SIZE as u16);
    set_next_page(p, INVALID_PAGE);
}

/// Contiguous free bytes between the slot array and the record area.
fn contiguous_free(p: &Page) -> usize {
    free_ptr(p) as usize - (HEADER + SLOT_SIZE * slot_count(p) as usize)
}

/// Free bytes counting dead (deleted) record space, assuming a vacant
/// slot can be reused (so no new slot entry is needed for them).
fn total_free(p: &Page) -> usize {
    let n = slot_count(p);
    let mut live = 0usize;
    for i in 0..n {
        let (off, len) = slot(p, i);
        if off != 0 {
            live += len as usize;
        }
    }
    PAGE_SIZE - (HEADER + SLOT_SIZE * n as usize) - live
}

/// Find a vacant slot, if any.
fn vacant_slot(p: &Page) -> Option<u16> {
    (0..slot_count(p)).find(|&i| slot(p, i).0 == 0)
}

/// Slide live records toward the end of the page, eliminating dead
/// space. Slot indexes (and hence Rids) are preserved.
fn compact(p: &mut Page) {
    let n = slot_count(p);
    let mut live: Vec<(u16, u16, Vec<u8>)> = Vec::new();
    for i in 0..n {
        let (off, len) = slot(p, i);
        if off != 0 {
            live.push((i, len, p.slice(off as usize, len as usize).to_vec()));
        }
    }
    // Rewrite packed from the end, keeping relative order stable.
    live.sort_by_key(|&(_, _, _)| 0u8); // stable: already in slot order
    let mut cursor = PAGE_SIZE;
    for (i, len, bytes) in live {
        cursor -= len as usize;
        p.write_slice(cursor, &bytes);
        set_slot(p, i, cursor as u16, len);
    }
    set_free_ptr(p, cursor as u16);
}

/// Insert `bytes` into the page, compacting first if needed.
/// Returns the slot index, or `None` if it cannot fit.
fn page_insert(p: &mut Page, bytes: &[u8]) -> Option<u16> {
    let need_slot = vacant_slot(p).is_none();
    let slot_cost = if need_slot { SLOT_SIZE } else { 0 };
    if contiguous_free(p) < bytes.len() + slot_cost {
        if total_free(p) >= bytes.len() + slot_cost {
            compact(p);
        } else {
            return None;
        }
    }
    if contiguous_free(p) < bytes.len() + slot_cost {
        return None;
    }
    let idx = match vacant_slot(p) {
        Some(i) => i,
        None => {
            let i = slot_count(p);
            set_slot_count(p, i + 1);
            i
        }
    };
    let new_fp = free_ptr(p) as usize - bytes.len();
    p.write_slice(new_fp, bytes);
    set_free_ptr(p, new_fp as u16);
    set_slot(p, idx, new_fp as u16, bytes.len() as u16);
    Some(idx)
}

// ---- Heap file -----------------------------------------------------------

struct FileState {
    pages: Vec<PageId>,
    records: u64,
}

/// A chain of slotted pages holding variable-length records.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    state: Mutex<FileState>,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("HeapFile")
            .field("pages", &s.pages.len())
            .field("records", &s.records)
            .finish()
    }
}

impl HeapFile {
    /// Create an empty heap file with one (empty) page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let (pid, guard) = pool.new_page()?;
        guard.with_mut(init_page);
        drop(guard);
        Ok(HeapFile {
            pool,
            state: Mutex::new(FileState {
                pages: vec![pid],
                records: 0,
            }),
        })
    }

    /// Number of pages in the file.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// Number of live records.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.state.lock().records
    }

    /// The page ids of this file, in chain order.
    #[must_use]
    pub fn pages(&self) -> Vec<PageId> {
        self.state.lock().pages.clone()
    }

    /// The buffer pool this file lives in.
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Append a record, returning its stable id.
    ///
    /// Tries the last page first (append-mostly workloads stay
    /// sequential); grows the chain when full.
    pub fn insert(&self, bytes: &[u8]) -> Result<Rid> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                len: bytes.len(),
                max: MAX_RECORD,
            });
        }
        let mut state = self.state.lock();
        let last = state
            .pages
            .last()
            .copied()
            .ok_or_else(|| StorageError::corrupt("heap file has no pages"))?;
        let guard = self.pool.fetch(last)?;
        if let Some(slot) = guard.with_mut(|p| page_insert(p, bytes)) {
            state.records += 1;
            return Ok(Rid::new(last, slot));
        }
        drop(guard);
        // Grow the chain.
        let (new_pid, new_guard) = self.pool.new_page()?;
        new_guard.with_mut(init_page);
        let slot = new_guard
            .with_mut(|p| page_insert(p, bytes))
            .ok_or_else(|| {
                StorageError::corrupt("record does not fit in an empty page").at_page(new_pid)
            })?;
        drop(new_guard);
        let old_last = self.pool.fetch(last)?;
        old_last.with_mut(|p| set_next_page(p, new_pid));
        drop(old_last);
        state.pages.push(new_pid);
        state.records += 1;
        Ok(Rid::new(new_pid, slot))
    }

    /// Read the record at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let guard = self.pool.fetch(rid.page)?;
        guard.with(|p| {
            if rid.slot >= slot_count(p) {
                return Err(StorageError::InvalidRid {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let (off, len) = slot(p, rid.slot);
            if off == 0 {
                return Err(StorageError::InvalidRid {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            Ok(p.slice(off as usize, len as usize).to_vec())
        })
    }

    /// Delete the record at `rid`, vacating its slot.
    pub fn delete(&self, rid: Rid) -> Result<()> {
        let guard = self.pool.fetch(rid.page)?;
        guard.with_mut(|p| {
            if rid.slot >= slot_count(p) || slot(p, rid.slot).0 == 0 {
                return Err(StorageError::InvalidRid {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            set_slot(p, rid.slot, 0, 0);
            Ok(())
        })?;
        self.state.lock().records -= 1;
        Ok(())
    }

    /// Replace the record at `rid` with `bytes`.
    ///
    /// Stays in place when the new value fits in the old page
    /// (preserving the rid); otherwise the record moves and the new rid
    /// is returned. Callers maintaining indexes must handle a changed
    /// rid.
    pub fn update(&self, rid: Rid, bytes: &[u8]) -> Result<Rid> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                len: bytes.len(),
                max: MAX_RECORD,
            });
        }
        let guard = self.pool.fetch(rid.page)?;
        let in_place = guard.with_mut(|p| {
            if rid.slot >= slot_count(p) || slot(p, rid.slot).0 == 0 {
                return Err(StorageError::InvalidRid {
                    page: rid.page,
                    slot: rid.slot,
                });
            }
            let (off, len) = slot(p, rid.slot);
            if bytes.len() <= len as usize {
                // Overwrite in place, shrinking the slot.
                let new_off = off as usize + (len as usize - bytes.len());
                p.write_slice(new_off, bytes);
                set_slot(p, rid.slot, new_off as u16, bytes.len() as u16);
                return Ok(true);
            }
            // Try re-inserting in the same page (slot reuse keeps rid).
            set_slot(p, rid.slot, 0, 0);
            // The vacated slot is the lowest-index vacant slot only if
            // no earlier vacancy exists; to keep the rid stable we
            // insert manually into this specific slot.
            let need = bytes.len();
            if contiguous_free(p) < need {
                if total_free(p) >= need {
                    compact(p);
                } else {
                    // Restore nothing (record is gone); caller gets a move.
                    return Ok(false);
                }
            }
            if contiguous_free(p) < need {
                return Ok(false);
            }
            let new_fp = free_ptr(p) as usize - need;
            p.write_slice(new_fp, bytes);
            set_free_ptr(p, new_fp as u16);
            set_slot(p, rid.slot, new_fp as u16, need as u16);
            Ok(true)
        })?;
        drop(guard);
        if in_place {
            Ok(rid)
        } else {
            // Record was removed from its page; re-insert elsewhere.
            self.state.lock().records -= 1;
            self.insert(bytes)
        }
    }

    /// Iterate `(rid, bytes)` over every live record, page by page in
    /// chain order.
    #[must_use]
    pub fn scan(&self) -> RecordIter<'_> {
        RecordIter {
            file: self,
            page_idx: 0,
            buffered: Vec::new(),
            buf_pos: 0,
        }
    }

    /// Free every page of the file. The file must not be used after.
    pub fn destroy(self) -> Result<()> {
        let state = self.state.into_inner();
        for pid in state.pages {
            self.pool.free_page(pid)?;
        }
        Ok(())
    }
}

/// Iterator over the live records of a heap file.
///
/// Buffers one page of records at a time, so pages are read once each
/// and guards are not held between `next` calls.
pub struct RecordIter<'a> {
    file: &'a HeapFile,
    page_idx: usize,
    buffered: Vec<(Rid, Vec<u8>)>,
    buf_pos: usize,
}

impl Iterator for RecordIter<'_> {
    type Item = Result<(Rid, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.buf_pos < self.buffered.len() {
                let item = self.buffered[self.buf_pos].clone();
                self.buf_pos += 1;
                return Some(Ok(item));
            }
            let pid = {
                let state = self.file.state.lock();
                *state.pages.get(self.page_idx)?
            };
            self.page_idx += 1;
            self.buf_pos = 0;
            self.buffered.clear();
            let guard = match self.file.pool.fetch(pid) {
                Ok(g) => g,
                Err(e) => return Some(Err(e)),
            };
            guard.with(|p| {
                for i in 0..slot_count(p) {
                    let (off, len) = slot(p, i);
                    if off != 0 {
                        self.buffered.push((
                            Rid::new(pid, i),
                            p.slice(off as usize, len as usize).to_vec(),
                        ));
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Tracker;
    use crate::disk::DiskManager;

    fn heap(frames: usize) -> HeapFile {
        let disk = Arc::new(DiskManager::new(Tracker::new()));
        let pool = Arc::new(BufferPool::new(disk, frames));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap(8);
        let rid = h.insert(b"hello").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"hello");
        assert_eq!(h.record_count(), 1);
    }

    #[test]
    fn many_records_spill_to_new_pages() {
        let h = heap(8);
        let payload = vec![7u8; 500];
        let rids: Vec<_> = (0..100).map(|_| h.insert(&payload).unwrap()).collect();
        assert!(h.page_count() > 1);
        for rid in rids {
            assert_eq!(h.get(rid).unwrap().len(), 500);
        }
    }

    #[test]
    fn delete_then_get_fails_and_slot_is_reused() {
        let h = heap(8);
        let a = h.insert(b"aaaa").unwrap();
        let _b = h.insert(b"bbbb").unwrap();
        h.delete(a).unwrap();
        assert!(h.get(a).is_err());
        assert_eq!(h.record_count(), 1);
        let c = h.insert(b"cccc").unwrap();
        assert_eq!(c, a, "vacated slot should be reused");
        assert_eq!(h.get(c).unwrap(), b"cccc");
    }

    #[test]
    fn double_delete_fails() {
        let h = heap(8);
        let a = h.insert(b"x").unwrap();
        h.delete(a).unwrap();
        assert!(h.delete(a).is_err());
    }

    #[test]
    fn update_in_place_smaller() {
        let h = heap(8);
        let rid = h.insert(b"0123456789").unwrap();
        let new = h.update(rid, b"abc").unwrap();
        assert_eq!(new, rid);
        assert_eq!(h.get(rid).unwrap(), b"abc");
        assert_eq!(h.record_count(), 1);
    }

    #[test]
    fn update_grows_within_page() {
        let h = heap(8);
        let rid = h.insert(b"ab").unwrap();
        let new = h.update(rid, b"a longer record value").unwrap();
        assert_eq!(new, rid);
        assert_eq!(h.get(rid).unwrap(), b"a longer record value");
    }

    #[test]
    fn update_that_cannot_fit_moves_record() {
        let h = heap(8);
        // Fill the first page almost completely.
        let big = vec![1u8; 1300];
        let r1 = h.insert(&big).unwrap();
        let _r2 = h.insert(&big).unwrap();
        let _r3 = h.insert(&big).unwrap();
        // Now grow r1 beyond what page 0 can hold.
        let huge = vec![2u8; 2000];
        let moved = h.update(r1, &huge).unwrap();
        assert_eq!(h.get(moved).unwrap(), huge);
        assert_eq!(h.record_count(), 3);
    }

    #[test]
    fn oversized_record_rejected() {
        let h = heap(8);
        let too_big = vec![0u8; MAX_RECORD + 1];
        assert!(matches!(
            h.insert(&too_big),
            Err(StorageError::RecordTooLarge { .. })
        ));
        let max = vec![0u8; MAX_RECORD];
        let rid = h.insert(&max).unwrap();
        assert_eq!(h.get(rid).unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn scan_sees_live_records_in_order() {
        let h = heap(8);
        let mut expect = Vec::new();
        for i in 0..40u32 {
            let bytes = i.to_le_bytes().to_vec();
            let rid = h.insert(&bytes).unwrap();
            expect.push((rid, bytes));
        }
        // Delete every third record.
        for (rid, _) in expect.iter().step_by(3) {
            h.delete(*rid).unwrap();
        }
        let survivors: Vec<_> = expect
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, x)| x.clone())
            .collect();
        let scanned: Vec<_> = h.scan().map(|r| r.unwrap()).collect();
        assert_eq!(scanned, survivors);
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let h = heap(8);
        // Two large records fill the page; delete the first, then a
        // record that only fits after compaction must still succeed on
        // page 0.
        let a = h.insert(&vec![1u8; 1800]).unwrap();
        let b = h.insert(&vec![2u8; 1800]).unwrap();
        h.delete(a).unwrap();
        let c = h.insert(&vec![3u8; 1900]).unwrap();
        assert_eq!(c.page, b.page, "should fit in page 0 after compaction");
        assert_eq!(h.get(b).unwrap(), vec![2u8; 1800]);
        assert_eq!(h.get(c).unwrap(), vec![3u8; 1900]);
    }

    #[test]
    fn scan_survives_eviction_with_tiny_pool() {
        let h = heap(2);
        for i in 0..200u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let n = h.scan().count();
        assert_eq!(n, 200);
    }

    #[test]
    fn destroy_frees_pages() {
        let disk = Arc::new(DiskManager::new(Tracker::new()));
        let pool = Arc::new(BufferPool::new(disk.clone(), 8));
        let h = HeapFile::create(pool.clone()).unwrap();
        for _ in 0..50 {
            h.insert(&[0u8; 400]).unwrap();
        }
        let live_before = disk.allocated_pages();
        assert!(live_before > 1);
        h.destroy().unwrap();
        assert_eq!(disk.allocated_pages(), 0);
    }
}
