//! # sdbms-storage — the WiSS-style storage substrate
//!
//! The paper ("A Framework for Research in Database Management for
//! Statistical Analysis", Boral/DeWitt/Bates 1982) planned to build its
//! statistical DBMS on WiSS, the Wisconsin Storage System: "a package
//! of storage structures and access methods" (§5.2). This crate is that
//! substrate, rebuilt in Rust over a *simulated* storage hierarchy so
//! every experiment reports exact, machine-independent I/O counts:
//!
//! - [`cost`] — shared I/O counters ([`cost::Tracker`]) and an abstract
//!   [`cost::CostModel`] mirroring the 1982 disk/tape balance.
//! - [`budget`] — per-request deadlines and cooperative cancellation:
//!   a [`budget::CancelToken`] flows ambiently through a
//!   [`budget::BudgetScope`] and every device attempt below checks it.
//! - [`page`] — fixed 4 KiB pages with little-endian field access.
//! - [`disk`] — an in-memory disk that charges reads, writes, and
//!   seeks (non-sequential accesses).
//! - [`buffer`] — a clock-replacement buffer pool with pin guards.
//! - [`heap`] — slotted-page heap files with stable record ids,
//!   in-page compaction, and page-at-a-time scans.
//! - [`longrec`] — WiSS-style long records spanning multiple pages
//!   (the varying-length Summary Database entries need them).
//! - [`btree`] — a B+tree over the pool, byte-ordered keys, duplicate
//!   keys allowed (unique `(key, value)` pairs), lazy deletes.
//! - [`keyenc`] — order-preserving encodings for ints, floats, and
//!   composite string keys.
//! - [`archive`] — the sequential "tape" store holding the raw
//!   database, where repositioning is the dominant cost.
//! - [`mmap`] — CRC-verified point-in-time page captures backing the
//!   zero-copy sealed-segment scan path (the simulated `mmap(2)`).
//!
//! ## Quick tour
//!
//! ```
//! use std::sync::Arc;
//! use sdbms_storage::cost::Tracker;
//! use sdbms_storage::disk::DiskManager;
//! use sdbms_storage::buffer::BufferPool;
//! use sdbms_storage::heap::HeapFile;
//!
//! let tracker = Tracker::new();
//! let disk = Arc::new(DiskManager::new(tracker.clone()));
//! let pool = Arc::new(BufferPool::new(disk, 64));
//! let file = HeapFile::create(pool).unwrap();
//! let rid = file.insert(b"a record").unwrap();
//! assert_eq!(file.get(rid).unwrap(), b"a record");
//! assert!(tracker.snapshot().page_ios() == 0); // still buffered
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod btree;
pub mod budget;
pub mod buffer;
pub mod checksum;
pub mod cost;
pub mod disk;
pub mod error;
pub mod fault;
pub mod heap;
pub mod keyenc;
pub mod longrec;
pub mod mmap;
pub mod page;
pub mod retry;

pub use archive::{ArchiveStore, ReelReader};
pub use btree::BTree;
pub use budget::{ambient_token, charge_ambient_ops, BudgetScope, CancelError, CancelToken};
pub use buffer::{BufferPool, PageGuard};
pub use checksum::crc32;
pub use cost::{CostModel, IoScope, IoSnapshot, IoStats, Tracker};
pub use disk::DiskManager;
pub use error::{CorruptDetail, FileRole, Result, StorageError};
pub use fault::{
    Device, DeviceFaults, FaultInjector, FaultKind, FaultPlan, FaultStats, InjectedFault, IoOp,
    ScriptedFault,
};
pub use heap::{HeapFile, Rid, MAX_RECORD};
pub use longrec::{LongRecordFile, CHUNK_PAYLOAD};
pub use mmap::MmapSegmentSource;
pub use page::{Page, PageId, INVALID_PAGE, PAGE_SIZE};
pub use retry::{with_retries, RetryPolicy};

use std::sync::Arc;

/// Bundle of one simulated storage hierarchy: a tracker, a disk, a
/// buffer pool over it, and an archive sharing the tracker.
///
/// Most higher layers take a `StorageEnv` so a whole experiment charges
/// one set of counters.
#[derive(Debug, Clone)]
pub struct StorageEnv {
    /// Shared I/O counters for everything in this environment.
    pub tracker: Tracker,
    /// The simulated disk.
    pub disk: Arc<DiskManager>,
    /// Buffer pool over the disk.
    pub pool: Arc<BufferPool>,
    /// The sequential archive ("tape") store.
    pub archive: Arc<ArchiveStore>,
    /// Shared fault injector consulted by every device. Disabled (never
    /// fires) unless the environment was built with
    /// [`StorageEnv::with_faults`] or a plan is installed later.
    pub injector: Arc<FaultInjector>,
}

impl StorageEnv {
    /// Build an environment with a buffer pool of `pool_pages` frames
    /// and fault injection disabled.
    #[must_use]
    pub fn new(pool_pages: usize) -> Self {
        Self::with_faults(pool_pages, FaultPlan::none(), RetryPolicy::default())
    }

    /// Build an environment whose devices all consult one injector
    /// following `plan`, retrying transient faults under `retry`.
    #[must_use]
    pub fn with_faults(pool_pages: usize, plan: FaultPlan, retry: RetryPolicy) -> Self {
        let tracker = Tracker::new();
        let injector = Arc::new(FaultInjector::new(plan));
        let disk = Arc::new(DiskManager::with_faults(
            tracker.clone(),
            injector.clone(),
            retry,
        ));
        let pool = Arc::new(BufferPool::new(disk.clone(), pool_pages));
        let archive = Arc::new(ArchiveStore::with_faults(
            tracker.clone(),
            injector.clone(),
            retry,
        ));
        StorageEnv {
            tracker,
            disk,
            pool,
            archive,
            injector,
        }
    }

    /// Default-sized environment (256 pool pages = 1 MiB of buffer).
    #[must_use]
    pub fn default_env() -> Self {
        Self::new(256)
    }

    /// True while a simulated crash is in effect.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.injector.is_crashed()
    }

    /// Recover from a simulated crash: clear the crash state and drop
    /// every buffered frame *without* write-back, so only data that
    /// reached the disk before the crash survives — exactly what a
    /// process restart over durable media would see. Returns the number
    /// of dirty (lost) frames. All page guards must be dropped first.
    pub fn restart(&self) -> Result<usize> {
        let lost = self.pool.discard_frames()?;
        self.injector.restart();
        Ok(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shares_one_tracker() {
        let env = StorageEnv::new(4);
        let f = HeapFile::create(env.pool.clone()).unwrap();
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes()).unwrap();
        }
        env.archive.create_reel("r").unwrap();
        env.archive.append_block("r", b"x").unwrap();
        let mut rd = env.archive.open("r").unwrap();
        rd.read_next().unwrap();
        let s = env.tracker.snapshot();
        assert!(s.archive_block_reads == 1);
        // Heap inserts through a 4-frame pool must have spilled.
        assert!(s.page_writes > 0 || s.page_reads == 0);
    }

    #[test]
    fn crash_and_restart_lose_only_unflushed_state() {
        let env = StorageEnv::new(8);
        let f = HeapFile::create(env.pool.clone()).unwrap();
        let durable = f.insert(b"flushed").unwrap();
        env.pool.flush_all().unwrap();
        let volatile = f.insert(b"buffered-only").unwrap();
        env.injector.crash_now();
        assert!(env.is_crashed());
        assert!(f.get(durable).is_err(), "all I/O down during crash");
        let lost = env.restart().unwrap();
        assert!(lost > 0, "the unflushed page was discarded");
        assert_eq!(f.get(durable).unwrap(), b"flushed");
        // The buffered-only record reverts to the flushed page image.
        assert!(f.get(volatile).is_err() || f.get(volatile).unwrap() != b"buffered-only");
    }

    #[test]
    fn faulty_env_shares_one_injector_across_devices() {
        let env = StorageEnv::with_faults(8, FaultPlan::with_seed(7), RetryPolicy::default());
        env.archive.create_reel("raw").unwrap();
        env.archive.append_block("raw", b"b0").unwrap();
        env.injector.crash_now();
        let mut rd_err = false;
        if let Ok(mut rd) = env.archive.open("raw") {
            rd_err = rd.read_next() == Err(StorageError::Crashed);
        }
        assert!(rd_err, "archive honours the shared crash state");
        assert!(matches!(env.pool.new_page(), Err(StorageError::Crashed)));
        env.restart().unwrap();
        assert!(env.pool.new_page().is_ok());
    }
}
