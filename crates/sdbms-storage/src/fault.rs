//! Deterministic fault injection for the simulated storage hierarchy.
//!
//! A [`FaultInjector`] sits beside the [`crate::disk::DiskManager`] and
//! [`crate::archive::ArchiveStore`] and is consulted on every I/O. It
//! decides — from a seeded RNG and a per-device [`FaultPlan`], or from
//! explicitly scripted faults — whether the operation should:
//!
//! - fail **transiently** (a retry may succeed; see [`crate::retry`]),
//! - fail **permanently** (the block is lost for good; the id is
//!   remembered and every later read fails too),
//! - be **corrupted** (one bit of the stored data flips; the write
//!   reports success and the damage is only caught by the CRC32
//!   verification on a later read, see [`crate::checksum`]),
//! - or trigger a **crash** (every subsequent operation on the shared
//!   hierarchy fails with [`crate::error::StorageError::Crashed`] until
//!   [`FaultInjector::restart`] is called, modelling a process crash
//!   where buffered-but-unflushed state is lost).
//!
//! Determinism matters more than realism here: the same seed and plan
//! produce the same fault schedule on every run, so chaos tests can
//! replay hundreds of schedules and experiments stay reproducible.

use std::collections::HashSet;

use parking_lot::Mutex;

/// Which simulated device an I/O targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The simulated disk (pages).
    Disk,
    /// The sequential archive (reel blocks).
    Archive,
}

impl Device {
    /// Short device name for error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Device::Disk => "disk",
            Device::Archive => "archive",
        }
    }
}

/// Direction of an I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A read from the device.
    Read,
    /// A write to the device.
    Write,
}

/// A fault the injector has decided to inject into one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The operation fails, but retrying may succeed.
    Transient,
    /// The target block is lost for good; all later reads fail too.
    Permanent,
    /// The write succeeds but bit `bit` of the stored data is flipped
    /// (without updating the stored checksum).
    Corrupt {
        /// Bit index into the stored data.
        bit: usize,
    },
    /// The operation *succeeds* but takes `units` extra simulated time
    /// units (a stuck actuator, a re-read revolution): the device
    /// charges the delay as backoff and spends it from the ambient
    /// request budget, which is how slow-but-correct I/O eats a
    /// deadline without ever producing a wrong answer.
    Delay {
        /// Extra simulated time units the operation takes.
        units: u64,
    },
    /// The whole hierarchy crashes; everything fails until restart.
    Crash,
}

/// Fault kinds for scripted (non-random) injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail transiently.
    Transient,
    /// Lose the target block permanently.
    Permanent,
    /// Flip one bit of the stored data (write path).
    Corrupt,
    /// Stall the operation for `units` simulated time units; it then
    /// succeeds.
    Delay {
        /// Extra simulated time units the operation takes.
        units: u64,
    },
    /// Crash the hierarchy.
    Crash,
}

/// Per-device fault probabilities (all default to zero).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceFaults {
    /// Probability a read fails transiently.
    pub transient_read: f64,
    /// Probability a write fails transiently.
    pub transient_write: f64,
    /// Probability a write silently flips one stored bit.
    pub corrupt_write: f64,
    /// Probability a read permanently loses the target block.
    pub permanent_read: f64,
    /// Probability a read *succeeds slowly*, charging
    /// [`DeviceFaults::slow_read_units`] extra simulated time units.
    pub slow_read: f64,
    /// Extra time units a slow read takes (ignored while
    /// [`DeviceFaults::slow_read`] is zero; a firing slow read always
    /// charges at least one unit).
    pub slow_read_units: u64,
}

/// A complete, deterministic fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG.
    pub seed: u64,
    /// Fault probabilities for disk I/O.
    pub disk: DeviceFaults,
    /// Fault probabilities for archive I/O.
    pub archive: DeviceFaults,
    /// Crash when the global operation counter reaches this value.
    /// One-shot: cleared when it fires so a restart can make progress.
    pub crash_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan with the given RNG seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }
}

/// A deterministic, explicitly scripted fault.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedFault {
    /// Device the fault applies to.
    pub device: Device,
    /// What happens.
    pub kind: FaultKind,
    /// Restrict to reads or writes (`None` = either).
    pub op: Option<IoOp>,
    /// Restrict to one page id / block index (`None` = any).
    pub target: Option<u64>,
    /// How many matching operations to fault.
    pub remaining: u32,
}

impl ScriptedFault {
    /// Fault the next matching operation once.
    #[must_use]
    pub fn new(device: Device, kind: FaultKind) -> Self {
        ScriptedFault {
            device,
            kind,
            op: None,
            target: None,
            remaining: 1,
        }
    }

    /// Restrict to one I/O direction.
    #[must_use]
    pub fn on(mut self, op: IoOp) -> Self {
        self.op = Some(op);
        self
    }

    /// Restrict to one page id / block index.
    #[must_use]
    pub fn at(mut self, target: u64) -> Self {
        self.target = Some(target);
        self
    }

    /// Fire on the next `n` matching operations.
    #[must_use]
    pub fn times(mut self, n: u32) -> Self {
        self.remaining = n;
        self
    }
}

/// Counts of faults the injector has actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient failures injected.
    pub transient: u64,
    /// Permanent-loss failures surfaced (including repeat reads of an
    /// already-lost block).
    pub permanent: u64,
    /// Silent corruptions injected.
    pub corrupt: u64,
    /// Slow-but-successful operations injected.
    pub delayed: u64,
    /// Crashes triggered.
    pub crashes: u64,
}

struct InjectorState {
    plan: FaultPlan,
    rng: u64,
    ops: u64,
    crashed: bool,
    dead: HashSet<(Device, u64)>,
    scripts: Vec<ScriptedFault>,
    stats: FaultStats,
}

impl InjectorState {
    /// splitmix64: tiny, seedable, and plenty for fault schedules.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0) < p
    }

    /// Advance the operation counter, honouring crash state and
    /// crash-at-operation-N. Returns true if the hierarchy is down.
    fn tick(&mut self) -> bool {
        if self.crashed {
            return true;
        }
        self.ops += 1;
        if self.plan.crash_at_op.is_some_and(|n| self.ops >= n) {
            self.plan.crash_at_op = None;
            self.crashed = true;
            self.stats.crashes += 1;
            return true;
        }
        false
    }

    /// Turn a scripted kind into a concrete fault, updating state.
    fn fire(&mut self, kind: FaultKind, device: Device, target: u64, len: usize) -> InjectedFault {
        match kind {
            FaultKind::Transient => {
                self.stats.transient += 1;
                InjectedFault::Transient
            }
            FaultKind::Permanent => {
                self.dead.insert((device, target));
                self.stats.permanent += 1;
                InjectedFault::Permanent
            }
            FaultKind::Corrupt => {
                self.stats.corrupt += 1;
                let bits = (len.max(1)) * 8;
                InjectedFault::Corrupt {
                    bit: (self.next_u64() % bits as u64) as usize,
                }
            }
            FaultKind::Delay { units } => {
                self.stats.delayed += 1;
                InjectedFault::Delay {
                    units: units.max(1),
                }
            }
            FaultKind::Crash => {
                self.crashed = true;
                self.stats.crashes += 1;
                InjectedFault::Crash
            }
        }
    }
}

/// Decides, deterministically, which I/O operations fail and how.
///
/// One injector is shared by every device of a [`crate::StorageEnv`] so
/// a crash takes the whole hierarchy down, as a real process crash
/// would.
pub struct FaultInjector {
    inner: Mutex<InjectorState>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("FaultInjector")
            .field("ops", &st.ops)
            .field("crashed", &st.crashed)
            .field("stats", &st.stats)
            .finish()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultInjector {
    /// An injector following the given plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            inner: Mutex::new(InjectorState {
                rng: plan.seed ^ 0xD1B5_4A32_D192_ED03,
                plan,
                ops: 0,
                crashed: false,
                dead: HashSet::new(),
                scripts: Vec::new(),
                stats: FaultStats::default(),
            }),
        }
    }

    /// An injector that never fires (the default for plain
    /// environments; it costs one mutex lock per I/O).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(FaultPlan::none())
    }

    /// Replace the active plan (keeps crash state, dead blocks, and
    /// the operation counter).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.inner.lock();
        st.rng = plan.seed ^ 0xD1B5_4A32_D192_ED03;
        st.plan = plan;
    }

    /// Queue an explicit fault for the next matching operation(s).
    pub fn script(&self, fault: ScriptedFault) {
        self.inner.lock().scripts.push(fault);
    }

    /// Consult the injector for one device I/O. `target` is the page id
    /// or block index and `len` the data length in bytes (used to pick
    /// a corruption bit). Returns the fault to apply, if any.
    pub fn decide(
        &self,
        device: Device,
        op: IoOp,
        target: u64,
        len: usize,
    ) -> Option<InjectedFault> {
        let mut st = self.inner.lock();
        if st.tick() {
            return Some(InjectedFault::Crash);
        }
        if op == IoOp::Read && st.dead.contains(&(device, target)) {
            st.stats.permanent += 1;
            return Some(InjectedFault::Permanent);
        }
        if let Some(i) = st.scripts.iter().position(|s| {
            s.remaining > 0
                && s.device == device
                && s.op.is_none_or(|o| o == op)
                && s.target.is_none_or(|t| t == target)
        }) {
            st.scripts[i].remaining -= 1;
            let kind = st.scripts[i].kind;
            return Some(st.fire(kind, device, target, len));
        }
        let faults = match device {
            Device::Disk => st.plan.disk,
            Device::Archive => st.plan.archive,
        };
        match op {
            IoOp::Read => {
                if st.chance(faults.permanent_read) {
                    Some(st.fire(FaultKind::Permanent, device, target, len))
                } else if st.chance(faults.transient_read) {
                    Some(st.fire(FaultKind::Transient, device, target, len))
                } else if st.chance(faults.slow_read) {
                    let units = faults.slow_read_units;
                    Some(st.fire(FaultKind::Delay { units }, device, target, len))
                } else {
                    None
                }
            }
            IoOp::Write => {
                if st.chance(faults.transient_write) {
                    Some(st.fire(FaultKind::Transient, device, target, len))
                } else if st.chance(faults.corrupt_write) {
                    Some(st.fire(FaultKind::Corrupt, device, target, len))
                } else {
                    None
                }
            }
        }
    }

    /// Consult the injector for an operation that touches no device
    /// (a buffer-pool hit). Only crash faults apply, but the operation
    /// still advances the global counter so crash-at-operation-N
    /// schedules can land between device I/Os.
    pub fn on_cache_op(&self) -> Option<InjectedFault> {
        let mut st = self.inner.lock();
        if st.tick() {
            Some(InjectedFault::Crash)
        } else {
            None
        }
    }

    /// Crash the hierarchy immediately.
    pub fn crash_now(&self) {
        let mut st = self.inner.lock();
        if !st.crashed {
            st.crashed = true;
            st.stats.crashes += 1;
        }
    }

    /// True while the simulated hierarchy is down.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Bring the hierarchy back up after a crash. Permanently lost
    /// blocks stay lost (media damage survives restarts); a pending
    /// crash-at-operation-N that already fired does not re-fire.
    pub fn restart(&self) {
        self.inner.lock().crashed = false;
    }

    /// Mark a block permanently lost (test hook).
    pub fn kill_block(&self, device: Device, target: u64) {
        self.inner.lock().dead.insert((device, target));
    }

    /// Counts of faults fired so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.inner.lock().stats
    }

    /// Operations observed so far (device I/Os plus cache hits).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.inner.lock().ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for i in 0..1000 {
            assert_eq!(inj.decide(Device::Disk, IoOp::Read, i, 4096), None);
            assert_eq!(inj.decide(Device::Archive, IoOp::Write, i, 100), None);
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            seed: 42,
            disk: DeviceFaults {
                transient_read: 0.2,
                corrupt_write: 0.1,
                ..DeviceFaults::default()
            },
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        for i in 0..500 {
            let op = if i % 2 == 0 { IoOp::Read } else { IoOp::Write };
            assert_eq!(
                a.decide(Device::Disk, op, i, 4096),
                b.decide(Device::Disk, op, i, 4096),
                "op {i}"
            );
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().transient > 0, "0.2 over 250 reads must fire");
    }

    #[test]
    fn crash_at_op_is_sticky_until_restart() {
        let inj = FaultInjector::new(FaultPlan {
            crash_at_op: Some(3),
            ..FaultPlan::default()
        });
        assert_eq!(inj.decide(Device::Disk, IoOp::Read, 0, 4096), None);
        assert_eq!(inj.decide(Device::Disk, IoOp::Read, 1, 4096), None);
        assert_eq!(
            inj.decide(Device::Disk, IoOp::Read, 2, 4096),
            Some(InjectedFault::Crash)
        );
        // Everything fails until restart, including cache hits.
        assert_eq!(
            inj.decide(Device::Archive, IoOp::Write, 0, 10),
            Some(InjectedFault::Crash)
        );
        assert_eq!(inj.on_cache_op(), Some(InjectedFault::Crash));
        assert!(inj.is_crashed());
        inj.restart();
        assert!(!inj.is_crashed());
        assert_eq!(inj.decide(Device::Disk, IoOp::Read, 0, 4096), None);
        assert_eq!(inj.stats().crashes, 1);
    }

    #[test]
    fn permanent_loss_persists_across_restart() {
        let inj = FaultInjector::disabled();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Permanent).at(7));
        assert_eq!(
            inj.decide(Device::Disk, IoOp::Read, 7, 4096),
            Some(InjectedFault::Permanent)
        );
        inj.restart();
        assert_eq!(
            inj.decide(Device::Disk, IoOp::Read, 7, 4096),
            Some(InjectedFault::Permanent),
            "media damage survives restart"
        );
        assert_eq!(inj.decide(Device::Disk, IoOp::Read, 8, 4096), None);
    }

    #[test]
    fn scripted_fault_respects_op_target_and_count() {
        let inj = FaultInjector::disabled();
        inj.script(
            ScriptedFault::new(Device::Archive, FaultKind::Transient)
                .on(IoOp::Read)
                .at(3)
                .times(2),
        );
        assert_eq!(inj.decide(Device::Archive, IoOp::Write, 3, 10), None);
        assert_eq!(inj.decide(Device::Archive, IoOp::Read, 2, 10), None);
        assert_eq!(
            inj.decide(Device::Archive, IoOp::Read, 3, 10),
            Some(InjectedFault::Transient)
        );
        assert_eq!(
            inj.decide(Device::Archive, IoOp::Read, 3, 10),
            Some(InjectedFault::Transient)
        );
        assert_eq!(inj.decide(Device::Archive, IoOp::Read, 3, 10), None);
    }

    #[test]
    fn scripted_delay_succeeds_slowly_and_is_counted() {
        let inj = FaultInjector::disabled();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Delay { units: 7 }).on(IoOp::Read));
        assert_eq!(
            inj.decide(Device::Disk, IoOp::Read, 0, 4096),
            Some(InjectedFault::Delay { units: 7 })
        );
        assert_eq!(inj.decide(Device::Disk, IoOp::Read, 0, 4096), None);
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn slow_read_probability_is_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 11,
            disk: DeviceFaults {
                slow_read: 0.3,
                slow_read_units: 5,
                ..DeviceFaults::default()
            },
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let mut fired = 0;
        for i in 0..400 {
            let fa = a.decide(Device::Disk, IoOp::Read, i, 4096);
            assert_eq!(fa, b.decide(Device::Disk, IoOp::Read, i, 4096), "op {i}");
            if let Some(InjectedFault::Delay { units }) = fa {
                assert_eq!(units, 5);
                fired += 1;
            }
        }
        assert!(fired > 0, "0.3 over 400 reads must fire");
        assert_eq!(a.stats().delayed, fired);
    }

    #[test]
    fn corrupt_picks_bit_within_data() {
        let inj = FaultInjector::disabled();
        inj.script(ScriptedFault::new(Device::Disk, FaultKind::Corrupt).times(50));
        for i in 0..50 {
            match inj.decide(Device::Disk, IoOp::Write, i, 100) {
                Some(InjectedFault::Corrupt { bit }) => assert!(bit < 800),
                other => panic!("expected corruption, got {other:?}"),
            }
        }
    }
}
