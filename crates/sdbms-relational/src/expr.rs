//! Scalar expressions and predicates over rows.
//!
//! §4.1: "the analyst will specify an update to the data set by using a
//! predicate in a similar manner to what is currently done in
//! relational systems". [`Predicate`] is that language; [`Expr`] is the
//! scalar expression language used for computed columns (the "sum of
//! three attributes, or the logarithm of some attribute" derived
//! columns of §3.2) and for update right-hand sides.
//!
//! Semantics are deliberately simple and two-valued: any comparison or
//! arithmetic involving a missing value yields missing/false, except
//! the explicit [`Predicate::IsMissing`] test. This matches how
//! statistical packages treat missing data (drop it), not SQL's
//! three-valued logic.

use std::fmt;

use sdbms_data::{DataError, Schema, Value};

/// Result alias matching the data-layer error type.
pub type Result<T> = std::result::Result<T, DataError>;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (division by zero yields missing).
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// Unary scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Natural logarithm (non-positive input yields missing).
    Ln,
    /// Base-10 logarithm.
    Log10,
    /// Absolute value.
    Abs,
    /// Square root (negative input yields missing).
    Sqrt,
    /// Negation.
    Neg,
}

impl fmt::Display for ScalarFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScalarFunc::Ln => "ln",
            ScalarFunc::Log10 => "log10",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Sqrt => "sqrt",
            ScalarFunc::Neg => "neg",
        })
    }
}

/// A scalar expression evaluated per row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An attribute reference.
    Column(String),
    /// A constant.
    Literal(Value),
    /// Arithmetic on two subexpressions (numeric; missing propagates).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary function application.
    Func {
        /// Function.
        f: ScalarFunc,
        /// Argument.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    #[must_use]
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Shorthand for a literal.
    #[must_use]
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self op other`.
    #[must_use]
    pub fn binary(self, op: BinOp, other: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `f(self)`.
    #[must_use]
    pub fn apply(self, f: ScalarFunc) -> Expr {
        Expr::Func {
            f,
            arg: Box::new(self),
        }
    }

    /// Resolve column names to positions for fast repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.require(name)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Func { f, arg } => BoundExpr::Func {
                f: *f,
                arg: Box::new(arg.bind(schema)?),
            },
        })
    }

    /// Names of all columns the expression reads.
    #[must_use]
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(n) => out.push(n.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Func { arg, .. } => arg.collect_columns(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c:?}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Func { f: func, arg } => write!(f, "{func}({arg})"),
        }
    }
}

/// An [`Expr`] with column references resolved to row positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Resolved column position.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Arithmetic node.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Function node.
    Func {
        /// Function.
        f: ScalarFunc,
        /// Argument.
        arg: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against one row. Missing operands, domain errors
    /// (log of a negative, division by zero), and non-numeric operands
    /// to arithmetic all yield [`Value::Missing`].
    #[must_use]
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            BoundExpr::Column(i) => row[*i].clone(),
            BoundExpr::Literal(v) => v.clone(),
            BoundExpr::Binary { op, left, right } => {
                let (Some(l), Some(r)) = (left.eval(row).as_f64(), right.eval(row).as_f64()) else {
                    return Value::Missing;
                };
                let x = match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => {
                        if r == 0.0 {
                            return Value::Missing;
                        }
                        l / r
                    }
                };
                Value::Float(x)
            }
            BoundExpr::Func { f, arg } => {
                let Some(x) = arg.eval(row).as_f64() else {
                    return Value::Missing;
                };
                let y = match f {
                    ScalarFunc::Ln => {
                        if x <= 0.0 {
                            return Value::Missing;
                        }
                        x.ln()
                    }
                    ScalarFunc::Log10 => {
                        if x <= 0.0 {
                            return Value::Missing;
                        }
                        x.log10()
                    }
                    ScalarFunc::Abs => x.abs(),
                    ScalarFunc::Sqrt => {
                        if x < 0.0 {
                            return Value::Missing;
                        }
                        x.sqrt()
                    }
                    ScalarFunc::Neg => -x,
                };
                Value::Float(y)
            }
        }
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A row predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the whole data set).
    True,
    /// Compare two expressions. Comparisons involving missing are
    /// false (except `Ne`, which is also false: missing is
    /// incomparable).
    Cmp {
        /// Left expression.
        left: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right expression.
        right: Expr,
    },
    /// Both subpredicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either subpredicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The subpredicate does not hold.
    Not(Box<Predicate>),
    /// The named attribute is missing in this row.
    IsMissing(String),
}

impl Predicate {
    /// `left op right` shorthand.
    #[must_use]
    pub fn cmp(left: Expr, op: CmpOp, right: Expr) -> Predicate {
        Predicate::Cmp { left, op, right }
    }

    /// `column = literal` shorthand.
    #[must_use]
    pub fn col_eq(column: &str, v: impl Into<Value>) -> Predicate {
        Predicate::cmp(Expr::col(column), CmpOp::Eq, Expr::lit(v))
    }

    /// Conjunction shorthand.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction shorthand.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation shorthand.
    #[must_use]
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Resolve column references for fast repeated evaluation.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate> {
        Ok(match self {
            Predicate::True => BoundPredicate::True,
            Predicate::Cmp { left, op, right } => BoundPredicate::Cmp {
                left: left.bind(schema)?,
                op: *op,
                right: right.bind(schema)?,
            },
            Predicate::And(a, b) => {
                BoundPredicate::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Or(a, b) => {
                BoundPredicate::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
            Predicate::IsMissing(name) => BoundPredicate::IsMissing(schema.require(name)?),
        })
    }

    /// Names of all columns the predicate reads.
    #[must_use]
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::IsMissing(n) => out.push(n.clone()),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT {p}"),
            Predicate::IsMissing(c) => write!(f, "{c:?} IS MISSING"),
        }
    }
}

/// A [`Predicate`] with columns resolved to row positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicate {
    /// Always true.
    True,
    /// Comparison node.
    Cmp {
        /// Left expression.
        left: BoundExpr,
        /// Operator.
        op: CmpOp,
        /// Right expression.
        right: BoundExpr,
    },
    /// Conjunction.
    And(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Disjunction.
    Or(Box<BoundPredicate>, Box<BoundPredicate>),
    /// Negation.
    Not(Box<BoundPredicate>),
    /// Missing test on a resolved column.
    IsMissing(usize),
}

impl BoundPredicate {
    /// Evaluate against one row.
    #[must_use]
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Cmp { left, op, right } => {
                let (l, r) = (left.eval(row), right.eval(row));
                if l.is_missing() || r.is_missing() {
                    return false;
                }
                let ord = l.total_cmp(&r);
                match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }
            }
            BoundPredicate::And(a, b) => a.eval(row) && b.eval(row),
            BoundPredicate::Or(a, b) => a.eval(row) || b.eval(row),
            BoundPredicate::Not(p) => !p.eval(row),
            BoundPredicate::IsMissing(i) => row[*i].is_missing(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_data::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::category("SEX", DataType::Str),
            Attribute::measured("AGE", DataType::Int),
            Attribute::measured("INCOME", DataType::Float),
        ])
        .unwrap()
    }

    fn row(sex: &str, age: i64, income: f64) -> Vec<Value> {
        vec![
            Value::Str(sex.into()),
            Value::Int(age),
            Value::Float(income),
        ]
    }

    #[test]
    fn arithmetic_and_functions() {
        let s = schema();
        let e = Expr::col("INCOME")
            .binary(BinOp::Div, Expr::lit(1000.0))
            .bind(&s)
            .unwrap();
        assert_eq!(e.eval(&row("M", 30, 42_000.0)), Value::Float(42.0));
        let ln = Expr::col("INCOME").apply(ScalarFunc::Ln).bind(&s).unwrap();
        assert_eq!(ln.eval(&row("M", 30, 1.0)), Value::Float(0.0));
        assert_eq!(ln.eval(&row("M", 30, -5.0)), Value::Missing);
        let neg = Expr::col("AGE").apply(ScalarFunc::Neg).bind(&s).unwrap();
        assert_eq!(neg.eval(&row("M", 30, 0.0)), Value::Float(-30.0));
    }

    #[test]
    fn missing_propagates_through_arithmetic() {
        let s = schema();
        let e = Expr::col("AGE")
            .binary(BinOp::Add, Expr::col("INCOME"))
            .bind(&s)
            .unwrap();
        let mut r = row("M", 30, 100.0);
        r[2] = Value::Missing;
        assert_eq!(e.eval(&r), Value::Missing);
        // Division by zero is missing, not a panic or infinity.
        let div = Expr::col("AGE")
            .binary(BinOp::Div, Expr::lit(0.0))
            .bind(&s)
            .unwrap();
        assert_eq!(div.eval(&row("M", 1, 0.0)), Value::Missing);
        // Strings are not numbers.
        let bad = Expr::col("SEX")
            .binary(BinOp::Add, Expr::lit(1.0))
            .bind(&s)
            .unwrap();
        assert_eq!(bad.eval(&row("M", 1, 0.0)), Value::Missing);
    }

    #[test]
    fn predicates_basic() {
        let s = schema();
        let p = Predicate::col_eq("SEX", "M")
            .and(Predicate::cmp(
                Expr::col("AGE"),
                CmpOp::Ge,
                Expr::lit(21i64),
            ))
            .bind(&s)
            .unwrap();
        assert!(p.eval(&row("M", 30, 0.0)));
        assert!(!p.eval(&row("F", 30, 0.0)));
        assert!(!p.eval(&row("M", 20, 0.0)));
        let t = Predicate::True.bind(&s).unwrap();
        assert!(t.eval(&row("F", 1, 1.0)));
    }

    #[test]
    fn missing_comparisons_false_ismissing_true() {
        let s = schema();
        let mut r = row("M", 30, 1.0);
        r[2] = Value::Missing;
        let eq = Predicate::col_eq("INCOME", 1.0).bind(&s).unwrap();
        assert!(!eq.eval(&r));
        let ne = Predicate::cmp(Expr::col("INCOME"), CmpOp::Ne, Expr::lit(1.0))
            .bind(&s)
            .unwrap();
        assert!(!ne.eval(&r), "missing is incomparable, even for <>");
        let is_missing = Predicate::IsMissing("INCOME".into()).bind(&s).unwrap();
        assert!(is_missing.eval(&r));
        assert!(!is_missing.eval(&row("M", 30, 1.0)));
    }

    #[test]
    fn int_float_cross_type_comparison() {
        let s = schema();
        let p = Predicate::cmp(Expr::col("AGE"), CmpOp::Lt, Expr::lit(30.5))
            .bind(&s)
            .unwrap();
        assert!(p.eval(&row("M", 30, 0.0)));
        assert!(!p.eval(&row("M", 31, 0.0)));
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let s = schema();
        assert!(Expr::col("NOPE").bind(&s).is_err());
        assert!(Predicate::IsMissing("NOPE".into()).bind(&s).is_err());
    }

    #[test]
    fn referenced_columns_collected() {
        let e = Expr::col("A").binary(BinOp::Add, Expr::col("B").apply(ScalarFunc::Abs));
        assert_eq!(
            e.referenced_columns(),
            vec!["A".to_string(), "B".to_string()]
        );
        let p = Predicate::col_eq("X", 1i64)
            .or(Predicate::IsMissing("Y".into()))
            .negate();
        assert_eq!(
            p.referenced_columns(),
            vec!["X".to_string(), "Y".to_string()]
        );
    }

    #[test]
    fn display_forms() {
        let p = Predicate::col_eq("SEX", "M").and(Predicate::cmp(
            Expr::col("AGE").binary(BinOp::Mul, Expr::lit(2i64)),
            CmpOp::Gt,
            Expr::lit(40i64),
        ));
        let s = p.to_string();
        assert!(s.contains("\"SEX\" = M"));
        assert!(s.contains("AND"));
        assert!(s.contains("(\"AGE\" * 2) > 40"));
    }
}
