//! # sdbms-relational — view materialization operators
//!
//! §2.3: "The operations required for materializing views are the
//! traditional relational operations which create and transform
//! tables", plus aggregates. This crate provides:
//!
//! - [`expr`] — scalar expressions and predicates (the §4.1 update
//!   language), with bind-then-evaluate execution and missing-value
//!   semantics suited to statistical data (comparisons with missing are
//!   false; arithmetic propagates missing).
//! - [`ops`] — select, project, extend (computed columns), nested-loop
//!   and hash equi-joins, sort, distinct, and group-by aggregation
//!   including the weighted mean of the paper's §2.2 merge example.
//! - [`viewdef`] — [`viewdef::ViewDefinition`], the re-executable
//!   lineage record the Management Database stores for every concrete
//!   view: source + ordered pipeline, with structural equality for the
//!   §2.3 duplicate-view check.
//! - [`prune`] — predicate pushdown against per-segment zone maps:
//!   a three-valued analysis that lets scans skip whole morsels whose
//!   statistics refute the predicate, bit-identically to an unpruned
//!   scan.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expr;
pub mod ops;
pub mod prune;
pub mod viewdef;

pub use expr::{BinOp, BoundExpr, BoundPredicate, CmpOp, Expr, Predicate, ScalarFunc};
pub use ops::{par_project, par_select, AggFunc, Aggregate};
pub use prune::{filter_table_rows, predicate_truth, Truth, ZoneMapPruner};
pub use viewdef::{ViewDefinition, ViewStep};
