//! Relational operators over data sets.
//!
//! §2.3: "The operations required for materializing views are the
//! traditional relational operations which create and transform
//! tables… Another, very important, set of operators are aggregates,
//! in particular aggregate functions." These operators run during view
//! materialization and whenever an analyst derives a new data set —
//! including the paper's §2.2 example of collapsing the M/F split by
//! summing populations and *weighted-averaging* the salaries.

use std::collections::HashMap;

use sdbms_data::{Attribute, AttributeRole, DataSet, DataType, Schema, Value};

use crate::expr::{Expr, Predicate, Result};

/// Rows of `ds` satisfying `pred`.
pub fn select(ds: &DataSet, pred: &Predicate) -> Result<DataSet> {
    let bound = pred.bind(ds.schema())?;
    let rows = ds
        .rows()
        .iter()
        .filter(|r| bound.eval(r))
        .cloned()
        .collect();
    DataSet::from_rows(&format!("{}_select", ds.name()), ds.schema().clone(), rows)
}

/// [`select`] evaluated morsel-parallel: workers evaluate the bound
/// predicate over disjoint row ranges and the per-morsel hit lists are
/// concatenated in morsel order, so the output is identical to the
/// serial operator for every worker count.
pub fn par_select(ds: &DataSet, pred: &Predicate, cfg: &sdbms_exec::ExecConfig) -> Result<DataSet> {
    let bound = pred.bind(ds.schema())?;
    let all_rows = ds.rows();
    let keep = sdbms_exec::filter_indices::<sdbms_data::DataError, _>(all_rows.len(), cfg, |i| {
        Ok(bound.eval(&all_rows[i]))
    })?;
    let rows = keep.iter().map(|&i| all_rows[i].clone()).collect();
    DataSet::from_rows(&format!("{}_select", ds.name()), ds.schema().clone(), rows)
}

/// [`project`] evaluated morsel-parallel: workers materialize the
/// projected rows of disjoint row ranges, concatenated in morsel order
/// — identical output to the serial operator.
pub fn par_project(ds: &DataSet, names: &[&str], cfg: &sdbms_exec::ExecConfig) -> Result<DataSet> {
    let schema = ds.schema().project(names)?;
    let idx: Vec<usize> = names
        .iter()
        .map(|n| ds.schema().require(n))
        .collect::<Result<_>>()?;
    let all_rows = ds.rows();
    let chunks =
        sdbms_exec::scan_morsels::<_, sdbms_data::DataError, _>(all_rows.len(), cfg, |m| {
            Ok(all_rows[m.start..m.start + m.len]
                .iter()
                .map(|r| idx.iter().map(|&i| r[i].clone()).collect::<Vec<Value>>())
                .collect::<Vec<_>>())
        })?;
    let rows = chunks.into_iter().flatten().collect();
    DataSet::from_rows(&format!("{}_project", ds.name()), schema, rows)
}

/// The named columns of `ds`, in the given order.
pub fn project(ds: &DataSet, names: &[&str]) -> Result<DataSet> {
    let schema = ds.schema().project(names)?;
    let idx: Vec<usize> = names
        .iter()
        .map(|n| ds.schema().require(n))
        .collect::<Result<_>>()?;
    let rows = ds
        .rows()
        .iter()
        .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
        .collect();
    DataSet::from_rows(&format!("{}_project", ds.name()), schema, rows)
}

/// `ds` extended with a computed column `name = expr` (role Derived).
pub fn extend(ds: &DataSet, name: &str, dtype: DataType, expr: &Expr) -> Result<DataSet> {
    let bound = expr.bind(ds.schema())?;
    let schema = ds.schema().with_appended(Attribute::derived(name, dtype))?;
    let rows: Vec<Vec<Value>> = ds
        .rows()
        .iter()
        .map(|r| {
            let mut out = r.clone();
            let v = bound.eval(r);
            // Arithmetic yields floats; coerce to int if the target
            // column is declared Int and the value is integral.
            let v = match (&v, dtype) {
                (Value::Float(x), DataType::Int) if x.fract() == 0.0 => Value::Int(*x as i64),
                _ => v,
            };
            out.push(v);
            out
        })
        .collect();
    DataSet::from_rows(&format!("{}_extend", ds.name()), schema, rows)
}

/// Equi-join on `left.left_on = right.right_on` (nested loops — the
/// baseline; see [`hash_join`]). Missing join keys never match. Output
/// columns: all of `left`, then all of `right` except `right_on`;
/// name clashes from the right side get a `right_` prefix.
pub fn nested_loop_join(
    left: &DataSet,
    right: &DataSet,
    left_on: &str,
    right_on: &str,
) -> Result<DataSet> {
    let li = left.schema().require(left_on)?;
    let ri = right.schema().require(right_on)?;
    let (schema, rkeep) = join_schema(left, right, right_on)?;
    let mut rows = Vec::new();
    for lrow in left.rows() {
        if lrow[li].is_missing() {
            continue;
        }
        for rrow in right.rows() {
            if rrow[ri].is_missing() || !lrow[li].group_eq(&rrow[ri]) {
                continue;
            }
            rows.push(join_row(lrow, rrow, &rkeep));
        }
    }
    DataSet::from_rows(
        &format!("{}_join_{}", left.name(), right.name()),
        schema,
        rows,
    )
}

/// Equi-join via a hash table on the right input — same output as
/// [`nested_loop_join`], O(|L| + |R|) instead of O(|L|·|R|).
pub fn hash_join(
    left: &DataSet,
    right: &DataSet,
    left_on: &str,
    right_on: &str,
) -> Result<DataSet> {
    let li = left.schema().require(left_on)?;
    let ri = right.schema().require(right_on)?;
    let (schema, rkeep) = join_schema(left, right, right_on)?;
    // Hash on the display form: group_eq-compatible for the key types
    // used in joins (strings, codes, ints).
    let mut table: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, rrow) in right.rows().iter().enumerate() {
        if !rrow[ri].is_missing() {
            table.entry(rrow[ri].to_string()).or_default().push(i);
        }
    }
    let mut rows = Vec::new();
    for lrow in left.rows() {
        if lrow[li].is_missing() {
            continue;
        }
        if let Some(matches) = table.get(&lrow[li].to_string()) {
            for &i in matches {
                let rrow = &right.rows()[i];
                if lrow[li].group_eq(&rrow[ri]) {
                    rows.push(join_row(lrow, rrow, &rkeep));
                }
            }
        }
    }
    DataSet::from_rows(
        &format!("{}_join_{}", left.name(), right.name()),
        schema,
        rows,
    )
}

fn join_schema(left: &DataSet, right: &DataSet, right_on: &str) -> Result<(Schema, Vec<usize>)> {
    let mut attrs: Vec<Attribute> = left.schema().attributes().to_vec();
    let mut rkeep = Vec::new();
    for (i, a) in right.schema().attributes().iter().enumerate() {
        if a.name == right_on {
            continue;
        }
        rkeep.push(i);
        let mut a = a.clone();
        if left.schema().position(&a.name).is_some() {
            a.name = format!("right_{}", a.name);
        }
        attrs.push(a);
    }
    Ok((Schema::new(attrs)?, rkeep))
}

fn join_row(lrow: &[Value], rrow: &[Value], rkeep: &[usize]) -> Vec<Value> {
    let mut out = lrow.to_vec();
    out.extend(rkeep.iter().map(|&i| rrow[i].clone()));
    out
}

/// Sort rows by the named attributes (ascending, missing first, stable).
pub fn sort_by(ds: &DataSet, attrs: &[&str]) -> Result<DataSet> {
    let idx: Vec<usize> = attrs
        .iter()
        .map(|n| ds.schema().require(n))
        .collect::<Result<_>>()?;
    let mut rows = ds.rows().to_vec();
    rows.sort_by(|a, b| {
        for &i in &idx {
            let ord = a[i].total_cmp(&b[i]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    DataSet::from_rows(&format!("{}_sorted", ds.name()), ds.schema().clone(), rows)
}

/// Distinct rows (first occurrence kept, order preserved).
pub fn distinct(ds: &DataSet) -> Result<DataSet> {
    let mut seen = std::collections::HashSet::new();
    let rows: Vec<Vec<Value>> = ds
        .rows()
        .iter()
        .filter(|r| seen.insert(format!("{r:?}")))
        .cloned()
        .collect();
    DataSet::from_rows(
        &format!("{}_distinct", ds.name()),
        ds.schema().clone(),
        rows,
    )
}

/// Aggregate functions for [`group_aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// Count of non-missing values of the attribute.
    Count,
    /// Sum of numeric values (missing skipped).
    Sum,
    /// Mean of numeric values.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Mean weighted by another attribute — the paper's §2.2 example:
    /// "forming a weighted average of the two AVE_SALARY fields" with
    /// POPULATION weights.
    WeightedMean {
        /// Attribute supplying the weights.
        weight: String,
    },
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggFunc::Count => write!(f, "count"),
            AggFunc::Sum => write!(f, "sum"),
            AggFunc::Mean => write!(f, "mean"),
            AggFunc::Min => write!(f, "min"),
            AggFunc::Max => write!(f, "max"),
            AggFunc::WeightedMean { weight } => write!(f, "wmean[{weight}]"),
        }
    }
}

/// One output aggregate: `out_name = func(attribute)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Input attribute.
    pub attribute: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Output column name.
    pub out_name: String,
}

impl Aggregate {
    /// Construct an aggregate spec.
    #[must_use]
    pub fn new(attribute: &str, func: AggFunc, out_name: &str) -> Self {
        Aggregate {
            attribute: attribute.to_string(),
            func,
            out_name: out_name.to_string(),
        }
    }
}

/// Group rows by `group_attrs` and compute `aggs` per group. Group
/// order is first-occurrence order; missing group values form their own
/// group.
pub fn group_aggregate(ds: &DataSet, group_attrs: &[&str], aggs: &[Aggregate]) -> Result<DataSet> {
    let gidx: Vec<usize> = group_attrs
        .iter()
        .map(|n| ds.schema().require(n))
        .collect::<Result<_>>()?;
    struct AggPlan {
        col: usize,
        weight_col: Option<usize>,
    }
    let mut plans = Vec::with_capacity(aggs.len());
    for a in aggs {
        let col = ds.schema().require(&a.attribute)?;
        let weight_col = match &a.func {
            AggFunc::WeightedMean { weight } => Some(ds.schema().require(weight)?),
            _ => None,
        };
        plans.push(AggPlan { col, weight_col });
    }

    // Group rows (key = group values' debug form; group_eq-compatible).
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, (Vec<Value>, Vec<usize>)> = HashMap::new();
    for (ri, row) in ds.rows().iter().enumerate() {
        let key_vals: Vec<Value> = gidx.iter().map(|&i| row[i].clone()).collect();
        let key = format!("{key_vals:?}");
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                (key_vals, Vec::new())
            })
            .1
            .push(ri);
    }

    // Output schema: group attrs keep their metadata; aggregates are
    // derived floats (Count is an int).
    let mut attrs: Vec<Attribute> = gidx
        .iter()
        .map(|&i| ds.schema().attribute_at(i).clone())
        .collect();
    for a in aggs {
        let dtype = match a.func {
            AggFunc::Count => DataType::Int,
            _ => DataType::Float,
        };
        attrs.push(Attribute {
            name: a.out_name.clone(),
            dtype,
            role: AttributeRole::Derived,
            codebook: None,
            valid_range: None,
        });
    }
    let schema = Schema::new(attrs)?;

    let mut out_rows = Vec::with_capacity(order.len());
    for key in order {
        let (key_vals, row_ids) = &groups[&key];
        let mut out = key_vals.clone();
        for (a, plan) in aggs.iter().zip(&plans) {
            out.push(compute_agg(ds, row_ids, a, plan.col, plan.weight_col)?);
        }
        out_rows.push(out);
    }
    DataSet::from_rows(&format!("{}_grouped", ds.name()), schema, out_rows)
}

fn compute_agg(
    ds: &DataSet,
    row_ids: &[usize],
    agg: &Aggregate,
    col: usize,
    weight_col: Option<usize>,
) -> Result<Value> {
    let rows = ds.rows();
    match &agg.func {
        AggFunc::Count => {
            let n = row_ids
                .iter()
                .filter(|&&i| !rows[i][col].is_missing())
                .count();
            Ok(Value::Int(n as i64))
        }
        AggFunc::Sum | AggFunc::Mean | AggFunc::Min | AggFunc::Max => {
            let vals: Vec<f64> = row_ids
                .iter()
                .filter_map(|&i| rows[i][col].as_f64())
                .collect();
            if vals.is_empty() {
                return Ok(Value::Missing);
            }
            let x = match agg.func {
                AggFunc::Sum => vals.iter().sum(),
                AggFunc::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                AggFunc::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
                AggFunc::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                // lint: allow(no-panic): the enclosing match arm admits only Sum/Mean/Min/Max
                _ => unreachable!(),
            };
            Ok(Value::Float(x))
        }
        AggFunc::WeightedMean { .. } => {
            // lint: allow(no-panic): the aggregate planner resolves the weight column before building a WeightedMean
            let wcol = weight_col.expect("weight column resolved in plan");
            let mut num = 0.0;
            let mut den = 0.0;
            for &i in row_ids {
                if let (Some(x), Some(w)) = (rows[i][col].as_f64(), rows[i][wcol].as_f64()) {
                    num += x * w;
                    den += w;
                }
            }
            if den == 0.0 {
                return Ok(Value::Missing);
            }
            Ok(Value::Float(num / den))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, CmpOp, ScalarFunc};
    use sdbms_data::census::figure1;
    use sdbms_data::CodeBook;

    #[test]
    fn select_males_from_figure1() {
        let out = select(&figure1(), &Predicate::col_eq("SEX", "M")).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.column("SEX").unwrap().all(|v| v.as_str() == Some("M")));
        let none = select(
            &figure1(),
            &Predicate::col_eq("SEX", "M").and(Predicate::col_eq("SEX", "F")),
        )
        .unwrap();
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn parallel_select_and_project_match_serial() {
        use sdbms_data::census::{microdata_census, CensusConfig};
        let ds = microdata_census(&CensusConfig {
            rows: 3000,
            ..Default::default()
        })
        .unwrap();
        let pred = Predicate::cmp(Expr::col("AGE"), CmpOp::Gt, Expr::lit(40.0));
        let serial_sel = select(&ds, &pred).unwrap();
        let serial_proj = project(&ds, &["INCOME", "AGE"]).unwrap();
        for workers in [1, 2, 4, 8] {
            let cfg = sdbms_exec::ExecConfig::with_workers(workers);
            let par_sel = par_select(&ds, &pred, &cfg).unwrap();
            assert_eq!(par_sel.rows(), serial_sel.rows(), "select @ {workers}");
            assert_eq!(par_sel.schema(), serial_sel.schema());
            let par_proj = par_project(&ds, &["INCOME", "AGE"], &cfg).unwrap();
            assert_eq!(par_proj.rows(), serial_proj.rows(), "project @ {workers}");
            assert_eq!(par_proj.schema(), serial_proj.schema());
        }
        assert!(par_project(&ds, &["NOPE"], &sdbms_exec::ExecConfig::serial()).is_err());
    }

    #[test]
    fn project_reorders_columns() {
        let out = project(&figure1(), &["AVE_SALARY", "SEX"]).unwrap();
        assert_eq!(out.schema().names(), vec!["AVE_SALARY", "SEX"]);
        assert_eq!(out.value(0, "AVE_SALARY").unwrap(), &Value::Int(33_122));
        assert!(project(&figure1(), &["NOPE"]).is_err());
    }

    #[test]
    fn extend_log_salary() {
        let out = extend(
            &figure1(),
            "LOG_SALARY",
            DataType::Float,
            &Expr::col("AVE_SALARY").apply(ScalarFunc::Ln),
        )
        .unwrap();
        assert_eq!(out.schema().len(), 6);
        let v = out.value(0, "LOG_SALARY").unwrap().as_f64().unwrap();
        assert!((v - (33_122.0f64).ln()).abs() < 1e-12);
        assert_eq!(
            out.schema().attribute("LOG_SALARY").unwrap().role,
            AttributeRole::Derived
        );
    }

    #[test]
    fn figure2_decode_join() {
        // The paper's flagship join: decode AGE_GROUP via Figure 2.
        let code_ds = CodeBook::figure2_age_group().to_dataset();
        for join in [nested_loop_join, hash_join] {
            let out = join(&figure1(), &code_ds, "AGE_GROUP", "CATEGORY").unwrap();
            assert_eq!(out.len(), 9, "every row decodes");
            assert_eq!(
                out.value(0, "VALUE").unwrap(),
                &Value::Str("0 to 20".into())
            );
            assert_eq!(
                out.value(3, "VALUE").unwrap(),
                &Value::Str("over 60".into())
            );
        }
    }

    #[test]
    fn joins_agree_and_skip_missing_keys() {
        let mut left = figure1();
        left.invalidate(0, "AGE_GROUP").unwrap();
        let code_ds = CodeBook::figure2_age_group().to_dataset();
        let nl = nested_loop_join(&left, &code_ds, "AGE_GROUP", "CATEGORY").unwrap();
        let h = hash_join(&left, &code_ds, "AGE_GROUP", "CATEGORY").unwrap();
        assert_eq!(nl.rows(), h.rows());
        assert_eq!(nl.len(), 8, "missing key row dropped");
    }

    #[test]
    fn join_renames_clashing_columns() {
        let l = figure1();
        let r = figure1();
        let out = hash_join(&l, &r, "AGE_GROUP", "AGE_GROUP").unwrap();
        assert!(out.schema().position("right_SEX").is_some());
        assert!(out.schema().position("right_POPULATION").is_some());
        // 9 rows of figure1 match on age group: groups of sizes
        // 3,2,2,2 -> 9+4+4+4 = sum of squares = 21.
        assert_eq!(out.len(), 21);
    }

    #[test]
    fn sort_and_distinct() {
        let sorted = sort_by(&figure1(), &["AVE_SALARY"]).unwrap();
        let sal: Vec<i64> = sorted
            .column("AVE_SALARY")
            .unwrap()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert!(sal.windows(2).all(|w| w[0] <= w[1]));
        let sexes = project(&figure1(), &["SEX"]).unwrap();
        let d = distinct(&sexes).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn sort_multi_key_stable() {
        let s = sort_by(&figure1(), &["SEX", "AGE_GROUP"]).unwrap();
        // F rows first (F < M), then by age group.
        assert_eq!(s.value(0, "SEX").unwrap(), &Value::Str("F".into()));
        assert_eq!(s.value(0, "AGE_GROUP").unwrap(), &Value::Code(1));
        assert_eq!(s.value(4, "SEX").unwrap(), &Value::Str("M".into()));
    }

    #[test]
    fn paper_merge_example_weighted_average() {
        // §2.2: stop differentiating M and F per RACE/AGE_GROUP: add
        // populations, weighted-average the salaries.
        let out = group_aggregate(
            &figure1(),
            &["RACE", "AGE_GROUP"],
            &[
                Aggregate::new("POPULATION", AggFunc::Sum, "POPULATION"),
                Aggregate::new(
                    "AVE_SALARY",
                    AggFunc::WeightedMean {
                        weight: "POPULATION".into(),
                    },
                    "AVE_SALARY",
                ),
            ],
        )
        .unwrap();
        // Figure 1 has 4 W age groups + 1 B group = 5 groups.
        assert_eq!(out.len(), 5);
        // Check the (W, age 1) group by hand.
        let pop = out.value(0, "POPULATION").unwrap().as_f64().unwrap();
        assert_eq!(pop, 12_300_347.0 + 15_821_497.0);
        let sal = out.value(0, "AVE_SALARY").unwrap().as_f64().unwrap();
        let expect =
            (12_300_347.0 * 33_122.0 + 15_821_497.0 * 31_762.0) / (12_300_347.0 + 15_821_497.0);
        assert!((sal - expect).abs() < 1e-6);
        // The lone (B, 1) group passes through unchanged.
        let b_sal = out.value(4, "AVE_SALARY").unwrap().as_f64().unwrap();
        assert!((b_sal - 29_402.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_count_skips_missing_and_empty_groups_yield_missing() {
        let mut ds = figure1();
        ds.invalidate(0, "AVE_SALARY").unwrap();
        let out = group_aggregate(
            &ds,
            &["SEX"],
            &[
                Aggregate::new("AVE_SALARY", AggFunc::Count, "N"),
                Aggregate::new("AVE_SALARY", AggFunc::Mean, "MEAN_SAL"),
                Aggregate::new("AVE_SALARY", AggFunc::Min, "MIN_SAL"),
                Aggregate::new("AVE_SALARY", AggFunc::Max, "MAX_SAL"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // M group lost one value to invalidation: 5 rows, 4 counted.
        assert_eq!(out.value(0, "N").unwrap(), &Value::Int(4));
        let min = out.value(0, "MIN_SAL").unwrap().as_f64().unwrap();
        let max = out.value(0, "MAX_SAL").unwrap().as_f64().unwrap();
        assert!(min <= max);
    }

    #[test]
    fn group_by_all_missing_column() {
        let mut ds = figure1();
        for i in 0..ds.len() {
            ds.invalidate(i, "AVE_SALARY").unwrap();
        }
        let out = group_aggregate(
            &ds,
            &["SEX"],
            &[Aggregate::new("AVE_SALARY", AggFunc::Mean, "M")],
        )
        .unwrap();
        assert!(out.rows().iter().all(|r| r[1].is_missing()));
    }

    #[test]
    fn predicate_with_arithmetic_in_select() {
        // Salary per capita > some threshold — exercises Expr in Cmp.
        let p = Predicate::cmp(
            Expr::col("AVE_SALARY").binary(BinOp::Div, Expr::lit(1000.0)),
            CmpOp::Gt,
            Expr::lit(30.0),
        );
        let out = select(&figure1(), &p).unwrap();
        assert_eq!(out.len(), 3, "33122, 42919, 31762");
    }
}
