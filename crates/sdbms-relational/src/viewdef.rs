//! View definitions: the lineage the Management Database stores.
//!
//! §3.2: the Management Database holds "view definitions… including a
//! specification of the operations that were utilized to materialize
//! the view". A [`ViewDefinition`] is that specification: a source data
//! set plus an ordered pipeline of relational steps. It can be
//! re-executed at any time against a source resolver (the raw database
//! in `sdbms-core`, or any in-memory provider), which is what makes
//! re-materialization, sharing, and the "has someone already built this
//! view?" check (§2.3) possible.

use std::fmt;

use sdbms_data::{DataSet, DataType};

use crate::expr::{Expr, Predicate, Result};
use crate::ops;

/// One step of a view-materialization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewStep {
    /// Keep rows satisfying the predicate.
    Select(Predicate),
    /// Keep (and reorder to) the named columns.
    Project(Vec<String>),
    /// Append a computed column.
    Extend {
        /// New column name.
        name: String,
        /// New column type.
        dtype: DataType,
        /// Defining expression.
        expr: Expr,
    },
    /// Equi-join with another source data set (hash join).
    Join {
        /// Name of the other source in the resolver.
        with: String,
        /// Join attribute on the pipeline side.
        left_on: String,
        /// Join attribute on the `with` side.
        right_on: String,
    },
    /// Sort by attributes (ascending).
    Sort(Vec<String>),
    /// Drop duplicate rows.
    Distinct,
    /// Group and aggregate.
    Aggregate {
        /// Grouping attributes.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<ops::Aggregate>,
    },
    /// Simple random sample of `k` rows with a fixed seed (§2.2
    /// exploratory sampling; the seed keeps lineage reproducible).
    Sample {
        /// Sample size.
        k: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl fmt::Display for ViewStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewStep::Select(p) => write!(f, "SELECT {p}"),
            ViewStep::Project(cols) => write!(f, "PROJECT {cols:?}"),
            ViewStep::Extend { name, expr, .. } => write!(f, "EXTEND {name} = {expr}"),
            ViewStep::Join {
                with,
                left_on,
                right_on,
            } => write!(f, "JOIN {with} ON {left_on} = {right_on}"),
            ViewStep::Sort(cols) => write!(f, "SORT {cols:?}"),
            ViewStep::Distinct => write!(f, "DISTINCT"),
            ViewStep::Aggregate { group_by, aggs } => {
                write!(f, "AGGREGATE BY {group_by:?} [")?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} = {}({})", a.out_name, a.func, a.attribute)?;
                }
                write!(f, "]")
            }
            ViewStep::Sample { k, seed } => write!(f, "SAMPLE {k} (seed {seed})"),
        }
    }
}

/// A named, re-executable description of how a view is materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDefinition {
    /// Name the materialized view will carry.
    pub name: String,
    /// Source data set (in the raw database).
    pub source: String,
    /// Pipeline applied to the source, in order.
    pub steps: Vec<ViewStep>,
}

impl ViewDefinition {
    /// A definition that materializes `source` unchanged.
    #[must_use]
    pub fn scan(name: &str, source: &str) -> Self {
        ViewDefinition {
            name: name.to_string(),
            source: source.to_string(),
            steps: Vec::new(),
        }
    }

    /// Append a step (builder style).
    #[must_use]
    pub fn with_step(mut self, step: ViewStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Builder: select.
    #[must_use]
    pub fn select(self, pred: Predicate) -> Self {
        self.with_step(ViewStep::Select(pred))
    }

    /// Builder: project.
    #[must_use]
    pub fn project(self, cols: &[&str]) -> Self {
        self.with_step(ViewStep::Project(
            cols.iter().map(ToString::to_string).collect(),
        ))
    }

    /// Builder: extend.
    #[must_use]
    pub fn extend(self, name: &str, dtype: DataType, expr: Expr) -> Self {
        self.with_step(ViewStep::Extend {
            name: name.to_string(),
            dtype,
            expr,
        })
    }

    /// Builder: join.
    #[must_use]
    pub fn join(self, with: &str, left_on: &str, right_on: &str) -> Self {
        self.with_step(ViewStep::Join {
            with: with.to_string(),
            left_on: left_on.to_string(),
            right_on: right_on.to_string(),
        })
    }

    /// Builder: aggregate.
    #[must_use]
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<ops::Aggregate>) -> Self {
        self.with_step(ViewStep::Aggregate {
            group_by: group_by.iter().map(ToString::to_string).collect(),
            aggs,
        })
    }

    /// Builder: sample.
    #[must_use]
    pub fn sample(self, k: usize, seed: u64) -> Self {
        self.with_step(ViewStep::Sample { k, seed })
    }

    /// Every source data set the definition reads (the scan source plus
    /// all join partners).
    #[must_use]
    pub fn sources(&self) -> Vec<String> {
        let mut out = vec![self.source.clone()];
        for s in &self.steps {
            if let ViewStep::Join { with, .. } = s {
                out.push(with.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Execute the pipeline. `resolve` maps a source name to its data
    /// set (in `sdbms-core` this is an archive extraction).
    pub fn execute(&self, resolve: &mut dyn FnMut(&str) -> Result<DataSet>) -> Result<DataSet> {
        let mut current = resolve(&self.source)?;
        for step in &self.steps {
            current = match step {
                ViewStep::Select(p) => ops::select(&current, p)?,
                ViewStep::Project(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    ops::project(&current, &names)?
                }
                ViewStep::Extend { name, dtype, expr } => {
                    ops::extend(&current, name, *dtype, expr)?
                }
                ViewStep::Join {
                    with,
                    left_on,
                    right_on,
                } => {
                    let other = resolve(with)?;
                    ops::hash_join(&current, &other, left_on, right_on)?
                }
                ViewStep::Sort(cols) => {
                    let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                    ops::sort_by(&current, &names)?
                }
                ViewStep::Distinct => ops::distinct(&current)?,
                ViewStep::Aggregate { group_by, aggs } => {
                    let names: Vec<&str> = group_by.iter().map(String::as_str).collect();
                    ops::group_aggregate(&current, &names, aggs)?
                }
                ViewStep::Sample { k, seed } => sample_rows(&current, *k, *seed)?,
            };
        }
        current.set_name(&self.name);
        Ok(current)
    }

    /// Structural equality of *what is computed* (source + steps),
    /// ignoring the view's name — the §2.3 duplicate-view check.
    #[must_use]
    pub fn computes_same_as(&self, other: &ViewDefinition) -> bool {
        self.source == other.source && self.steps == other.steps
    }
}

impl fmt::Display for ViewDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VIEW {} := SCAN {}", self.name, self.source)?;
        for s in &self.steps {
            write!(f, " |> {s}")?;
        }
        Ok(())
    }
}

/// Deterministic simple random sample of `k` rows (Floyd's algorithm,
/// duplicated from `sdbms-stats` to keep this crate's dependencies to
/// `sdbms-data` only).
fn sample_rows(ds: &DataSet, k: usize, seed: u64) -> Result<DataSet> {
    if k >= ds.len() {
        return DataSet::from_rows(ds.name(), ds.schema().clone(), ds.rows().to_vec());
    }
    // SplitMix64 generator: tiny, seedable, good enough for sampling.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = ds.len();
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in n - k..n {
        let t = (next() % (j as u64 + 1)) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut idx: Vec<usize> = chosen.into_iter().collect();
    idx.sort_unstable();
    let rows = idx.iter().map(|&i| ds.rows()[i].clone()).collect();
    DataSet::from_rows(ds.name(), ds.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarFunc;
    use crate::ops::{AggFunc, Aggregate};
    use sdbms_data::census::figure1;
    use sdbms_data::DataError;
    use sdbms_data::{CodeBook, Value};

    fn resolver() -> impl FnMut(&str) -> Result<DataSet> {
        |name: &str| match name {
            "figure1" => Ok(figure1()),
            "age_codes" => Ok(CodeBook::figure2_age_group().to_dataset()),
            other => Err(DataError::NoSuchAttribute(other.to_string())),
        }
    }

    #[test]
    fn scan_only() {
        let def = ViewDefinition::scan("v", "figure1");
        let out = def.execute(&mut resolver()).unwrap();
        assert_eq!(out.name(), "v");
        assert_eq!(out.rows(), figure1().rows());
    }

    #[test]
    fn full_pipeline() {
        let def = ViewDefinition::scan("male_decoded", "figure1")
            .select(Predicate::col_eq("SEX", "M"))
            .join("age_codes", "AGE_GROUP", "CATEGORY")
            .extend(
                "LOG_SALARY",
                DataType::Float,
                Expr::col("AVE_SALARY").apply(ScalarFunc::Ln),
            )
            .project(&["VALUE", "POPULATION", "LOG_SALARY"]);
        let out = def.execute(&mut resolver()).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.schema().names(),
            vec!["VALUE", "POPULATION", "LOG_SALARY"]
        );
        assert_eq!(
            out.value(0, "VALUE").unwrap(),
            &Value::Str("0 to 20".into())
        );
    }

    #[test]
    fn aggregate_step() {
        let def = ViewDefinition::scan("by_race", "figure1").aggregate(
            &["RACE"],
            vec![Aggregate::new("POPULATION", AggFunc::Sum, "TOTAL_POP")],
        );
        let out = def.execute(&mut resolver()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn sample_step_deterministic() {
        let def = ViewDefinition::scan("s", "figure1").sample(4, 99);
        let a = def.execute(&mut resolver()).unwrap();
        let b = def.execute(&mut resolver()).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.len(), 4);
        // k >= n keeps everything.
        let all = ViewDefinition::scan("s", "figure1")
            .sample(100, 1)
            .execute(&mut resolver())
            .unwrap();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn sources_include_join_partners() {
        let def = ViewDefinition::scan("v", "figure1")
            .join("age_codes", "AGE_GROUP", "CATEGORY")
            .join("age_codes", "AGE_GROUP", "CATEGORY");
        assert_eq!(
            def.sources(),
            vec!["age_codes".to_string(), "figure1".to_string()]
        );
    }

    #[test]
    fn duplicate_view_detection() {
        let a = ViewDefinition::scan("mine", "figure1").select(Predicate::col_eq("SEX", "M"));
        let b = ViewDefinition::scan("yours", "figure1").select(Predicate::col_eq("SEX", "M"));
        let c = ViewDefinition::scan("other", "figure1").select(Predicate::col_eq("SEX", "F"));
        assert!(a.computes_same_as(&b), "same computation, different name");
        assert!(!a.computes_same_as(&c));
    }

    #[test]
    fn missing_source_errors() {
        let def = ViewDefinition::scan("v", "nonexistent");
        assert!(def.execute(&mut resolver()).is_err());
    }

    #[test]
    fn display_is_readable() {
        let def = ViewDefinition::scan("v", "figure1")
            .select(Predicate::col_eq("SEX", "M"))
            .project(&["POPULATION"]);
        let s = def.to_string();
        assert!(s.starts_with("VIEW v := SCAN figure1"));
        assert!(s.contains("SELECT"));
        assert!(s.contains("PROJECT"));
    }
}
