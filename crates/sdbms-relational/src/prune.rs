//! Predicate pushdown against zone maps: deciding, from per-segment
//! statistics alone, that a whole scan morsel cannot contain a
//! matching row.
//!
//! The analysis is three-valued ([`Truth`]): a predicate over a row
//! range is *always false*, *always true*, or *unknown*. Only
//! `AlwaysFalse` prunes; `AlwaysTrue` exists so negation stays sound
//! (`NOT p` is always-false exactly when `p` is always-true). Every
//! rule here mirrors [`BoundPredicate::eval`]'s semantics — the same
//! [`Value::total_cmp`] order, the same missing-makes-comparisons-false
//! convention — which is what makes a pruned scan bit-identical to an
//! unpruned one.
//!
//! [`BoundPredicate::eval`]: crate::expr::BoundPredicate::eval

use std::cmp::Ordering;

use sdbms_columnar::{zonemap::ZoneMap, TableStore};
use sdbms_data::{DataError, Schema, Value};
use sdbms_exec::kernels::{KernelCmp, KernelPredicate};
use sdbms_exec::{scan_morsels, ExecConfig, SegmentPruner};

use crate::expr::{CmpOp, Expr, Predicate};

/// What zone-map statistics prove about a predicate over a row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// No row in the range can satisfy the predicate.
    AlwaysFalse,
    /// Every row in the range satisfies the predicate.
    AlwaysTrue,
    /// The statistics decide nothing; the range must be scanned.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::AlwaysFalse => Truth::AlwaysTrue,
            Truth::AlwaysTrue => Truth::AlwaysFalse,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::AlwaysFalse, _) | (_, Truth::AlwaysFalse) => Truth::AlwaysFalse,
            (Truth::AlwaysTrue, Truth::AlwaysTrue) => Truth::AlwaysTrue,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::AlwaysTrue, _) | (_, Truth::AlwaysTrue) => Truth::AlwaysTrue,
            (Truth::AlwaysFalse, Truth::AlwaysFalse) => Truth::AlwaysFalse,
            _ => Truth::Unknown,
        }
    }
}

/// A constant-foldable side of a comparison: a literal, by value.
fn as_literal(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

/// A plain column reference (computed expressions are not pruned —
/// their range is not what the column's zone map bounds).
fn as_column(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column(name) => Some(name),
        _ => None,
    }
}

/// Mirror of a `CmpOp` for the flipped comparison `lit op col`
/// rewritten as `col op' lit`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Decide `col op lit` against the column's zone map.
fn cmp_truth(zm: &ZoneMap, op: CmpOp, lit: &Value) -> Truth {
    if lit.is_missing() {
        // eval: a missing operand makes every comparison false.
        return Truth::AlwaysFalse;
    }
    if zm.rows == zm.null_count {
        // No non-missing value in the range; missing rows eval false.
        return Truth::AlwaysFalse;
    }
    let (Some(min), Some(max)) = (&zm.min, &zm.max) else {
        return Truth::Unknown;
    };
    let lo = min.total_cmp(lit);
    let hi = max.total_cmp(lit);
    let refuted = match op {
        CmpOp::Eq => !zm.may_contain(lit),
        // All non-missing values equal `lit` ⟺ min = lit = max.
        CmpOp::Ne => lo == Ordering::Equal && hi == Ordering::Equal,
        CmpOp::Lt => lo != Ordering::Less,
        CmpOp::Le => lo == Ordering::Greater,
        CmpOp::Gt => hi != Ordering::Greater,
        CmpOp::Ge => hi == Ordering::Less,
    };
    if refuted {
        return Truth::AlwaysFalse;
    }
    // Always-true additionally needs every row non-missing (a missing
    // row evals false regardless of the op).
    if zm.null_count == 0 {
        let proven = match op {
            CmpOp::Eq => lo == Ordering::Equal && hi == Ordering::Equal,
            CmpOp::Ne => match &zm.distinct {
                Some(set) => !set.iter().any(|v| v.total_cmp(lit) == Ordering::Equal),
                None => lo == Ordering::Greater || hi == Ordering::Less,
            },
            CmpOp::Lt => hi == Ordering::Less,
            CmpOp::Le => hi != Ordering::Greater,
            CmpOp::Gt => lo == Ordering::Greater,
            CmpOp::Ge => lo != Ordering::Less,
        };
        if proven {
            return Truth::AlwaysTrue;
        }
    }
    Truth::Unknown
}

/// Decide a predicate over a row range from per-column zone maps.
///
/// `stats` returns the statistics of one column over the range under
/// decision, or `None` when unavailable (no map, unreadable map) —
/// which yields [`Truth::Unknown`] for every test of that column.
/// Sound by construction: `AlwaysFalse` is returned only when
/// [`BoundPredicate::eval`] would return false for *every* row any
/// conforming range can hold, so skipping the range changes nothing.
///
/// [`BoundPredicate::eval`]: crate::expr::BoundPredicate::eval
pub fn predicate_truth(pred: &Predicate, stats: &dyn Fn(&str) -> Option<ZoneMap>) -> Truth {
    match pred {
        Predicate::True => Truth::AlwaysTrue,
        Predicate::And(a, b) => predicate_truth(a, stats).and(predicate_truth(b, stats)),
        Predicate::Or(a, b) => predicate_truth(a, stats).or(predicate_truth(b, stats)),
        Predicate::Not(p) => predicate_truth(p, stats).not(),
        Predicate::IsMissing(name) => match stats(name) {
            Some(zm) if zm.null_count == 0 => Truth::AlwaysFalse,
            Some(zm) if zm.null_count == zm.rows => Truth::AlwaysTrue,
            _ => Truth::Unknown,
        },
        Predicate::Cmp { left, op, right } => {
            match (
                as_column(left),
                as_literal(left),
                as_column(right),
                as_literal(right),
            ) {
                // col op lit
                (Some(col), _, _, Some(lit)) => match stats(col) {
                    Some(zm) => cmp_truth(&zm, *op, lit),
                    None => Truth::Unknown,
                },
                // lit op col  ⟶  col flip(op) lit
                (_, Some(lit), Some(col), _) => match stats(col) {
                    Some(zm) => cmp_truth(&zm, flip(*op), lit),
                    None => Truth::Unknown,
                },
                // lit op lit: constant-fold with eval's exact semantics.
                (_, Some(l), _, Some(r)) => {
                    if l.is_missing() || r.is_missing() {
                        return Truth::AlwaysFalse;
                    }
                    let ord = l.total_cmp(r);
                    let holds = match op {
                        CmpOp::Eq => ord == Ordering::Equal,
                        CmpOp::Ne => ord != Ordering::Equal,
                        CmpOp::Lt => ord == Ordering::Less,
                        CmpOp::Le => ord != Ordering::Greater,
                        CmpOp::Gt => ord == Ordering::Greater,
                        CmpOp::Ge => ord != Ordering::Less,
                    };
                    if holds {
                        Truth::AlwaysTrue
                    } else {
                        Truth::AlwaysFalse
                    }
                }
                // Computed expressions / column-vs-column: no pruning.
                _ => Truth::Unknown,
            }
        }
    }
}

/// A [`SegmentPruner`] that refutes morsels from a store's persisted
/// zone maps. Missing or unreadable statistics degrade to "may match"
/// — the scan proceeds unpruned for that morsel.
pub struct ZoneMapPruner<'a, S: TableStore + Sync + ?Sized> {
    store: &'a S,
    predicate: &'a Predicate,
}

impl<'a, S: TableStore + Sync + ?Sized> ZoneMapPruner<'a, S> {
    /// A pruner for `predicate` over `store`.
    pub fn new(store: &'a S, predicate: &'a Predicate) -> Self {
        ZoneMapPruner { store, predicate }
    }
}

impl<S: TableStore + Sync + ?Sized> SegmentPruner for ZoneMapPruner<'_, S> {
    fn may_match(&self, start: usize, len: usize) -> bool {
        let stats = |col: &str| self.store.range_stats(col, start, len);
        predicate_truth(self.predicate, &stats) != Truth::AlwaysFalse
    }
}

/// Map a scalar comparison operator onto its kernel twin (same truth
/// table over a [`Value::total_cmp`] ordering).
fn kernel_op(op: CmpOp) -> KernelCmp {
    match op {
        CmpOp::Eq => KernelCmp::Eq,
        CmpOp::Ne => KernelCmp::Ne,
        CmpOp::Lt => KernelCmp::Lt,
        CmpOp::Le => KernelCmp::Le,
        CmpOp::Gt => KernelCmp::Gt,
        CmpOp::Ge => KernelCmp::Ge,
    }
}

/// Compile a predicate into the executor's batch-kernel IR, with
/// column names mapped to positions in `slots` (the fetched-batch
/// order). `None` when any comparison involves a computed expression,
/// a column-vs-column test, or a literal-vs-literal fold — those keep
/// the row-at-a-time path. The compiled form evaluates to exactly the
/// rows [`BoundPredicate::eval`] selects (same [`Value::total_cmp`]
/// order, same missing-makes-comparisons-false convention).
fn compile_kernel(pred: &Predicate, slots: &[String]) -> Option<KernelPredicate> {
    let slot = |name: &str| slots.iter().position(|n| n == name);
    Some(match pred {
        Predicate::True => KernelPredicate::True,
        Predicate::IsMissing(name) => KernelPredicate::IsMissing(slot(name)?),
        Predicate::And(a, b) => KernelPredicate::And(
            Box::new(compile_kernel(a, slots)?),
            Box::new(compile_kernel(b, slots)?),
        ),
        Predicate::Or(a, b) => KernelPredicate::Or(
            Box::new(compile_kernel(a, slots)?),
            Box::new(compile_kernel(b, slots)?),
        ),
        Predicate::Not(p) => KernelPredicate::Not(Box::new(compile_kernel(p, slots)?)),
        Predicate::Cmp { left, op, right } => {
            match (
                as_column(left),
                as_literal(left),
                as_column(right),
                as_literal(right),
            ) {
                // col op lit
                (Some(col), _, _, Some(lit)) => KernelPredicate::Cmp {
                    col: slot(col)?,
                    op: kernel_op(*op),
                    lit: lit.clone(),
                },
                // lit op col  ⟶  col flip(op) lit
                (_, Some(lit), Some(col), _) => KernelPredicate::Cmp {
                    col: slot(col)?,
                    op: kernel_op(flip(*op)),
                    lit: lit.clone(),
                },
                _ => return None,
            }
        }
    })
}

/// Predicate scan with zone-map pushdown: the row indices satisfying
/// `predicate`, ascending — exactly the indices an unpruned scan
/// returns, at every worker count. Refuted morsels are skipped before
/// any page read; scanned morsels read only the referenced columns,
/// morsel-sized.
///
/// Simple predicates (column-vs-literal comparisons, missing tests,
/// connectives) compile to the executor's vectorized batch kernels:
/// each morsel fetches the referenced columns as typed
/// [`sdbms_columnar::ColumnBatch`]es and evaluates to a selection
/// bitmap with no per-row `Value` materialization. Computed
/// expressions keep the row-at-a-time path. Both paths return
/// identical indices.
pub fn filter_table_rows<S>(
    store: &S,
    predicate: &Predicate,
    cfg: &ExecConfig,
) -> Result<Vec<usize>, DataError>
where
    S: TableStore + Sync + ?Sized,
{
    let schema: &Schema = store.schema();
    let bound = predicate.bind(schema)?;
    // Resolve referenced columns once; rows are assembled sparsely
    // (only referenced positions filled — eval never reads the rest).
    let mut referenced: Vec<(usize, String)> = Vec::new();
    for name in predicate.referenced_columns() {
        referenced.push((schema.require(&name)?, name));
    }
    let width = schema.len();
    let pruner = ZoneMapPruner::new(store, predicate);
    let names: Vec<String> = referenced.iter().map(|(_, n)| n.clone()).collect();
    if let Some(kpred) = compile_kernel(predicate, &names) {
        return sdbms_exec::kernels::filter_batches_pruned(
            store.len(),
            cfg,
            &pruner,
            &kpred,
            |m| {
                names
                    .iter()
                    .map(|n| store.read_column_batch(n, m.start, m.len))
                    .collect::<Result<Vec<_>, DataError>>()
            },
        );
    }
    let chunks = scan_morsels(store.len(), cfg, |m| -> Result<Vec<usize>, DataError> {
        let mut hits = Vec::new();
        if !pruner.may_match(m.start, m.len) {
            return Ok(hits);
        }
        let mut cols: Vec<(usize, Vec<Value>)> = Vec::with_capacity(referenced.len());
        for (ci, name) in &referenced {
            cols.push((*ci, store.read_column_range(name, m.start, m.len)?));
        }
        let mut row = vec![Value::Missing; width];
        for i in 0..m.len {
            for (ci, vals) in &cols {
                row[*ci] = vals[i].clone();
            }
            if bound.eval(&row) {
                hits.push(m.start + i);
            }
        }
        Ok(hits)
    })?;
    Ok(chunks.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zm(values: &[Value]) -> ZoneMap {
        ZoneMap::build(values)
    }

    fn ints(xs: &[i64]) -> Vec<Value> {
        xs.iter().copied().map(Value::Int).collect()
    }

    #[test]
    fn bounds_refute_and_prove_comparisons() {
        let m = zm(&ints(&[10, 20, 30]));
        let stats = |_: &str| Some(m.clone());
        let t = |op, lit: i64| {
            predicate_truth(&Predicate::cmp(Expr::col("X"), op, Expr::lit(lit)), &stats)
        };
        assert_eq!(t(CmpOp::Lt, 10), Truth::AlwaysFalse);
        assert_eq!(t(CmpOp::Lt, 11), Truth::Unknown);
        assert_eq!(t(CmpOp::Lt, 31), Truth::AlwaysTrue);
        assert_eq!(t(CmpOp::Gt, 30), Truth::AlwaysFalse);
        assert_eq!(t(CmpOp::Ge, 10), Truth::AlwaysTrue);
        assert_eq!(t(CmpOp::Le, 9), Truth::AlwaysFalse);
        // Distinct-set membership beats plain bounds for equality.
        assert_eq!(t(CmpOp::Eq, 15), Truth::AlwaysFalse);
        assert_eq!(t(CmpOp::Eq, 20), Truth::Unknown);
        assert_eq!(t(CmpOp::Ne, 15), Truth::AlwaysTrue);
        assert_eq!(t(CmpOp::Ne, 20), Truth::Unknown);
    }

    #[test]
    fn missing_semantics_respected() {
        // All-missing range: every comparison is false.
        let all_missing = zm(&[Value::Missing, Value::Missing]);
        let stats = |_: &str| Some(all_missing.clone());
        let lt = Predicate::cmp(Expr::col("X"), CmpOp::Lt, Expr::lit(100i64));
        assert_eq!(predicate_truth(&lt, &stats), Truth::AlwaysFalse);
        assert_eq!(
            predicate_truth(&Predicate::IsMissing("X".into()), &stats),
            Truth::AlwaysTrue
        );
        // Some missing: Lt can never be AlwaysTrue, refutation still works.
        let some = zm(&[Value::Int(5), Value::Missing]);
        let stats = |_: &str| Some(some.clone());
        assert_eq!(predicate_truth(&lt, &stats), Truth::Unknown);
        assert_eq!(
            predicate_truth(&Predicate::IsMissing("X".into()), &stats),
            Truth::Unknown
        );
        // A missing literal refutes outright (eval returns false).
        let vs_missing = Predicate::cmp(Expr::col("X"), CmpOp::Ne, Expr::lit(Value::Missing));
        assert_eq!(predicate_truth(&vs_missing, &stats), Truth::AlwaysFalse);
    }

    #[test]
    fn connectives_and_flipped_literals() {
        let m = zm(&ints(&[10, 20, 30]));
        let stats = |_: &str| Some(m.clone());
        let lo = Predicate::cmp(Expr::col("X"), CmpOp::Lt, Expr::lit(5i64)); // false
        let hi = Predicate::cmp(Expr::lit(5i64), CmpOp::Gt, Expr::col("X")); // flipped: false
        let mid = Predicate::cmp(Expr::col("X"), CmpOp::Gt, Expr::lit(15i64)); // unknown
        assert_eq!(predicate_truth(&hi, &stats), Truth::AlwaysFalse);
        assert_eq!(
            predicate_truth(&lo.clone().or(hi.clone()), &stats),
            Truth::AlwaysFalse
        );
        assert_eq!(
            predicate_truth(&mid.clone().and(lo.clone()), &stats),
            Truth::AlwaysFalse
        );
        assert_eq!(predicate_truth(&mid.clone().or(lo), &stats), Truth::Unknown);
        assert_eq!(
            predicate_truth(&Predicate::Not(Box::new(hi)), &stats),
            Truth::AlwaysTrue
        );
        assert_eq!(predicate_truth(&Predicate::True, &stats), Truth::AlwaysTrue);
        // Constant fold.
        let konst = Predicate::cmp(Expr::lit(1i64), CmpOp::Lt, Expr::lit(2i64));
        assert_eq!(predicate_truth(&konst, &stats), Truth::AlwaysTrue);
    }

    #[test]
    fn no_stats_and_computed_expressions_never_prune() {
        let none = |_: &str| None;
        let p = Predicate::cmp(Expr::col("X"), CmpOp::Lt, Expr::lit(0i64));
        assert_eq!(predicate_truth(&p, &none), Truth::Unknown);
        let m = zm(&ints(&[1, 2]));
        let stats = |_: &str| Some(m.clone());
        let computed = Predicate::cmp(
            Expr::col("X").binary(crate::expr::BinOp::Add, Expr::lit(1i64)),
            CmpOp::Lt,
            Expr::lit(0i64),
        );
        assert_eq!(predicate_truth(&computed, &stats), Truth::Unknown);
        let col_vs_col = Predicate::cmp(Expr::col("X"), CmpOp::Eq, Expr::col("Y"));
        assert_eq!(predicate_truth(&col_vs_col, &stats), Truth::Unknown);
    }

    proptest::proptest! {
        /// Soundness oracle: whatever `predicate_truth` claims about a
        /// range's zone map must agree with brute-force evaluation on
        /// the range itself.
        #[test]
        fn prop_truth_sound_vs_eval(
            vals in proptest::collection::vec((0u8..4, -20i64..20), 1..120),
            op_i in 0usize..6,
            lit in -25i64..25,
            negate in proptest::prelude::any::<bool>(),
        ) {
            use sdbms_data::{Attribute, DataType};
            let col: Vec<Value> = vals
                .iter()
                .map(|&(k, x)| match k {
                    0 => Value::Missing,
                    1 => Value::Float(x as f64 / 2.0),
                    _ => Value::Int(x),
                })
                .collect();
            let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_i];
            let mut pred = Predicate::cmp(Expr::col("X"), op, Expr::lit(lit));
            if negate {
                pred = Predicate::Not(Box::new(pred));
            }
            let m = zm(&col);
            let truth = predicate_truth(&pred, &|_| Some(m.clone()));
            let schema = Schema::new(vec![Attribute::measured("X", DataType::Float)]).unwrap();
            let bound = pred.bind(&schema).unwrap();
            let matches = col
                .iter()
                .filter(|v| bound.eval(std::slice::from_ref(v)))
                .count();
            match truth {
                Truth::AlwaysFalse => proptest::prop_assert_eq!(matches, 0),
                Truth::AlwaysTrue => proptest::prop_assert_eq!(matches, col.len()),
                Truth::Unknown => {}
            }
        }
    }
}
