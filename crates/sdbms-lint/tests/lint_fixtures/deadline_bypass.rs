//! Known-bad fixture: serving-layer functions that meter I/O without
//! installing a request budget. Expected findings (see ../fixtures.rs):
//!   line 9   deadline-bypass    (IoScope without BudgetScope)
//!   line 24  deadline-bypass    (budget installed in a sibling, not here)
//! The budgeted function and the justified allow must not fire.

/// Meters engine work with no budget in scope: a deadline or a client
/// cancellation can never interrupt anything done here.
pub fn unbudgeted_compute(stats: &Arc<IoStats>) -> Result<Payload> {
    let _scope = IoScope::enter(Arc::clone(stats));
    compute()
}

/// The correct shape: the budget goes in first, then the meter; every
/// morsel and storage retry under this frame observes the token.
pub fn budgeted_compute(job: &Job, stats: &Arc<IoStats>) -> Result<Payload> {
    let _budget = BudgetScope::enter(job.token.clone());
    let _scope = IoScope::enter(Arc::clone(stats));
    compute()
}

/// A budget in a *different* function does not cover this one: the
/// thread-local is installed per entry point, not per module.
pub fn sibling_leak(stats: &Arc<IoStats>) -> Result<Payload> {
    let _scope = IoScope::enter(Arc::clone(stats));
    compute()
}

/// Repair deliberately runs unbounded (half-finished recovery is worse
/// than slow recovery), so its metering carries a justified allow.
// lint: allow(deadline-bypass): repair runs with an unbounded token by design
pub fn repair_pass(stats: &Arc<IoStats>) -> Result<()> {
    let _scope = IoScope::enter(Arc::clone(stats));
    repair()
}
