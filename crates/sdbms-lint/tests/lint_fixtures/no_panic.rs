//! Known-bad fixture: panicking constructs in non-test library code.
//! Expected findings (see ../fixtures.rs):
//!   line 10  no-panic   (.unwrap)
//!   line 15  no-panic   (.expect)
//!   line 20  no-panic   (panic!)
//!   line 25  no-panic   (unreachable!)

/// Unwraps an option.
pub fn uses_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Expects an option.
pub fn uses_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

/// Panics outright.
pub fn uses_panic() {
    panic!("boom");
}

/// Claims unreachability.
pub fn uses_unreachable() {
    unreachable!();
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be reported.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
