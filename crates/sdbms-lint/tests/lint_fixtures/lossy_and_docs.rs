//! Known-bad fixture: lossy casts and undocumented public items.
//! Expected findings (see ../fixtures.rs):
//!   line 10  lossy-cast     (as usize)
//!   line 15  lossy-cast     (as f32)
//!   line 18  missing-docs   (pub fn, no doc comment)
//!   line 21  missing-docs   (pub struct behind a derive, no docs)

/// Truncates a float into a bin index without justification.
pub fn to_index(x: f64) -> usize {
    x as usize
}

/// Narrows precision without justification.
pub fn shrink(x: f64) -> f32 {
    x as f32
}

pub fn undocumented() {}

#[derive(Debug)]
pub struct Undocumented;

/// Widening to f64 is the blessed idiom and must not be flagged.
pub fn widen(n: u64) -> f64 {
    n as f64
}

pub(crate) fn crate_private_needs_no_docs() {}
