//! Known-bad fixture: zero-copy mmap sources constructed outside the
//! sealed-scan seam. Expected findings (see ../fixtures.rs):
//!   line 10  mmap-seam-bypass    (MmapSegmentSource::map)
//!   line 15  mmap-seam-bypass    (MmapSegmentSource::new)
//! The justified allow at the bottom is the sanctioned door and
//! must not fire.

/// Maps a segment directly: nothing flushed, nothing CRC-verified.
pub fn bare_map(pool: &BufferPool, pages: &[PageId]) -> Mapped {
    MmapSegmentSource::map(pool, pages)
}

/// Builds a source by hand, dodging the seal entirely.
pub fn bare_new() -> MmapSegmentSource {
    MmapSegmentSource::new()
}

/// The sanctioned door: the caller's seal flushed the pool and
/// CRC-verified every page before this map call.
pub fn sealed_map(pool: &BufferPool, pages: &[PageId]) -> Mapped {
    // lint: allow(mmap-seam-bypass): pool flushed and pages CRC-verified by seal_for_scan
    MmapSegmentSource::map(pool, pages)
}
