//! Known-bad fixture: an unaudited Relaxed ordering and fault-seam
//! bypasses. Expected findings (see ../fixtures.rs):
//!   line 12  relaxed-ordering
//!   line 17  fault-seam-bypass   (DiskManager)
//!   line 22  fault-seam-bypass   (ArchiveStore)
//!   line 29  unjustified-allow   (directive without reason)
//!   line 30  relaxed-ordering    (not suppressed by the bare allow)

/// Bumps a counter with no ordering audit.
pub fn bump(c: &std::sync::atomic::AtomicU64) {
    use std::sync::atomic::Ordering;
    c.fetch_add(1, Ordering::Relaxed);
}

/// Builds a disk around the injection seam.
pub fn bare_disk(t: Tracker) -> DiskManager {
    DiskManager::new(t)
}

/// Builds an archive around the injection seam.
pub fn bare_archive(t: Tracker) -> ArchiveStore {
    ArchiveStore::new(t)
}

/// A justified allow suppresses; a bare one does not.
pub fn audited(c: &std::sync::atomic::AtomicU64) {
    use std::sync::atomic::Ordering;
    c.load(Ordering::SeqCst);
    // lint: allow(relaxed-ordering)
    c.fetch_add(1, Ordering::Relaxed);
    // lint: allow(relaxed-ordering): independent monotone counter read after join
    c.fetch_add(1, Ordering::Relaxed);
}
