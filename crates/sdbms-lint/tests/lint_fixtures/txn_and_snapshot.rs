//! Known-bad fixture: unordered lock acquisition and in-place store
//! mutation. Expected findings (see ../fixtures.rs):
//!   line 12  txn-lock-order     (acquire_raw in library code)
//!   line 17  snapshot-bypass    (.store.set_cell mutates in place)
//!   line 22  snapshot-bypass    (.store = assignment skips install)

/// Grabs a lock below the session's current maximum — acquire_raw
/// skips the order check that would have caught it.
pub fn sneak_lock(locks: &std::sync::Arc<LockTable>, session: u64) -> LockGuard {
    // The checked path would return OrderViolation here; the raw path
    // silently admits the cycle.
    locks.acquire_raw(session, "aardvark")
}

/// Writes a cell straight through a possibly-pinned store.
pub fn poke(v: &mut ConcreteView) {
    v.store.set_cell(0, 3, Value::Int(9));
}

/// Swaps the store without a version bump or epoch retire.
pub fn swap(v: &mut ConcreteView, s: Arc<dyn TableStore>) {
    v.store = s;
}

/// Reads are fine on a shared store: no findings below this line.
pub fn peek(v: &ConcreteView) -> usize {
    let n = v.store.row_count();
    // A comparison is not an assignment.
    if v.store == v.store { n } else { 0 }
}
