//! The lint corpus: every lint id must fire on its known-bad fixture
//! at the expected `file:line`, the live workspace must pass
//! `--deny-all`, and an unsound registry must be detected by the
//! semantic layer.

use sdbms_lint::source_lints::{lint_file, FileLintSet};
use sdbms_lint::tokenizer::tokenize;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn all_lints() -> FileLintSet {
    FileLintSet {
        no_panic: true,
        relaxed_ordering: true,
        fault_seam: true,
        lossy_cast: true,
        missing_docs: true,
        txn_lock_order: true,
        snapshot_bypass: true,
        mmap_seam: true,
        deadline_bypass: true,
    }
}

/// `(lint id, line)` pairs for one fixture, sorted by line.
fn findings(name: &str) -> Vec<(String, u32)> {
    let src = fixture(name);
    let mut out: Vec<(String, u32)> = lint_file(name, &tokenize(&src), &all_lints())
        .into_iter()
        .map(|d| (d.lint.id.to_string(), d.line))
        .collect();
    out.sort_by_key(|(_, l)| *l);
    out
}

#[test]
fn no_panic_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("no_panic.rs"),
        vec![
            ("no-panic".to_string(), 10),
            ("no-panic".to_string(), 15),
            ("no-panic".to_string(), 20),
            ("no-panic".to_string(), 25),
        ]
    );
}

#[test]
fn relaxed_and_seam_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("relaxed_and_seam.rs"),
        vec![
            ("relaxed-ordering".to_string(), 12),
            ("fault-seam-bypass".to_string(), 17),
            ("fault-seam-bypass".to_string(), 22),
            ("unjustified-allow".to_string(), 29),
            ("relaxed-ordering".to_string(), 30),
        ]
    );
}

#[test]
fn lossy_and_docs_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("lossy_and_docs.rs"),
        vec![
            ("lossy-cast".to_string(), 10),
            ("lossy-cast".to_string(), 15),
            ("missing-docs".to_string(), 18),
            ("missing-docs".to_string(), 21),
        ]
    );
}

#[test]
fn txn_and_snapshot_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("txn_and_snapshot.rs"),
        vec![
            ("txn-lock-order".to_string(), 12),
            ("snapshot-bypass".to_string(), 17),
            ("snapshot-bypass".to_string(), 22),
        ]
    );
}

#[test]
fn mmap_seam_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("mmap_seam.rs"),
        vec![
            ("mmap-seam-bypass".to_string(), 10),
            ("mmap-seam-bypass".to_string(), 15),
        ]
    );
}

#[test]
fn deadline_bypass_fixture_fires_at_expected_lines() {
    assert_eq!(
        findings("deadline_bypass.rs"),
        vec![
            ("deadline-bypass".to_string(), 9),
            ("deadline-bypass".to_string(), 24),
        ]
    );
}

#[test]
fn fixture_headers_agree_with_findings() {
    // Each fixture documents its expected findings in its header;
    // keep the documentation honest by re-deriving it.
    for name in [
        "no_panic.rs",
        "relaxed_and_seam.rs",
        "lossy_and_docs.rs",
        "txn_and_snapshot.rs",
        "mmap_seam.rs",
        "deadline_bypass.rs",
    ] {
        let src = fixture(name);
        for (id, line) in findings(name) {
            let expected = format!("line {line}");
            assert!(
                src.lines()
                    .any(|l| l.contains(&expected) && l.contains(&id)),
                "{name}: header does not document {id} at line {line}"
            );
        }
    }
}

#[test]
fn workspace_passes_deny_all() {
    // The self-check: running the real linter over the real workspace
    // must be clean — everything the lints flag is either fixed or
    // carries a justified inline allow.
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root above crates/sdbms-lint")
        .to_path_buf();
    let found = sdbms_lint::run(&root).expect("workspace lint run");
    assert!(
        found.is_empty(),
        "workspace must pass --deny-all; found:\n{}",
        found
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unsound_repair_ladder_is_detected_at_exact_lines() {
    // Satellite acceptance fixture: every triage-ladder repair action
    // must name its authority source, and a repair that reads from the
    // component it repairs is a finding — anchored at the exact
    // file:line of the offending registration (via #[track_caller]).
    use sdbms_lint::soundness::check_ladder;
    use sdbms_repair::{Authority, Component, RepairAction, RepairLadder};

    let mut ladder = RepairLadder::new();
    let missing_line = line!() + 1;
    let missing = RepairAction::new(Component::ZoneMap, None, "rebuild from nothing");
    ladder.register(missing);
    let self_read_line = line!() + 1;
    let circular = RepairAction::new(Component::SummaryEntry, Some(Authority::SummaryDb), "copy");
    ladder.register(circular);
    // A sound rung: named, non-circular authority. Must not fire.
    let sound = RepairAction::new(Component::WholeView, Some(Authority::Archive), "regenerate");
    ladder.register(sound);

    let found = check_ladder(&ladder);
    assert_eq!(found.len(), 2, "{found:?}");

    assert_eq!(found[0].lint.id, "repair-missing-authority");
    assert_eq!(found[0].file, file!());
    assert_eq!(found[0].line, missing_line);
    assert!(
        found[0].message.contains("zone map"),
        "{}",
        found[0].message
    );

    assert_eq!(found[1].lint.id, "repair-self-read");
    assert_eq!(found[1].file, file!());
    assert_eq!(found[1].line, self_read_line);
    assert!(
        found[1].message.contains("summary entry"),
        "{}",
        found[1].message
    );

    // The standing ladder StatDbms::repair_view walks is sound — the
    // same audit runs inside `sdbms-lint --deny-all` on every CI run.
    assert!(check_ladder(&RepairLadder::standard()).is_empty());
}

#[test]
fn unsound_registry_is_detected() {
    // Register a function as Incremental whose auxiliary state has no
    // merge law (the median window is order-dependent): the soundness
    // checker must report rule-unverified-merge. This is the
    // acceptance fixture from the issue.
    use sdbms_lint::soundness::check_registry;
    use sdbms_summary::{
        FunctionContract, MaintenanceStrategy, StatFunction, SummaryRegistry, ALL_UPDATE_KINDS,
    };

    let mut registry = SummaryRegistry::standing();
    let mut unsound = FunctionContract::new(StatFunction::Median, true);
    for kind in ALL_UPDATE_KINDS {
        unsound = unsound.with(kind, MaintenanceStrategy::IncrementalDelta);
    }
    registry.register(unsound);

    let found = check_registry(&registry);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].lint.id, "rule-unverified-merge");
    assert!(found[0].message.contains("median"), "{}", found[0].message);

    // And with a partial contract, the missing update kinds are named.
    let mut registry = SummaryRegistry::new();
    registry.register(FunctionContract::new(StatFunction::Sum, false).with(
        sdbms_summary::UpdateKind::Insert,
        MaintenanceStrategy::IncrementalDelta,
    ));
    let found = check_registry(&registry);
    let ids: Vec<&str> = found.iter().map(|d| d.lint.id).collect();
    assert_eq!(ids, vec!["rule-missing-strategy", "rule-missing-strategy"]);
}
