//! Fixture tests for the concurrency passes: each rule id must fire on
//! a known-bad fixture at the exact `file:line`, conformant code must
//! stay clean, and reordering two acquisitions must flip the verdict
//! (the refactoring-coverage guarantee of DESIGN.md §14).

use sdbms_lint::analyze_sources;

/// `(rule id, file, line)` triples, sorted.
fn findings(files: &[(&str, &str, &str)]) -> Vec<(String, String, u32)> {
    analyze_sources(files)
        .into_iter()
        .map(|d| (d.lint.id.to_string(), d.file.clone(), d.line))
        .collect()
}

// ---- lock-cycle -----------------------------------------------------

#[test]
fn seeded_three_lock_cycle_across_crates() {
    // alpha: cache → sessions (conformant edge), sessions → admission
    // (rank-violating); beta closes the loop: admission → cache. The
    // SCC {serve-admission, serve-cache, serve-sessions} must be
    // reported on its non-conformant edges, at the acquisition sites.
    let alpha = "\
pub struct A;\n\
impl A {\n\
    pub fn forward(&self) {\n\
        let c = self.cache.lock();\n\
        let s = self.sessions.lock();\n\
        let a = self.admission.lock();\n\
        use_all(c, s, a);\n\
    }\n\
}\n\
fn use_all(_c: G, _s: G, _a: G) {}\n";
    let beta = "\
pub struct B;\n\
impl B {\n\
    pub fn backward(&self) {\n\
        let a = self.admission.lock();\n\
        let c = self.cache.lock();\n\
        touch(a, c);\n\
    }\n\
}\n\
fn touch(_a: G, _c: G) {}\n";
    let got = findings(&[
        ("alpha", "alpha/src/lib.rs", alpha),
        ("beta", "beta/src/lib.rs", beta),
    ]);
    // sessions(32) → admission(31) in alpha and admission(31) →
    // cache(30) in beta are the rank-violating edges of the cycle.
    assert!(
        got.contains(&("lock-cycle".into(), "alpha/src/lib.rs".into(), 6)),
        "{got:?}"
    );
    assert!(
        got.contains(&("lock-cycle".into(), "beta/src/lib.rs".into(), 5)),
        "{got:?}"
    );
    // The conformant cache → sessions edge is not blamed.
    assert!(
        !got.iter()
            .any(|(id, f, l)| id == "lock-cycle" && f == "alpha/src/lib.rs" && *l == 5),
        "{got:?}"
    );
}

#[test]
fn reentrant_acquisition_is_a_self_cycle() {
    let src = "\
pub fn twice(srv: &S) {\n\
    let first = srv.cache.lock();\n\
    let again = srv.cache.lock();\n\
    use_both(first, again);\n\
}\n\
fn use_both(_a: G, _b: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert_eq!(
        got,
        vec![("lock-cycle".into(), "c/src/lib.rs".into(), 3)],
        "{got:?}"
    );
}

#[test]
fn multi_instance_classes_may_nest() {
    // Two different per-view locks (LockTable::acquire) held together
    // are legal — the table orders them internally.
    let src = "\
pub fn both(locks: &T) {\n\
    let a = locks.acquire(s, names_a);\n\
    let b = locks.acquire(s, names_b);\n\
    use_both(a, b);\n\
}\n\
fn use_both(_a: G, _b: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn cycle_through_a_callee_is_interprocedural() {
    // f holds the engine and calls helper, which (transitively) locks
    // the engine again — the effects fixpoint must carry it across the
    // crate boundary.
    let one = "\
pub fn entry(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    deep_helper(&dbms);\n\
}\n";
    let two = "\
pub fn deep_helper(x: &D) {\n\
    inner_most(x);\n\
}\n\
pub fn inner_most(x: &D) {\n\
    let d = x.dbms.lock();\n\
    poke(d);\n\
}\n\
fn poke(_d: G) {}\n";
    let got = findings(&[
        ("one", "one/src/lib.rs", one),
        ("two", "two/src/lib.rs", two),
    ]);
    assert!(
        got.iter()
            .any(|(id, f, l)| id == "lock-cycle" && f == "one/src/lib.rs" && *l == 3),
        "{got:?}"
    );
}

// ---- lock-order-divergence ------------------------------------------

#[test]
fn divergent_order_flagged_without_a_reverse_edge() {
    // serve-sessions (rank 32) held while acquiring serve-cache
    // (rank 30): contradicts the sanctioned hierarchy even though no
    // path acquires them the other way round in this fixture.
    let src = "\
pub fn skewed(srv: &S) {\n\
    let sessions = srv.sessions.lock();\n\
    let cache = srv.cache.lock();\n\
    use_both(sessions, cache);\n\
}\n\
fn use_both(_a: G, _b: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert_eq!(
        got,
        vec![("lock-order-divergence".into(), "c/src/lib.rs".into(), 3)],
        "{got:?}"
    );
}

#[test]
fn reordering_two_acquisitions_flips_the_verdict() {
    // The refactoring-coverage pair: identical function, only the two
    // acquisition lines swapped. Sanctioned order (engine before
    // cache) is clean; the swap is a divergence at the exact line.
    let sanctioned = "\
pub fn refresh(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    let cache = srv.cache.lock();\n\
    fill(dbms, cache);\n\
}\n\
fn fill(_d: G, _c: G) {}\n";
    let swapped = "\
pub fn refresh(srv: &S) {\n\
    let cache = srv.cache.lock();\n\
    let dbms = srv.dbms.lock();\n\
    fill(dbms, cache);\n\
}\n\
fn fill(_d: G, _c: G) {}\n";
    assert!(
        findings(&[("c", "c/src/lib.rs", sanctioned)]).is_empty(),
        "sanctioned engine→cache order must be clean"
    );
    let got = findings(&[("c", "c/src/lib.rs", swapped)]);
    // The swap is a divergence, and taking the engine under the fast
    // cache lock is blocking work — both at the swapped line.
    assert_eq!(
        got,
        vec![
            ("blocking-under-lock".into(), "c/src/lib.rs".into(), 3),
            ("lock-order-divergence".into(), "c/src/lib.rs".into(), 3),
        ],
        "{got:?}"
    );
}

#[test]
fn sanctioned_serving_layer_order_is_pinned() {
    // Regression pin for DESIGN.md §13/§14: the engine is outermost,
    // then the front cache, then the admission/session metrics locks.
    // A refactor that reverses any of these ranks breaks this test.
    use sdbms_lint::locks::rank;
    let engine = rank("engine").expect("engine ranked");
    let cache = rank("serve-cache").expect("cache ranked");
    let admission = rank("serve-admission").expect("admission ranked");
    let sessions = rank("serve-sessions").expect("sessions ranked");
    assert!(engine < cache, "engine must rank before the front cache");
    assert!(cache < admission, "cache must rank before admission");
    assert!(cache < sessions, "cache must rank before sessions");
    // And the analyzer agrees: engine → cache → sessions nested in
    // sanctioned order produces no findings.
    let src = "\
pub fn conformant(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    let cache = srv.cache.lock();\n\
    let sessions = srv.sessions.lock();\n\
    use_all(dbms, cache, sessions);\n\
}\n\
fn use_all(_a: G, _b: G, _c: G) {}\n";
    assert!(findings(&[("c", "c/src/lib.rs", src)]).is_empty());
}

// ---- blocking-under-lock --------------------------------------------

#[test]
fn disk_io_under_fast_lock_direct_and_via_callee() {
    let src = "\
pub fn hot(srv: &S, pid: P, out: &mut Page) {\n\
    let cache = srv.cache.lock();\n\
    srv.disk.read_page(pid, out);\n\
    drop(cache);\n\
}\n\
pub fn indirect(srv: &S, pid: P, out: &mut Page) {\n\
    let sessions = srv.sessions.lock();\n\
    fetch_for(srv, pid, out);\n\
    drop(sessions);\n\
}\n\
fn fetch_for(srv: &S, pid: P, out: &mut Page) {\n\
    srv.disk.read_page(pid, out);\n\
}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(
        got.contains(&("blocking-under-lock".into(), "c/src/lib.rs".into(), 3)),
        "direct disk I/O under serve-cache: {got:?}"
    );
    assert!(
        got.contains(&("blocking-under-lock".into(), "c/src/lib.rs".into(), 8)),
        "disk I/O through fetch_for under serve-sessions: {got:?}"
    );
}

#[test]
fn engine_acquisition_under_fast_lock_is_blocking() {
    // The mechanized epoch_status() hazard: reading engine state while
    // a monitoring lock is held.
    let src = "\
pub fn status(srv: &S) -> u64 {\n\
    let sessions = srv.sessions.lock();\n\
    let dbms = srv.dbms.lock();\n\
    report(sessions, dbms)\n\
}\n\
fn report(_s: G, _d: G) -> u64 { 0 }\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(
        got.iter()
            .any(|(id, _, l)| id == "blocking-under-lock" && *l == 3),
        "{got:?}"
    );
    // It is also a divergence (sessions rank 32 → engine rank 0).
    assert!(
        got.iter()
            .any(|(id, _, l)| id == "lock-order-divergence" && *l == 3),
        "{got:?}"
    );
}

#[test]
fn blocking_after_guard_drop_is_clean() {
    let src = "\
pub fn cold(srv: &S, pid: P, out: &mut Page) {\n\
    let cache = srv.cache.lock();\n\
    let hit = cache.peek(pid);\n\
    drop(cache);\n\
    srv.disk.read_page(pid, out);\n\
    consume(hit);\n\
}\n\
fn consume(_h: H) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn engine_lock_is_not_fast() {
    // Blocking work under the engine lock is the engine's job — only
    // the fast monitoring/queue locks forbid it.
    let src = "\
pub fn commit(srv: &S, pid: P, out: &mut Page) {\n\
    let dbms = srv.dbms.lock();\n\
    srv.disk.read_page(pid, out);\n\
    finishing(dbms);\n\
}\n\
fn finishing(_d: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(got.is_empty(), "{got:?}");
}

// ---- swallowed-error -------------------------------------------------

#[test]
fn discards_under_lock_fire_and_clean_forms_do_not() {
    let src = "\
impl Engine {\n\
    pub fn apply(&self) -> Result<(), E> {\n\
        let dbms = self.dbms.lock();\n\
        let _ = self.flush_side(1);\n\
        self.flush_side(2)?;\n\
        release(dbms);\n\
        Ok(())\n\
    }\n\
    pub fn unlocked(&self) {\n\
        let _ = self.flush_side(3);\n\
    }\n\
    fn flush_side(&self, n: u32) -> Result<(), E> {\n\
        side(n)\n\
    }\n\
}\n\
fn side(_n: u32) -> Result<(), E> { Ok(()) }\n\
fn release(_d: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    // Line 4 discards under the engine lock; line 5 propagates with
    // `?`; line 10 discards with no lock held. Exactly one finding.
    assert_eq!(
        got,
        vec![("swallowed-error".into(), "c/src/lib.rs".into(), 4)],
        "{got:?}"
    );
}

#[test]
fn terminal_ok_and_bare_result_statement_under_lock() {
    let src = "\
impl Engine {\n\
    pub fn apply(&self) {\n\
        let dbms = self.dbms.lock();\n\
        self.flush_side(1).ok();\n\
        self.flush_side(2);\n\
        release(dbms);\n\
    }\n\
    fn flush_side(&self, n: u32) -> Result<(), E> {\n\
        side(n)\n\
    }\n\
}\n\
fn side(_n: u32) -> Result<(), E> { Ok(()) }\n\
fn release(_d: G) {}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(
        got.contains(&("swallowed-error".into(), "c/src/lib.rs".into(), 4)),
        "terminal .ok(): {got:?}"
    );
    assert!(
        got.contains(&("swallowed-error".into(), "c/src/lib.rs".into(), 5)),
        "bare Result statement: {got:?}"
    );
}

#[test]
fn lock_free_helper_discard_bubbles_to_locked_caller() {
    // The discard lives in a helper with no lock of its own; the
    // caller reaches it under the engine lock. Reported at the discard
    // site in the helper's file.
    let helper = "\
pub fn retire_intent(w: &W) {\n\
    let _ = w.flush_intent();\n\
}\n";
    let caller = "\
pub fn commit(srv: &S, w: &W) {\n\
    let dbms = srv.dbms.lock();\n\
    retire_intent(w);\n\
    seal(dbms);\n\
}\n\
fn seal(_d: G) {}\n\
impl W {\n\
    pub fn flush_intent(&self) -> Result<(), E> {\n\
        Ok(())\n\
    }\n\
}\n";
    let got = findings(&[
        ("helper", "helper/src/lib.rs", helper),
        ("caller", "caller/src/lib.rs", caller),
    ]);
    assert_eq!(
        got,
        vec![("swallowed-error".into(), "helper/src/lib.rs".into(), 2)],
        "{got:?}"
    );
}

#[test]
fn justified_allow_suppresses_a_concurrency_finding() {
    let flagged = "\
pub fn apply(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    let _ = srv.side_step();\n\
    release(dbms);\n\
}\n\
fn release(_d: G) {}\n\
impl S {\n\
    pub fn side_step(&self) -> Result<(), E> { Ok(()) }\n\
}\n";
    let allowed = "\
pub fn apply(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    // lint: allow(swallowed-error): rollback is best-effort here\n\
    let _ = srv.side_step();\n\
    release(dbms);\n\
}\n\
fn release(_d: G) {}\n\
impl S {\n\
    pub fn side_step(&self) -> Result<(), E> { Ok(()) }\n\
}\n";
    assert_eq!(
        findings(&[("c", "c/src/lib.rs", flagged)]).len(),
        1,
        "unsuppressed fixture must fire"
    );
    assert!(
        findings(&[("c", "c/src/lib.rs", allowed)]).is_empty(),
        "justified inline allow must suppress"
    );
}

#[test]
fn deferred_closures_do_not_inherit_the_held_set() {
    // Work handed to `retire(…)` runs outside the caller's locks; a
    // discard inside the closure must not be attributed to this path.
    let src = "\
pub fn swap(srv: &S) {\n\
    let dbms = srv.dbms.lock();\n\
    srv.epochs.retire(move || {\n\
        let _ = srv.old_store_drop();\n\
    });\n\
    release(dbms);\n\
}\n\
fn release(_d: G) {}\n\
impl S {\n\
    pub fn old_store_drop(&self) -> Result<(), E> { Ok(()) }\n\
}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn test_code_is_exempt() {
    let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn helper(srv: &S) {\n\
        let sessions = srv.sessions.lock();\n\
        let cache = srv.cache.lock();\n\
        use_both(sessions, cache);\n\
    }\n\
}\n";
    let got = findings(&[("c", "c/src/lib.rs", src)]);
    assert!(got.is_empty(), "{got:?}");
}
