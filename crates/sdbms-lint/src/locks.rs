//! The global lock-order analysis (Layer 1.5, pass 1 + 2).
//!
//! Every mutex in the workspace is mapped to a *lock class* — the
//! engine `Mutex<StatDbms>` is `engine`, the serving layer's front
//! cache is `serve-cache`, the buffer pool's table lock is
//! `pool-state`, and so on ([`classify`]). A held-lock walk over every
//! function ([`walk_program`]) then records an edge `A → B` whenever
//! `B` is acquired (directly, or anywhere inside a callee, via the
//! [`crate::callgraph::Effects`] summaries) while `A` is held. The
//! resulting global order graph is checked against the *sanctioned
//! hierarchy* ([`SANCTIONED`], documented in DESIGN.md §14):
//!
//! - `lock-cycle` — the graph has a cycle (two locks each held while
//!   the other is acquired, or a longer loop, or the degenerate
//!   re-entrant acquisition of a non-reentrant class).
//! - `lock-order-divergence` — an edge contradicts the sanctioned
//!   ranks: some path acquires the pair in the opposite of the
//!   blessed order, even if no reverse edge exists *yet*.
//! - `blocking-under-lock` — a blocking operation (disk or tape I/O,
//!   an engine-lock acquisition, a channel wait) is reachable while a
//!   *fast* lock ([`FAST_LOCKS`]) is held: exactly the monitoring-
//!   deadlock shape `Server::epoch_status()` was split from
//!   `metrics()` to avoid.
//!
//! Multi-instance classes (`view-lock`, `epoch-pin`, `pool-frame`)
//! are exempt from the re-entrancy rule — acquiring two *different*
//! per-view locks or pinning two frames is legal; the `LockTable`
//! enforces its own ascending-name order internally.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{blocking_kind, Effects, Program};
use crate::diagnostics::{Diagnostic, BLOCKING_UNDER_LOCK, LOCK_CYCLE, LOCK_ORDER_DIVERGENCE};
use crate::syntax::{Block, Call, FnDef, Node};

/// The sanctioned lock hierarchy, outermost (acquired first) to
/// innermost. An edge `A → B` is conformant iff `rank(A) < rank(B)`.
/// Mirrors the lock-hierarchy diagram in DESIGN.md §14; the
/// `engine → serve-cache → serve-admission/serve-sessions` prefix is
/// the PR-7 serving-layer ordering pinned by regression test.
pub const SANCTIONED: &[(&str, u32)] = &[
    ("engine", 0),
    ("view-lock", 10),
    ("wal-intent", 20),
    ("serve-cache", 30),
    ("serve-admission", 31),
    ("serve-sessions", 32),
    ("serve-commit-log", 33),
    ("serve-queue-tx", 34),
    ("serve-queue-rx", 35),
    ("serve-workers", 36),
    ("snapshot-memo", 40),
    ("txn-lock-table", 50),
    ("epoch-pin", 55),
    ("txn-epoch", 60),
    ("archive-reels", 70),
    ("heap-state", 72),
    ("btree-state", 74),
    ("pool-state", 80),
    ("pool-frame", 82),
    ("disk-inner", 90),
    ("fault-inner", 95),
];

/// Classes that name many instances (one lock per view / frame / pin):
/// holding two at once is legal, so the re-entrancy rule skips them.
pub const MULTI_INSTANCE: &[&str] = &["view-lock", "epoch-pin", "pool-frame"];

/// Fast locks: held for pointer-chasing moments only, never across
/// blocking work. A blocking operation reachable under one of these is
/// a `blocking-under-lock` finding.
pub const FAST_LOCKS: &[&str] = &[
    "serve-cache",
    "serve-admission",
    "serve-sessions",
    "serve-commit-log",
    "serve-queue-tx",
    "serve-queue-rx",
    "serve-workers",
    "snapshot-memo",
    "txn-lock-table",
    "txn-epoch",
];

/// The sanctioned rank of a class, if it is in the hierarchy.
#[must_use]
pub fn rank(class: &str) -> Option<u32> {
    SANCTIONED
        .iter()
        .find(|(c, _)| *c == class)
        .map(|(_, r)| *r)
}

/// Map a raw acquisition tag from [`crate::syntax`] (`recv:<field>`,
/// or an already-final class like `view-lock`) to its lock class.
/// Unknown fields get a stable per-field generic class so they still
/// participate in the graph, just unranked.
#[must_use]
pub fn classify(raw: &str, file: &str) -> String {
    let Some(recv) = raw.strip_prefix("recv:") else {
        return raw.to_string();
    };
    let stem = file
        .rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".rs");
    let known = match recv {
        "dbms" => Some("engine"),
        "cache" => Some("serve-cache"),
        "admission" => Some("serve-admission"),
        "sessions" => Some("serve-sessions"),
        "commit_log" => Some("serve-commit-log"),
        "tx" => Some("serve-queue-tx"),
        "rx" => Some("serve-queue-rx"),
        "workers" => Some("serve-workers"),
        "memo" => Some("snapshot-memo"),
        "reels" => Some("archive-reels"),
        "frames" => Some("pool-frame"),
        "state" => match stem {
            "buffer" => Some("pool-state"),
            "heap" => Some("heap-state"),
            "btree" => Some("btree-state"),
            _ => None,
        },
        "inner" => match stem {
            "lock" => Some("txn-lock-table"),
            "epoch" => Some("txn-epoch"),
            "disk" => Some("disk-inner"),
            "fault" => Some("fault-inner"),
            _ => None,
        },
        _ => None,
    };
    known.map_or_else(|| format!("mutex:{stem}.{recv}"), str::to_string)
}

/// One lock held at a point in the walk.
#[derive(Debug, Clone)]
pub struct Held {
    /// Lock class.
    pub class: String,
    /// Block-scoped (survives to end of block) vs statement-temporary.
    pub bound: bool,
    /// The `let` binding name, for `drop(name)` releases.
    pub name: Option<String>,
    /// Acquisition line.
    pub line: u32,
}

/// One event surfaced by the held-lock walk.
pub enum Event<'a> {
    /// A lock acquisition under the current held set.
    Acquire {
        /// Function being walked.
        f: &'a FnDef,
        /// Classified lock class being acquired.
        class: String,
        /// Acquisition line.
        line: u32,
        /// Locks held at this point (acquisition not yet included).
        held: &'a [Held],
    },
    /// A call under the current held set.
    Call {
        /// Function being walked.
        f: &'a FnDef,
        /// The call.
        call: &'a Call,
        /// Locks held at this point.
        held: &'a [Held],
    },
    /// A `Result` discard under the current held set.
    Discard {
        /// Function being walked.
        f: &'a FnDef,
        /// Discard line.
        line: u32,
        /// What was discarded (`abort_batch`, `.ok()`, …).
        desc: String,
        /// Locks held at this point.
        held: &'a [Held],
    },
}

/// Walk every non-test library function, tracking held-lock sets per
/// the guard-lifetime model in [`crate::syntax`], and surface events.
pub fn walk_program<F: for<'e> FnMut(Event<'e>)>(prog: &Program, visit: &mut F) {
    for f in &prog.fns {
        if f.is_test {
            continue;
        }
        let mut held: Vec<Held> = Vec::new();
        walk_block(prog, f, &f.body, &mut held, visit);
    }
}

fn walk_block<F: for<'e> FnMut(Event<'e>)>(
    prog: &Program,
    f: &FnDef,
    block: &Block,
    held: &mut Vec<Held>,
    visit: &mut F,
) {
    let base = held.len();
    for stmt in &block.stmts {
        let stmt_base = held.len();
        for node in &stmt.nodes {
            match node {
                Node::Acquire(a) => {
                    let class = classify(&a.class, &f.file);
                    visit(Event::Acquire {
                        f,
                        class: class.clone(),
                        line: a.line,
                        held,
                    });
                    held.push(Held {
                        class,
                        bound: a.bound,
                        name: if a.bound { stmt.binds.clone() } else { None },
                        line: a.line,
                    });
                }
                Node::Call(c) => visit(Event::Call { f, call: c, held }),
                Node::DropGuard(name) => {
                    if let Some(pos) = held
                        .iter()
                        .rposition(|h| h.name.as_deref() == Some(name.as_str()))
                    {
                        held.remove(pos);
                    }
                }
                Node::OkDiscard { line } => {
                    // `x.ok();` as a whole statement is a discard; a
                    // bound `.ok()` value is a use.
                    if stmt.binds.is_none() && !stmt.has_assign {
                        visit(Event::Discard {
                            f,
                            line: *line,
                            desc: "terminal `.ok()`".to_string(),
                            held,
                        });
                    }
                }
                Node::Block(b) => walk_block(prog, f, b, held, visit),
            }
        }
        // `let _ = fallible(…)` / bare `fallible(…);` discards.
        if let Some((line, desc)) = stmt_discard(prog, f, stmt) {
            visit(Event::Discard {
                f,
                line,
                desc,
                held,
            });
        }
        // Statement temporaries die here; bound guards live on.
        let mut idx = held.len();
        while idx > stmt_base {
            idx -= 1;
            if !held[idx].bound {
                held.remove(idx);
            }
        }
    }
    held.truncate(base);
}

/// If `stmt` discards a `Result`, the `(line, description)` of the
/// discard. `?` anywhere in the statement propagates instead.
fn stmt_discard(prog: &Program, f: &FnDef, stmt: &crate::syntax::Stmt) -> Option<(u32, String)> {
    if stmt.has_question {
        return None;
    }
    let top_calls: Vec<&Call> = stmt
        .nodes
        .iter()
        .filter_map(|n| match n {
            Node::Call(c) => Some(c),
            _ => None,
        })
        .collect();
    let fallible = |c: &Call| {
        prog.resolve(c, f)
            .iter()
            .any(|&j| prog.fns[j].returns_result)
    };
    if stmt.let_underscore {
        if let Some(c) = top_calls.iter().find(|c| fallible(c)) {
            return Some((
                stmt.line,
                format!("`let _ = …{}(…)` discards a Result", c.name),
            ));
        }
        return None;
    }
    // A bare `fallible(…);` statement (value unused, no `?`, no
    // binding): the trailing call decides. `return f();` hands the
    // value to the caller — not a discard.
    if !stmt.is_let && !stmt.starts_return && !stmt.has_assign && stmt.ends_semi {
        if let Some(Node::Call(c)) = stmt.nodes.last() {
            if fallible(c) {
                return Some((
                    c.line,
                    format!("bare `{}(…);` statement discards a Result", c.name),
                ));
            }
        }
    }
    None
}

/// Compute one function's *local* effects (no propagation): acquires,
/// direct blocking operations, and discard sites on lock-free local
/// paths (a caller holding a lock turns those into findings).
#[must_use]
pub fn local_effects(prog: &Program, f: &FnDef) -> Effects {
    let mut eff = Effects::default();
    let mut held: Vec<Held> = Vec::new();
    walk_block(prog, f, &f.body, &mut held, &mut |ev| match ev {
        Event::Acquire { class, .. } => {
            if class == "engine" {
                eff.blocking
                    .insert("an engine-lock acquisition".to_string());
            }
            eff.acquires.insert(class);
        }
        Event::Call { call, .. } => {
            if let Some(kind) = blocking_kind(&call.name) {
                eff.blocking.insert(kind.to_string());
            }
        }
        Event::Discard {
            line, desc, held, ..
        } => {
            if held.is_empty() {
                eff.discards.insert((f.file.clone(), line, desc));
            }
        }
    });
    eff
}

/// An order-graph edge's first witness site.
struct EdgeSite {
    file: String,
    line: u32,
    via: Option<String>,
}

/// Run the lock-order and blocking-under-lock passes over a resolved
/// program.
#[must_use]
pub fn check(prog: &Program) -> Vec<Diagnostic> {
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    let mut blocking: BTreeMap<(String, u32, String), Diagnostic> = BTreeMap::new();

    let record = |edges: &mut BTreeMap<(String, String), EdgeSite>,
                  from: &str,
                  to: &str,
                  f: &FnDef,
                  line: u32,
                  via: Option<&str>| {
        if from == to && MULTI_INSTANCE.contains(&from) {
            return;
        }
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| EdgeSite {
                file: f.file.clone(),
                line,
                via: via.map(str::to_string),
            });
    };

    walk_program(prog, &mut |ev| match ev {
        Event::Acquire {
            f,
            class,
            line,
            held,
        } => {
            for h in held {
                record(&mut edges, &h.class, &class, f, line, None);
            }
            // Acquiring the engine lock is itself blocking work — a
            // contended engine stalls whoever holds a fast lock here.
            if class == "engine" {
                if let Some(fast) = held.iter().find(|h| FAST_LOCKS.contains(&h.class.as_str())) {
                    let held_classes: Vec<String> = held.iter().map(|h| h.class.clone()).collect();
                    blocking
                        .entry((f.file.clone(), line, "engine-direct".to_string()))
                        .or_insert_with(|| {
                            Diagnostic::new(
                                BLOCKING_UNDER_LOCK,
                                &f.file,
                                line,
                                format!(
                                    "acquiring the engine lock while the fast lock `{}` (line {}) is held",
                                    fast.class, fast.line
                                ),
                            )
                            .with_held(held_classes)
                        });
                }
            }
        }
        Event::Call { f, call, held } => {
            if held.is_empty() {
                return;
            }
            let held_classes: Vec<String> = held.iter().map(|h| h.class.clone()).collect();
            // Direct blocking operations.
            if let Some(kind) = blocking_kind(&call.name) {
                if let Some(fast) = held.iter().find(|h| FAST_LOCKS.contains(&h.class.as_str())) {
                    blocking
                        .entry((f.file.clone(), call.line, call.name.clone()))
                        .or_insert_with(|| {
                            Diagnostic::new(
                                BLOCKING_UNDER_LOCK,
                                &f.file,
                                call.line,
                                format!(
                                    "`.{}()` is {kind} while the fast lock `{}` (line {}) is held",
                                    call.name, fast.class, fast.line
                                ),
                            )
                            .with_held(held_classes.clone())
                        });
                }
            }
            // Effects reachable through the callee.
            for j in prog.resolve(call, f) {
                for acquired in &prog.effects[j].acquires {
                    for h in held {
                        record(
                            &mut edges,
                            &h.class,
                            acquired,
                            f,
                            call.line,
                            Some(&call.name),
                        );
                    }
                }
                for kind in &prog.effects[j].blocking {
                    if let Some(fast) = held.iter().find(|h| FAST_LOCKS.contains(&h.class.as_str()))
                    {
                        blocking
                            .entry((f.file.clone(), call.line, kind.clone()))
                            .or_insert_with(|| {
                                Diagnostic::new(
                                    BLOCKING_UNDER_LOCK,
                                    &f.file,
                                    call.line,
                                    format!(
                                        "{kind} is reachable through `{}()` while the fast lock `{}` (line {}) is held",
                                        call.name, fast.class, fast.line
                                    ),
                                )
                                .with_held(held_classes.clone())
                            });
                    }
                }
            }
        }
        Event::Discard { .. } => {}
    });

    let mut out: Vec<Diagnostic> = blocking.into_values().collect();
    out.extend(order_graph_findings(&edges));
    out
}

/// Turn the recorded edge set into `lock-cycle` /
/// `lock-order-divergence` findings.
fn order_graph_findings(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nodes: BTreeSet<&str> = edges
        .keys()
        .flat_map(|(a, b)| [a.as_str(), b.as_str()])
        .collect();
    let sccs = strongly_connected(&nodes, edges);
    let in_cycle = |a: &str, b: &str| {
        sccs.iter()
            .any(|scc| scc.len() >= 2 && scc.contains(a) && scc.contains(b))
    };
    let conformant =
        |a: &str, b: &str| matches!((rank(a), rank(b)), (Some(ra), Some(rb)) if ra < rb);

    for ((from, to), site) in edges {
        let via = site
            .via
            .as_ref()
            .map(|v| format!(" (through `{v}()`)"))
            .unwrap_or_default();
        if from == to {
            out.push(
                Diagnostic::new(
                    LOCK_CYCLE,
                    &site.file,
                    site.line,
                    format!(
                        "re-entrant acquisition of `{from}`{via}: parking_lot mutexes are not \
                         re-entrant, this self-deadlocks"
                    ),
                )
                .with_held(vec![from.clone()]),
            );
        } else if in_cycle(from, to) && !conformant(from, to) {
            let cycle: Vec<&str> = sccs
                .iter()
                .find(|scc| scc.contains(from.as_str()))
                .map(|scc| scc.iter().copied().collect())
                .unwrap_or_default();
            out.push(
                Diagnostic::new(
                    LOCK_CYCLE,
                    &site.file,
                    site.line,
                    format!(
                        "acquiring `{to}` while holding `{from}`{via} closes a lock-order cycle \
                         among {{{}}}; another thread can hold them in the sanctioned order and \
                         deadlock",
                        cycle.join(", ")
                    ),
                )
                .with_held(vec![from.clone()]),
            );
        } else if !in_cycle(from, to) {
            if let (Some(ra), Some(rb)) = (rank(from), rank(to)) {
                if ra > rb {
                    out.push(
                        Diagnostic::new(
                            LOCK_ORDER_DIVERGENCE,
                            &site.file,
                            site.line,
                            format!(
                                "acquires `{to}` while holding `{from}`{via}, but the sanctioned \
                                 hierarchy (DESIGN.md \u{a7}14) orders `{to}` (rank {rb}) before \
                                 `{from}` (rank {ra})"
                            ),
                        )
                        .with_held(vec![from.clone()]),
                    );
                }
            }
        }
    }
    out
}

/// Strongly connected components of the class graph (Tarjan, sized for
/// a few dozen nodes).
fn strongly_connected<'a>(
    nodes: &BTreeSet<&'a str>,
    edges: &'a BTreeMap<(String, String), EdgeSite>,
) -> Vec<BTreeSet<&'a str>> {
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let n = names.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges.keys() {
        if a != b {
            succ[index_of[a.as_str()]].push(index_of[b.as_str()]);
        }
    }
    let mut sccs = Vec::new();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;

    // Iterative Tarjan with an explicit work stack.
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pi)) = work.last_mut() {
            if *pi == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pi) {
                *pi += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            work.pop();
            if let Some(&(parent, _)) = work.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut scc = BTreeSet::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    scc.insert(names[w]);
                    if w == v {
                        break;
                    }
                }
                sccs.push(scc);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_known_fields() {
        assert_eq!(
            classify("recv:dbms", "crates/sdbms-serve/src/server.rs"),
            "engine"
        );
        assert_eq!(
            classify("recv:state", "crates/sdbms-storage/src/buffer.rs"),
            "pool-state"
        );
        assert_eq!(
            classify("recv:state", "crates/sdbms-storage/src/heap.rs"),
            "heap-state"
        );
        assert_eq!(
            classify("recv:inner", "crates/sdbms-txn/src/lock.rs"),
            "txn-lock-table"
        );
        assert_eq!(
            classify("recv:inner", "crates/sdbms-txn/src/epoch.rs"),
            "txn-epoch"
        );
        assert_eq!(classify("view-lock", "x.rs"), "view-lock");
        assert_eq!(
            classify("recv:oddball", "crates/x/src/y.rs"),
            "mutex:y.oddball"
        );
    }

    #[test]
    fn sanctioned_ranks_are_strictly_increasing_and_unique() {
        let mut seen = BTreeSet::new();
        for (c, r) in SANCTIONED {
            assert!(seen.insert(*r), "duplicate rank {r} for {c}");
        }
    }

    #[test]
    fn engine_before_cache_before_metrics_locks() {
        // The DESIGN.md §13/§14 serving-layer order, pinned: the engine
        // is outermost, then the front cache, then the admission and
        // session ("metrics") locks.
        let engine = rank("engine").unwrap();
        let cache = rank("serve-cache").unwrap();
        let admission = rank("serve-admission").unwrap();
        let sessions = rank("serve-sessions").unwrap();
        assert!(engine < cache);
        assert!(cache < admission);
        assert!(cache < sessions);
    }

    #[test]
    fn fast_locks_never_rank_above_slow_storage() {
        for fast in FAST_LOCKS {
            assert!(rank(fast).is_some(), "{fast} must be ranked");
        }
        assert!(!FAST_LOCKS.contains(&"engine"));
        assert!(!FAST_LOCKS.contains(&"pool-state"));
    }
}
