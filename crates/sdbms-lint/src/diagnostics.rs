//! Structured lint diagnostics.
//!
//! Every finding — from the token-level source lints and from the
//! semantic rule-soundness checker alike — is a [`Diagnostic`]:
//! a lint id from the fixed catalogue below, a `file:line` anchor, and
//! a human-readable message. The driver sorts, prints, and turns them
//! into an exit code under `--deny-all` / `--allow <id>`.

use std::fmt;

/// A lint in the catalogue: id, default severity, one-line description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable kebab-case id (`no-panic`, `rule-missing-strategy`, …).
    pub id: &'static str,
    /// What the lint enforces.
    pub description: &'static str,
}

/// `no-panic`: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test library code.
pub const NO_PANIC: Lint = Lint {
    id: "no-panic",
    description: "library code must not contain unwrap/expect/panic!/unreachable!/todo!/unimplemented! outside tests",
};

/// `relaxed-ordering`: every `Ordering::Relaxed` must sit in the
/// audited inline allowlist.
pub const RELAXED_ORDERING: Lint = Lint {
    id: "relaxed-ordering",
    description:
        "Ordering::Relaxed on atomics requires an audited inline allow with a justification",
};

/// `fault-seam-bypass`: storage devices must be built through the
/// fault-injection seam, not with bare constructors.
pub const FAULT_SEAM_BYPASS: Lint = Lint {
    id: "fault-seam-bypass",
    description: "DiskManager::new / ArchiveStore::new bypass the fault-injection seam; use the with_faults constructors (or the StorageHierarchy builder)",
};

/// `lossy-cast`: no narrowing `as` casts in `sdbms-stats` kernels.
pub const LOSSY_CAST: Lint = Lint {
    id: "lossy-cast",
    description: "potentially lossy `as` cast in a statistical kernel; use From/TryFrom or an allowed truncation with justification",
};

/// `missing-docs`: every plain-`pub` item of the core crates carries a
/// doc comment.
pub const MISSING_DOCS: Lint = Lint {
    id: "missing-docs",
    description: "public item without a doc comment",
};

/// `unjustified-allow`: an inline `lint: allow(...)` without a reason.
pub const UNJUSTIFIED_ALLOW: Lint = Lint {
    id: "unjustified-allow",
    description: "inline lint allow directive carries no justification",
};

/// `txn-lock-order`: library code outside `sdbms-txn` must acquire
/// view locks through `LockTable::acquire` (which enforces ascending
/// acquisition order), never the unchecked `acquire_raw` primitive.
pub const TXN_LOCK_ORDER: Lint = Lint {
    id: "txn-lock-order",
    description: "acquire_raw skips the ordered-acquisition check; call LockTable::acquire so the deadlock-avoidance discipline holds",
};

/// `snapshot-bypass`: core code must not mutate a view's table store
/// in place — every mutation goes through `store_mut()` (copy-on-write
/// when readers are pinned) or `install_store` (the version swap), so
/// pinned snapshots stay immutable.
pub const SNAPSHOT_BYPASS: Lint = Lint {
    id: "snapshot-bypass",
    description: "direct mutation of a view's store bypasses snapshot isolation; route through store_mut()/install_store",
};

/// `mmap-seam-bypass`: library code outside `sdbms-columnar` must not
/// construct or map an `MmapSegmentSource` directly — zero-copy reads
/// are sealed through `TableStore::seal_for_scan`, which flushes the
/// buffer pool and CRC-verifies every page before a byte is served.
pub const MMAP_SEAM_BYPASS: Lint = Lint {
    id: "mmap-seam-bypass",
    description: "MmapSegmentSource constructed outside the sealed-scan seam; route through TableStore::seal_for_scan",
};

/// `rule-missing-strategy`: a `(function, update-kind)` pair in the
/// summary registry has no declared maintenance strategy.
pub const RULE_MISSING_STRATEGY: Lint = Lint {
    id: "rule-missing-strategy",
    description: "summary function declares no maintenance strategy for an update kind",
};

/// `rule-unverified-merge`: a function declared incremental whose
/// accumulator has no verified merge law.
pub const RULE_UNVERIFIED_MERGE: Lint = Lint {
    id: "rule-unverified-merge",
    description: "function declared Incremental but its auxiliary state has no verified merge law",
};

/// `rule-dangling-input`: a derived-attribute rule references a column
/// that is neither a base column nor a ruled derived attribute.
pub const RULE_DANGLING_INPUT: Lint = Lint {
    id: "rule-dangling-input",
    description: "derived-attribute rule references a column with no rule and no base definition",
};

/// `repair-missing-authority`: a triage-ladder repair action that does
/// not name the authority source it reads its replacement data from.
pub const REPAIR_MISSING_AUTHORITY: Lint = Lint {
    id: "repair-missing-authority",
    description: "triage-ladder repair action names no authority source for its replacement data",
};

/// `repair-self-read`: a triage-ladder repair action whose declared
/// authority is the component it repairs — a circular read that can
/// launder corrupt bytes back into the "repaired" state.
pub const REPAIR_SELF_READ: Lint = Lint {
    id: "repair-self-read",
    description:
        "triage-ladder repair action reads from the component it repairs (circular authority)",
};

/// `lock-cycle`: the global lock-order graph (every acquisition edge
/// "A held while acquiring B", propagated through the call graph)
/// contains a cycle — including the degenerate self-cycle of
/// re-acquiring a non-reentrant mutex class already held.
pub const LOCK_CYCLE: Lint = Lint {
    id: "lock-cycle",
    description:
        "lock acquisition closes a cycle in the global lock-order graph (potential deadlock)",
};

/// `lock-order-divergence`: an acquisition edge that contradicts the
/// sanctioned lock hierarchy (DESIGN.md §14) — two paths acquire the
/// same pair of locks in opposite orders.
pub const LOCK_ORDER_DIVERGENCE: Lint = Lint {
    id: "lock-order-divergence",
    description:
        "locks acquired in an order that contradicts the sanctioned hierarchy (DESIGN.md \u{a7}14)",
};

/// `blocking-under-lock`: disk I/O, an engine-lock acquisition, or an
/// unbounded channel wait reachable while a fast lock (cache,
/// admission, sessions, queue, epoch registry, …) is held.
pub const BLOCKING_UNDER_LOCK: Lint = Lint {
    id: "blocking-under-lock",
    description:
        "blocking operation (disk I/O, engine lock, channel wait) reachable while holding a fast lock",
};

/// `swallowed-error`: a `let _ =` / terminal `.ok()` / bare-statement
/// discard of a `Result` on a path that holds a lock or a WAL intent.
pub const SWALLOWED_ERROR: Lint = Lint {
    id: "swallowed-error",
    description:
        "Result discarded (let _ = / .ok() / bare call) on a path holding a lock or WAL intent",
};

/// `deadline-bypass`: a serving-layer function meters I/O (enters an
/// `IoScope`) without first installing a request budget
/// (`BudgetScope::enter`), so work on that path cannot observe its
/// deadline or a client cancellation (DESIGN.md \u{a7}16).
pub const DEADLINE_BYPASS: Lint = Lint {
    id: "deadline-bypass",
    description:
        "serving-layer fn enters an IoScope without a BudgetScope: work there cannot be cancelled",
};

/// The full catalogue, for `--list` and id validation.
pub const ALL_LINTS: &[Lint] = &[
    NO_PANIC,
    RELAXED_ORDERING,
    FAULT_SEAM_BYPASS,
    LOSSY_CAST,
    MISSING_DOCS,
    UNJUSTIFIED_ALLOW,
    TXN_LOCK_ORDER,
    SNAPSHOT_BYPASS,
    MMAP_SEAM_BYPASS,
    LOCK_CYCLE,
    LOCK_ORDER_DIVERGENCE,
    BLOCKING_UNDER_LOCK,
    SWALLOWED_ERROR,
    RULE_MISSING_STRATEGY,
    RULE_UNVERIFIED_MERGE,
    RULE_DANGLING_INPUT,
    REPAIR_MISSING_AUTHORITY,
    REPAIR_SELF_READ,
    DEADLINE_BYPASS,
];

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Repo-relative file path, or a pseudo-path such as
    /// `<summary-registry>` for semantic findings.
    pub file: String,
    /// 1-based line (0 for semantic findings with no source anchor).
    pub line: u32,
    /// Human-readable description of this particular finding.
    pub message: String,
    /// Lock classes held at the finding site (concurrency passes only;
    /// empty for token and soundness lints).
    pub held: Vec<String>,
}

impl Diagnostic {
    /// Build a finding.
    #[must_use]
    pub fn new(lint: Lint, file: &str, line: u32, message: String) -> Self {
        Diagnostic {
            lint,
            file: file.to_string(),
            line,
            message,
            held: Vec::new(),
        }
    }

    /// Attach the held-lock context recorded at the finding site.
    #[must_use]
    pub fn with_held(mut self, held: Vec<String>) -> Self {
        self.held = held;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: deny[{}]: {}",
            self.file, self.line, self.lint.id, self.message
        )?;
        if !self.held.is_empty() {
            write!(f, " [held: {}]", self.held.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique() {
        let mut ids: Vec<&str> = ALL_LINTS.iter().map(|l| l.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_LINTS.len());
    }

    #[test]
    fn display_has_file_line_and_id() {
        let d = Diagnostic::new(NO_PANIC, "src/x.rs", 7, "found unwrap".into());
        assert_eq!(d.to_string(), "src/x.rs:7: deny[no-panic]: found unwrap");
    }

    #[test]
    fn display_appends_held_context() {
        let d = Diagnostic::new(BLOCKING_UNDER_LOCK, "src/x.rs", 9, "disk I/O".into())
            .with_held(vec!["serve-cache".into()]);
        assert_eq!(
            d.to_string(),
            "src/x.rs:9: deny[blocking-under-lock]: disk I/O [held: serve-cache]"
        );
    }
}
