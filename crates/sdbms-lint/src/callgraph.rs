//! Workspace call graph and per-function effect summaries.
//!
//! Built over [`crate::syntax`]: every parsed function is indexed by
//! bare name and by `Type::name`, calls are resolved conservatively
//! (qualified paths exactly; methods by name with a denylist for
//! ubiquitous std names like `get`/`insert`/`len` that would otherwise
//! alias half the standard library), and a fixpoint computes each
//! function's [`Effects`] — the lock classes it may acquire, the
//! blocking operations it may perform, and the `Result` discards it
//! contains — transitively through everything it calls. The held-lock
//! walks in [`crate::locks`] and [`crate::flow`] consume these
//! summaries to reason interprocedurally without inlining.

use std::collections::{BTreeSet, HashMap};

use crate::syntax::{Block, Call, FnDef, Node};

/// Method names too generic to resolve by name: they would alias
/// `HashMap::get`, `Vec::push`, `Option::map`, … and drag unrelated
/// effects into every caller. Calls to them resolve to nothing.
const AMBIENT_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "entry",
    "drain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "take",
    "replace",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "filter",
    "filter_map",
    "flat_map",
    "collect",
    "extend",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "min",
    "max",
    "abs",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "field",
    "finish",
    "count",
    "sum",
    "any",
    "all",
    "find",
    "position",
    "chars",
    "lines",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "get_or_insert_with",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "keys",
    "values",
    "values_mut",
    "first",
    "last",
    "write",
    "flush_buf",
    // `merge` aliases accumulator folds across five crates and
    // `with` aliases `thread_local!`/builder patterns; both drag
    // unrelated effects into every caller when resolved by name.
    "merge",
    "with",
];

/// Blocking operations by method name: the catalogue the
/// `blocking-under-lock` pass matches call sites against directly
/// (resolution-independent — `recv` blocks whether or not the callee
/// is in this workspace).
const BLOCKING_METHODS: &[(&str, &str)] = &[
    ("recv", "a blocking channel receive"),
    ("recv_timeout", "a blocking channel receive"),
    ("join", "a thread join"),
    ("read_page", "disk I/O"),
    ("write_page", "disk I/O"),
    ("flush_all", "disk I/O"),
    ("read_block", "tape I/O"),
    ("append_block", "tape I/O"),
    ("rewind", "tape I/O"),
    ("compact", "WAL disk I/O"),
];

/// The blocking kind of a direct call, if it is in the catalogue.
#[must_use]
pub fn blocking_kind(name: &str) -> Option<&'static str> {
    BLOCKING_METHODS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, k)| *k)
}

/// What a function may do, transitively through its calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Lock classes acquired somewhere inside.
    pub acquires: BTreeSet<String>,
    /// Blocking-operation kinds reachable inside.
    pub blocking: BTreeSet<String>,
    /// `Result` discard sites reachable inside *with no lock held
    /// locally on their own path* — a caller holding a lock turns each
    /// into a finding at its own `(file, line, description)`.
    pub discards: BTreeSet<(String, u32, String)>,
}

/// The parsed workspace: functions, indexes, resolved effects.
pub struct Program {
    /// Every parsed function.
    pub fns: Vec<FnDef>,
    /// Effect summary per function (same indexing as `fns`).
    pub effects: Vec<Effects>,
    by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
}

impl Program {
    /// Build the program and run the effects fixpoint.
    /// `local_effects(f)` supplies each function's *local* effects
    /// (its own acquires/blocking/discards, no propagation) — computed
    /// by the lock pass, which owns lock classification.
    #[must_use]
    pub fn build(fns: Vec<FnDef>, local_effects: impl Fn(&Program, &FnDef) -> Effects) -> Program {
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(q) = &f.qual {
                by_qual.entry(q.clone()).or_default().push(i);
            }
        }
        let mut prog = Program {
            effects: vec![Effects::default(); fns.len()],
            fns,
            by_name,
            by_qual,
        };
        let locals: Vec<Effects> = prog.fns.iter().map(|f| local_effects(&prog, f)).collect();
        prog.effects = locals.clone();
        // Fixpoint: union callee effects into callers until stable.
        // Effects only grow and the universe is finite, so this
        // terminates; workspace depth keeps iteration counts small.
        loop {
            let mut changed = false;
            for i in 0..prog.fns.len() {
                if prog.fns[i].is_test {
                    continue;
                }
                let mut next = prog.effects[i].clone();
                for call in collect_calls(&prog.fns[i].body) {
                    for j in prog.resolve(&call, &prog.fns[i]) {
                        let callee = prog.effects[j].clone();
                        next.acquires.extend(callee.acquires);
                        next.blocking.extend(callee.blocking);
                        next.discards.extend(callee.discards);
                    }
                }
                if next != prog.effects[i] {
                    prog.effects[i] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        prog
    }

    /// Resolve a call to candidate function indices. Conservative:
    /// qualified paths resolve exactly (with `Self` mapped through the
    /// caller's impl type); methods resolve by name across the
    /// workspace unless the name is ambient-std; bare calls resolve to
    /// free functions, preferring the caller's file, then its crate.
    #[must_use]
    pub fn resolve(&self, call: &Call, caller: &FnDef) -> Vec<usize> {
        if let Some(q) = &call.qualifier {
            let ty = if q == "Self" {
                match caller.impl_type() {
                    Some(t) => t.to_string(),
                    None => return Vec::new(),
                }
            } else {
                q.clone()
            };
            if ty.chars().next().is_some_and(char::is_uppercase) {
                return self
                    .by_qual
                    .get(&format!("{ty}::{}", call.name))
                    .cloned()
                    .unwrap_or_default();
            }
            // Module-path call (`mem::take`, `descriptive::mean`):
            // resolve by bare name below.
        }
        let is_method = call.method;
        if is_method && AMBIENT_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        // A function is excluded from its own candidate set:
        // self-recursion adds nothing to an effects fixpoint, and
        // wrapper methods that forward through a lock guard
        // (`self.inner.dbms.lock().epoch_status()`) must not resolve
        // back to the wrapper and report a phantom re-entrant cycle.
        let candidates: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| {
                let f = &self.fns[i];
                !f.is_test
                    && f.qual.is_some() == is_method
                    && !(f.file == caller.file && f.line == caller.line)
            })
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        // `self.foo()` prefers the caller's own impl.
        if call.receiver.as_deref() == Some("self") {
            if let Some(ty) = caller.impl_type() {
                let own: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type() == Some(ty))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        let same_file: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].file == caller.file)
            .collect();
        if !is_method && !same_file.is_empty() {
            return same_file;
        }
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_name == caller.crate_name)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        candidates
    }
}

/// Every call node in a block, nested blocks included.
#[must_use]
pub fn collect_calls(block: &Block) -> Vec<Call> {
    let mut out = Vec::new();
    collect_calls_into(block, &mut out);
    out
}

fn collect_calls_into(block: &Block, out: &mut Vec<Call>) {
    for stmt in &block.stmts {
        for node in &stmt.nodes {
            match node {
                Node::Call(c) => out.push(c.clone()),
                Node::Block(b) => collect_calls_into(b, out),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_lints::test_spans;
    use crate::tokenizer::tokenize;

    fn program(srcs: &[(&str, &str, &str)]) -> Program {
        let mut fns = Vec::new();
        for (krate, file, src) in srcs {
            let ts = tokenize(src);
            let spans = test_spans(&ts.toks);
            fns.extend(crate::syntax::parse_file(krate, file, &ts.toks, &spans));
        }
        Program::build(fns, |_, _| Effects::default())
    }

    fn call(name: &str, receiver: Option<&str>, qualifier: Option<&str>) -> Call {
        Call {
            name: name.into(),
            qualifier: qualifier.map(Into::into),
            method: receiver.is_some(),
            receiver: receiver.map(Into::into),
            line: 1,
        }
    }

    #[test]
    fn qualified_resolution_is_exact() {
        let p = program(&[
            ("a", "a.rs", "impl Pool { fn fetch(&self) {} }\n"),
            ("b", "b.rs", "impl Store { fn fetch(&self) {} }\n"),
        ]);
        let caller = &p.fns[1];
        let got = p.resolve(&call("fetch", None, Some("Pool")), caller);
        assert_eq!(got.len(), 1);
        assert_eq!(p.fns[got[0]].qual.as_deref(), Some("Pool::fetch"));
    }

    #[test]
    fn self_receiver_prefers_own_impl() {
        let p = program(&[
            ("a", "a.rs", "impl Pool { fn flush(&self) {} }\n"),
            (
                "b",
                "b.rs",
                "impl Wal {\nfn flush(&self) {}\nfn go(&self) { self.flush(); }\n}\n",
            ),
        ]);
        let caller = p.fns.iter().find(|f| f.name == "go").unwrap();
        let got = p.resolve(&call("flush", Some("self"), None), caller);
        assert_eq!(got.len(), 1);
        assert_eq!(p.fns[got[0]].qual.as_deref(), Some("Wal::flush"));
    }

    #[test]
    fn ambient_methods_do_not_resolve() {
        let p = program(&[(
            "a",
            "a.rs",
            "impl M { fn get(&self) {} }\nfn f(m: &M) { m.get(); }\n",
        )]);
        let caller = p.fns.iter().find(|f| f.name == "f").unwrap();
        assert!(p.resolve(&call("get", Some("m"), None), caller).is_empty());
    }

    #[test]
    fn bare_calls_prefer_same_file_free_fns() {
        let p = program(&[
            ("a", "a.rs", "fn helper() {}\nfn f() { helper(); }\n"),
            ("b", "b.rs", "fn helper() {}\n"),
        ]);
        let caller = p.fns.iter().find(|f| f.name == "f").unwrap();
        let got = p.resolve(&call("helper", None, None), caller);
        assert_eq!(got.len(), 1);
        assert_eq!(p.fns[got[0]].file, "a.rs");
    }

    #[test]
    fn blocking_catalogue() {
        assert_eq!(blocking_kind("recv"), Some("a blocking channel receive"));
        assert_eq!(blocking_kind("write_page"), Some("disk I/O"));
        assert_eq!(blocking_kind("charge"), None);
    }
}
