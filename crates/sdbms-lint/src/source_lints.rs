//! Token-pattern source lints (Layer 1).
//!
//! Each lint scans the [`crate::tokenizer::TokenStream`] of one file.
//! Test code is exempt: spans covered by `#[cfg(test)]` / `#[test]`
//! items are computed first and findings inside them are discarded.
//! A finding on line *L* is suppressed by an inline
//! `// lint: allow(<id>): <reason>` directive on line *L* or *L−1*;
//! a directive without a reason is itself reported
//! ([`crate::diagnostics::UNJUSTIFIED_ALLOW`]) so the allowlist stays
//! audited.

use crate::diagnostics::{
    Diagnostic, Lint, DEADLINE_BYPASS, FAULT_SEAM_BYPASS, LOSSY_CAST, MISSING_DOCS,
    MMAP_SEAM_BYPASS, NO_PANIC, RELAXED_ORDERING, SNAPSHOT_BYPASS, TXN_LOCK_ORDER,
    UNJUSTIFIED_ALLOW,
};
use crate::tokenizer::{Tok, TokKind, TokenStream};

/// What kind of compilation target a file belongs to — decides which
/// lints run on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (`crates/*/src/**`, the workspace root `src/**`).
    /// All source lints apply.
    Lib,
    /// Binary targets (`src/main.rs`, `src/bin/**`). Top-level
    /// processes may abort; panic-freedom is a library contract.
    Bin,
}

/// Which lints to run on one file.
#[derive(Debug, Clone)]
pub struct FileLintSet {
    /// `no-panic` applies.
    pub no_panic: bool,
    /// `relaxed-ordering` applies.
    pub relaxed_ordering: bool,
    /// `fault-seam-bypass` applies.
    pub fault_seam: bool,
    /// `lossy-cast` applies (only `sdbms-stats` kernels).
    pub lossy_cast: bool,
    /// `missing-docs` applies (core crates).
    pub missing_docs: bool,
    /// `txn-lock-order` applies (everything but `sdbms-txn` itself).
    pub txn_lock_order: bool,
    /// `snapshot-bypass` applies (only `sdbms-core`, which owns views).
    pub snapshot_bypass: bool,
    /// `mmap-seam-bypass` applies.
    pub mmap_seam: bool,
    /// `deadline-bypass` applies (only `sdbms-serve`, where every
    /// request carries a budget).
    pub deadline_bypass: bool,
}

/// Run the configured source lints over one tokenized file. `file` is
/// the repo-relative path used in diagnostics.
#[must_use]
pub fn lint_file(file: &str, ts: &TokenStream, set: &FileLintSet) -> Vec<Diagnostic> {
    let toks = &ts.toks;
    let test_spans = test_spans(toks);
    let in_test = |idx: usize| test_spans.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut raw: Vec<Diagnostic> = Vec::new();

    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        if set.no_panic {
            no_panic_at(file, toks, i, &mut raw);
        }
        if set.relaxed_ordering {
            relaxed_at(file, toks, i, &mut raw);
        }
        if set.fault_seam {
            seam_at(file, toks, i, &mut raw);
        }
        if set.lossy_cast {
            lossy_cast_at(file, toks, i, &mut raw);
        }
        if set.missing_docs {
            missing_docs_at(file, toks, i, &mut raw);
        }
        if set.txn_lock_order {
            lock_order_at(file, toks, i, &mut raw);
        }
        if set.snapshot_bypass {
            snapshot_bypass_at(file, toks, i, &mut raw);
        }
        if set.mmap_seam {
            mmap_seam_at(file, toks, i, &mut raw);
        }
    }

    // The deadline-bypass lint is a per-function property (does the
    // body that meters I/O also install a budget?), so it runs as a
    // whole-file pass rather than a per-token pattern.
    if set.deadline_bypass {
        deadline_bypass_pass(file, toks, &test_spans, &mut raw);
    }

    // Apply the inline allowlist: a justified allow(id) on the finding
    // line or the line above suppresses it; unjustified directives are
    // findings themselves.
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            !ts.allows.iter().any(|a| {
                a.justified && a.id == d.lint.id && (a.line == d.line || a.line + 1 == d.line)
            })
        })
        .collect();
    for a in &ts.allows {
        if !a.justified {
            out.push(Diagnostic::new(
                UNJUSTIFIED_ALLOW,
                file,
                a.line,
                format!(
                    "allow({}) has no justification; write `lint: allow({}): <reason>`",
                    a.id, a.id
                ),
            ));
        }
    }
    out.sort_by(|a, b| (a.line, a.lint.id).cmp(&(b.line, b.lint.id)));
    out
}

fn push(out: &mut Vec<Diagnostic>, lint: Lint, file: &str, line: u32, msg: String) {
    out.push(Diagnostic::new(lint, file, line, msg));
}

/// `no-panic`: `.unwrap(` / `.expect(` method calls and the panicking
/// macros.
fn no_panic_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return;
    }
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    if prev_dot && (t.text == "unwrap" || t.text == "expect") {
        push(
            out,
            NO_PANIC,
            file,
            t.line,
            format!(".{}() can panic in library code", t.text),
        );
        return;
    }
    let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct('!');
    if next_bang
        && matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        )
    {
        push(
            out,
            NO_PANIC,
            file,
            t.line,
            format!("{}! can panic in library code", t.text),
        );
    }
}

/// `relaxed-ordering`: the token sequence `Ordering :: Relaxed`.
fn relaxed_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if toks[i].is_ident("Relaxed")
        && i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].is_ident("Ordering")
    {
        push(
            out,
            RELAXED_ORDERING,
            file,
            toks[i].line,
            "Ordering::Relaxed outside the audited allowlist".to_string(),
        );
    }
}

/// `fault-seam-bypass`: `DiskManager::new` / `ArchiveStore::new`.
fn seam_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if i + 3 < toks.len()
        && (toks[i].is_ident("DiskManager") || toks[i].is_ident("ArchiveStore"))
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_ident("new")
    {
        push(
            out,
            FAULT_SEAM_BYPASS,
            file,
            toks[i].line,
            format!(
                "{}::new bypasses the fault-injection seam; construct through with_faults or the hierarchy builder",
                toks[i].text
            ),
        );
    }
}

/// `mmap-seam-bypass`: `MmapSegmentSource::map` / `MmapSegmentSource::new`.
/// Zero-copy reads must be sealed through `TableStore::seal_for_scan`,
/// which flushes the buffer pool and CRC-verifies every page before a
/// byte is served; a directly-constructed source sees neither.
fn mmap_seam_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if i + 3 < toks.len()
        && toks[i].is_ident("MmapSegmentSource")
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && (toks[i + 3].is_ident("map") || toks[i + 3].is_ident("new"))
    {
        push(
            out,
            MMAP_SEAM_BYPASS,
            file,
            toks[i].line,
            format!(
                "MmapSegmentSource::{} bypasses the sealed-scan seam; go through TableStore::seal_for_scan",
                toks[i + 3].text
            ),
        );
    }
}

/// Cast targets `lossy-cast` flags: every integer target can truncate
/// or wrap, and `f32` drops precision. `as f64` is deliberately not
/// flagged: the only lossy sources are 64-bit integers above 2^53,
/// far beyond any row count these kernels see.
const NARROW_TARGETS: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8", "f32",
];

/// `lossy-cast`: `as <narrow numeric type>`.
fn lossy_cast_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if toks[i].is_ident("as")
        && i + 1 < toks.len()
        && toks[i + 1].kind == TokKind::Ident
        && NARROW_TARGETS.contains(&toks[i + 1].text.as_str())
    {
        push(
            out,
            LOSSY_CAST,
            file,
            toks[i].line,
            format!(
                "`as {}` may truncate or wrap; use From/TryFrom or justify the truncation",
                toks[i + 1].text
            ),
        );
    }
}

/// Item keywords that start a documentable public item.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// `missing-docs`: a plain `pub` item with no outer doc comment above
/// it (attributes between the docs and the item are fine).
fn missing_docs_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if !toks[i].is_ident("pub") {
        return;
    }
    // `pub(crate)` / `pub(super)` items are not part of the public API.
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct('(') {
        return;
    }
    // Find the item keyword within the next few tokens (`pub const fn`,
    // `pub async fn`, …). `pub use` re-exports carry their own docs at
    // the definition site.
    let mut kind: Option<&str> = None;
    let mut hops = 0;
    while j < toks.len() && hops < 4 {
        let t = &toks[j];
        if t.is_ident("use") {
            return;
        }
        if t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()) {
            // `pub const fn` is a fn, not a const item.
            if t.text == "const" && j + 1 < toks.len() && toks[j + 1].is_ident("fn") {
                j += 1;
                hops += 1;
                continue;
            }
            kind =
                Some(ITEM_KEYWORDS[ITEM_KEYWORDS.iter().position(|k| *k == t.text).unwrap_or(0)]);
            break;
        }
        j += 1;
        hops += 1;
    }
    let Some(kind) = kind else { return };
    // `pub mod foo;` carries its docs as `//!` inner comments inside
    // foo.rs, where rustc's own missing_docs (warned-on in every lib
    // crate) checks them; only inline `pub mod foo { … }` needs outer
    // docs here.
    if kind == "mod" && j + 2 < toks.len() && toks[j + 2].is_punct(';') {
        return;
    }
    // Walk backwards over attributes to the token that precedes the
    // item; it must be an outer doc comment.
    let mut k = i as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        if t.is_punct(']') {
            // Skip the attribute: back to its matching '[' and the '#'.
            let mut depth = 1;
            k -= 1;
            while k >= 0 && depth > 0 {
                if toks[k as usize].is_punct(']') {
                    depth += 1;
                } else if toks[k as usize].is_punct('[') {
                    depth -= 1;
                }
                k -= 1;
            }
            if k >= 0 && toks[k as usize].is_punct('#') {
                k -= 1;
            }
            continue;
        }
        break;
    }
    let documented = k >= 0 && toks[k as usize].kind == TokKind::DocOuter;
    if !documented {
        push(
            out,
            MISSING_DOCS,
            file,
            toks[i].line,
            format!("public {kind} has no doc comment"),
        );
    }
}

/// `txn-lock-order`: any mention of `acquire_raw` outside `sdbms-txn`.
/// The raw primitive skips the ordered-acquisition check, so library
/// code composing locks through it can create wait-for cycles if a
/// blocking mode is ever added.
fn lock_order_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if toks[i].is_ident("acquire_raw") {
        push(
            out,
            TXN_LOCK_ORDER,
            file,
            toks[i].line,
            "acquire_raw bypasses ordered lock acquisition; use LockTable::acquire".to_string(),
        );
    }
}

/// Store methods that mutate a view's pages in place. Reads
/// (`read_column`, `read_row`, `schema`, …) are fine on a shared store;
/// only these change bytes a pinned snapshot may be reading.
const STORE_MUTATORS: &[&str] = &["set_cell", "append_row", "add_column", "rebuild_zone_maps"];

/// `snapshot-bypass`: `.store.<mutator>(…)` or a direct `.store = …`
/// assignment in core code. Both sidestep the copy-on-write /
/// version-swap discipline (`store_mut()` / `install_store`) that
/// keeps pinned snapshots immutable.
fn snapshot_bypass_at(file: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    if !(toks[i].is_punct('.') && i + 1 < toks.len() && toks[i + 1].is_ident("store")) {
        return;
    }
    if i + 3 < toks.len()
        && toks[i + 2].is_punct('.')
        && toks[i + 3].kind == TokKind::Ident
        && STORE_MUTATORS.contains(&toks[i + 3].text.as_str())
    {
        push(
            out,
            SNAPSHOT_BYPASS,
            file,
            toks[i + 3].line,
            format!(
                ".store.{}() mutates a possibly-pinned store in place; go through store_mut()",
                toks[i + 3].text
            ),
        );
        return;
    }
    // `.store = …` replaces the store without the version bump /
    // epoch retire (`==` comparisons are fine).
    if i + 2 < toks.len()
        && toks[i + 2].is_punct('=')
        && !(i + 3 < toks.len() && toks[i + 3].is_punct('='))
    {
        push(
            out,
            SNAPSHOT_BYPASS,
            file,
            toks[i + 2].line,
            "direct `.store = …` assignment skips the version swap; use install_store".to_string(),
        );
    }
}

/// `deadline-bypass`: a function whose body enters an [`IoScope`]
/// (metering real engine/storage work) without first installing a
/// `BudgetScope`. In the serving layer every request carries a
/// deadline/cancellation budget (DESIGN.md §16); metered work outside
/// a budget scope can neither observe its deadline nor be cancelled,
/// so it silently escapes the whole lifecycle contract. The check is
/// per `fn` item: any body containing `IoScope::enter` must also
/// contain `BudgetScope::enter` (the RAII pair is installed at the top
/// of each `process_*` entry point).
fn deadline_bypass_pass(
    file: &str,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let in_test = |idx: usize| test_spans.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || in_test(i) {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let end = item_end(toks, i);
        let body = &toks[i..=end];
        if scope_enter(body, "IoScope") && !scope_enter(body, "BudgetScope") {
            push(
                out,
                DEADLINE_BYPASS,
                file,
                name.line,
                format!(
                    "fn {} enters an IoScope without a BudgetScope; \
                     metered work here cannot observe its deadline or be cancelled",
                    name.text
                ),
            );
        }
        i = end + 1;
    }
}

/// Does the token slice contain the path-call `ty::enter`?
fn scope_enter(toks: &[Tok], ty: &str) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident(ty) && w[1].is_punct(':') && w[2].is_punct(':') && w[3].is_ident("enter")
    })
}

/// Token-index spans covered by `#[cfg(test)]` / `#[test]` items
/// (test modules, test functions, and anything else gated on `test`).
/// Shared with the concurrency passes, which apply the same exemption.
pub(crate) fn test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let close = match matching_bracket(toks, i + 1) {
                Some(c) => c,
                None => break,
            };
            if attr_is_test(&toks[i + 2..close]) {
                // Skip trailing attributes/docs, then consume the item.
                let mut k = close + 1;
                loop {
                    if k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                        match matching_bracket(toks, k + 1) {
                            Some(c) => k = c + 1,
                            None => break,
                        }
                    } else if k < toks.len()
                        && matches!(toks[k].kind, TokKind::DocOuter | TokKind::DocInner)
                    {
                        k += 1;
                    } else {
                        break;
                    }
                }
                let end = item_end(toks, k);
                spans.push((i, end));
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Does an attribute body (tokens between `#[` and `]`) gate on the
/// test cfg? Covers `#[test]`, `#[cfg(test)]`, and compound cfgs like
/// `#[cfg(all(test, …))]`, while leaving `#[cfg(not(test))]` (which
/// marks *non*-test code) alone.
fn attr_is_test(body: &[Tok]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        let has_test = body.iter().any(|t| t.is_ident("test"));
        let has_not = body.iter().any(|t| t.is_ident("not"));
        return has_test && !has_not;
    }
    false
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Index of the last token of the item starting at `start`: either a
/// `;` before any body, or the `}` closing the first `{` block.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(';') {
            return i;
        }
        if t.is_punct('{') {
            let mut depth = 0;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                i += 1;
            }
            return toks.len().saturating_sub(1);
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// The full lint set for ordinary library code.
#[must_use]
pub fn lints_for(class: FileClass, crate_name: &str) -> FileLintSet {
    let lib = class == FileClass::Lib;
    FileLintSet {
        // The bench harness (workload builders, experiment driver) is
        // allowed to abort; everything else must be panic-free.
        no_panic: lib && crate_name != "sdbms-bench",
        relaxed_ordering: lib,
        fault_seam: lib,
        lossy_cast: lib && crate_name == "sdbms-stats",
        missing_docs: lib && crate_name != "sdbms-bench",
        // sdbms-txn defines acquire_raw; everyone else must not call it.
        txn_lock_order: lib && crate_name != "sdbms-txn",
        // Only sdbms-core owns views (and so can bypass their stores).
        snapshot_bypass: lib && crate_name == "sdbms-core",
        mmap_seam: lib,
        // Only the serving layer threads a budget through every
        // request; engine code may meter I/O without one.
        deadline_bypass: lib && crate_name == "sdbms-serve",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn all() -> FileLintSet {
        FileLintSet {
            no_panic: true,
            relaxed_ordering: true,
            fault_seam: true,
            lossy_cast: true,
            missing_docs: true,
            txn_lock_order: true,
            snapshot_bypass: true,
            mmap_seam: true,
            deadline_bypass: true,
        }
    }

    fn ids(src: &str) -> Vec<(String, u32)> {
        lint_file("t.rs", &tokenize(src), &all())
            .into_iter()
            .map(|d| (d.lint.id.to_string(), d.line))
            .collect()
    }

    #[test]
    fn unwrap_in_lib_flagged_in_test_not() {
        let src = "/// d\npub fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        assert_eq!(ids(src), vec![("no-panic".into(), 2)]);
    }

    #[test]
    fn test_fn_attribute_exempts() {
        let src = "#[test]\nfn t() { a.expect(\"x\"); panic!(); }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { panic!(); }\n";
        assert_eq!(ids(src), vec![("no-panic".into(), 2)]);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "// lint: allow(no-panic): worker panic is propagated\nfn f() { h.join().expect(\"worker\"); }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "// lint: allow(no-panic)\nfn f() { x.unwrap(); }\n";
        let got = ids(src);
        assert!(got.contains(&("no-panic".into(), 2)), "{got:?}");
        assert!(got.contains(&("unjustified-allow".into(), 1)), "{got:?}");
    }

    #[test]
    fn relaxed_ordering_flagged() {
        let src = "fn f() { c.fetch_add(1, Ordering::Relaxed); c.load(Ordering::SeqCst); }\n";
        assert_eq!(ids(src), vec![("relaxed-ordering".into(), 1)]);
    }

    #[test]
    fn seam_bypass_flagged() {
        let src =
            "fn f() { let d = DiskManager::new(t); let a = ArchiveStore::with_faults(t, i, r); }\n";
        assert_eq!(ids(src), vec![("fault-seam-bypass".into(), 1)]);
    }

    #[test]
    fn mmap_seam_bypass_flagged_sanctioned_allow_not() {
        let src = "fn f(t: &mut T) { t.mmap = Some(MmapSegmentSource::map(d, p)?); }\n";
        assert_eq!(ids(src), vec![("mmap-seam-bypass".into(), 1)]);
        let src = "// lint: allow(mmap-seam-bypass): the one sanctioned door\nfn f(t: &mut T) { t.mmap = Some(MmapSegmentSource::map(d, p)?); }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn lossy_casts() {
        let src =
            "fn f(x: f64, n: usize) { let a = x as usize; let b = n as f64; let c = x as f32; }\n";
        let got = ids(src);
        assert_eq!(
            got,
            vec![("lossy-cast".into(), 1), ("lossy-cast".into(), 1)],
            "as usize and as f32 flagged, as f64 not: {got:?}"
        );
    }

    #[test]
    fn missing_docs_on_pub() {
        let src = "pub fn f() {}\n/// ok\npub fn g() {}\npub(crate) fn h() {}\npub use x::y;\n";
        assert_eq!(ids(src), vec![("missing-docs".into(), 1)]);
    }

    #[test]
    fn mod_declaration_exempt_inline_mod_not() {
        let src = "pub mod storage;\npub mod inline_mod { }\n";
        assert_eq!(ids(src), vec![("missing-docs".into(), 2)]);
    }

    #[test]
    fn docs_through_attributes() {
        let src = "/// documented\n#[derive(Debug, Clone)]\npub struct S;\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn undocumented_derive_struct() {
        let src = "#[derive(Debug)]\npub struct S;\n";
        assert_eq!(ids(src), vec![("missing-docs".into(), 2)]);
    }

    #[test]
    fn strings_and_comments_do_not_fire() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // calls unwrap eventually\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn bench_crate_skips_panics_but_bin_class_skips_everything_panicky() {
        let set = lints_for(FileClass::Lib, "sdbms-bench");
        assert!(!set.no_panic);
        assert!(set.relaxed_ordering);
        let set = lints_for(FileClass::Bin, "sdbms-lint");
        assert!(!set.no_panic);
    }

    #[test]
    fn stats_gets_lossy_cast() {
        assert!(lints_for(FileClass::Lib, "sdbms-stats").lossy_cast);
        assert!(!lints_for(FileClass::Lib, "sdbms-storage").lossy_cast);
    }

    #[test]
    fn acquire_raw_flagged_outside_txn_crate() {
        let src = "fn f() { let g = locks.acquire_raw(s, \"v\"); }\n";
        assert_eq!(ids(src), vec![("txn-lock-order".into(), 1)]);
        assert!(!lints_for(FileClass::Lib, "sdbms-txn").txn_lock_order);
        assert!(lints_for(FileClass::Lib, "sdbms-core").txn_lock_order);
    }

    #[test]
    fn store_mutators_flagged_reads_not() {
        let src =
            "fn f(v: &mut V) { v.store.set_cell(0, 1, x); let c = v.store.read_column(2); }\n";
        assert_eq!(ids(src), vec![("snapshot-bypass".into(), 1)]);
        let src = "fn g(v: &mut V) { v.store.append_row(r); v.store.rebuild_zone_maps(); }\n";
        assert_eq!(
            ids(src),
            vec![("snapshot-bypass".into(), 1), ("snapshot-bypass".into(), 1)]
        );
    }

    #[test]
    fn store_assignment_flagged_comparison_not() {
        let src = "fn f(v: &mut V) { v.store = s; }\n";
        assert_eq!(ids(src), vec![("snapshot-bypass".into(), 1)]);
        let src = "fn g(v: &V) -> bool { v.store == other }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn sanctioned_install_point_uses_allow() {
        let src = "// lint: allow(snapshot-bypass): the one sanctioned install point\nfn f(v: &mut V) { v.store = s; }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn only_core_gets_snapshot_bypass() {
        assert!(lints_for(FileClass::Lib, "sdbms-core").snapshot_bypass);
        assert!(!lints_for(FileClass::Lib, "sdbms-repair").snapshot_bypass);
        assert!(!lints_for(FileClass::Bin, "sdbms-core").snapshot_bypass);
    }

    #[test]
    fn io_scope_without_budget_scope_flagged() {
        let src = "fn worker(job: &Job) -> Result<()> {\n    let _scope = IoScope::enter(Arc::clone(&stats));\n    compute()\n}\n";
        assert_eq!(ids(src), vec![("deadline-bypass".into(), 1)]);
    }

    #[test]
    fn budget_scope_anywhere_in_the_fn_satisfies_the_lint() {
        let src = "fn worker(job: &Job) -> Result<()> {\n    let _budget = BudgetScope::enter(job.token.clone());\n    let _scope = IoScope::enter(Arc::clone(&stats));\n    compute()\n}\n";
        assert!(ids(src).is_empty());
        // A fn with no metering at all is also fine.
        assert!(ids("fn f() { plain(); }\n").is_empty());
    }

    #[test]
    fn deadline_bypass_exempts_tests_and_honors_allow() {
        let src = "#[test]\nfn t() { let _s = IoScope::enter(x); }\n";
        assert!(ids(src).is_empty());
        let src = "// lint: allow(deadline-bypass): repair runs unbounded by design\nfn repair_all() { let _s = IoScope::enter(x); go(); }\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn deadline_bypass_flags_each_offending_fn_independently() {
        let src = "fn good() { let _b = BudgetScope::enter(t); let _s = IoScope::enter(x); }\nfn bad() { let _s = IoScope::enter(x); }\n";
        assert_eq!(ids(src), vec![("deadline-bypass".into(), 2)]);
    }

    #[test]
    fn only_serve_gets_deadline_bypass() {
        assert!(lints_for(FileClass::Lib, "sdbms-serve").deadline_bypass);
        assert!(!lints_for(FileClass::Lib, "sdbms-core").deadline_bypass);
        assert!(!lints_for(FileClass::Bin, "sdbms-serve").deadline_bypass);
    }
}
