//! A lightweight item/expression tree over the tokenizer (Layer 1.5).
//!
//! The concurrency passes ([`crate::locks`], [`crate::flow`]) need more
//! shape than flat token patterns: which function a token belongs to,
//! how long a lock guard lives, what a statement binds and whether its
//! errors propagate. This module parses each file's
//! [`crate::tokenizer::TokenStream`] into a list of [`FnDef`]s, each
//! carrying a nested [`Block`]/[`Stmt`] tree of the *events* the
//! analyses care about — lock acquisitions, calls, guard drops, and
//! `Result` discards — in source order. It is deliberately not a full
//! Rust parser (same zero-dependency discipline as the tokenizer);
//! everything it cannot model it drops on the floor, and the analyses
//! are written to stay useful under that conservatism.
//!
//! Guard-lifetime model (edition 2021):
//! - `let g = x.lock();` (or any `let` whose acquisition is not
//!   immediately method-chained) binds the guard: it is held until the
//!   end of the enclosing block, or an explicit `drop(g)`.
//! - Any other acquisition is a *temporary*: the guard lives to the end
//!   of the whole statement — including nested blocks, which is exactly
//!   the `if let Some(v) = m.lock().get(k) { … }` scrutinee-lifetime
//!   rule that makes critical sections wider than they look.
//! - Closures passed to `retire(…)` / `spawn(…)` run later, on another
//!   stack, outside the caller's locks: events inside their argument
//!   lists are not attributed to the enclosing function.

use crate::tokenizer::{Tok, TokKind};

/// One parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Owning crate (`sdbms-serve`, …).
    pub crate_name: String,
    /// Repo-relative file path.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// `Type::name` when defined inside an `impl` block.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
    /// Inside a `#[test]` / `#[cfg(test)]` span — excluded from the
    /// concurrency passes (the same exemption the token lints apply).
    pub is_test: bool,
    /// The function body.
    pub body: Block,
}

impl FnDef {
    /// The impl type this method belongs to, if any (`"Server"` for
    /// `Server::query`).
    #[must_use]
    pub fn impl_type(&self) -> Option<&str> {
        self.qual.as_deref().and_then(|q| q.split("::").next())
    }
}

/// A `{ … }` block: an ordered list of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement (split on `;` and, for match arms / struct fields, on
/// `,` at paren depth zero).
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// 1-based line of the first token.
    pub line: u32,
    /// The statement starts with `let` (any pattern).
    pub is_let: bool,
    /// The statement starts with `return` or `break` — its trailing
    /// expression is consumed by the caller, not discarded.
    pub starts_return: bool,
    /// `let [mut] <name> = …` simple binding target.
    pub binds: Option<String>,
    /// The statement is exactly `let _ = …` (a value discard).
    pub let_underscore: bool,
    /// A `?` occurs in this statement (outside nested blocks) — its
    /// errors propagate, so it is never a swallowed-error site.
    pub has_question: bool,
    /// A top-level `=` occurs (assignment or `let` binder).
    pub has_assign: bool,
    /// The statement ended with `;` (vs being a block-tail value or a
    /// match-arm expression, whose value is consumed).
    pub ends_semi: bool,
    /// Events and nested blocks, in source order.
    pub nodes: Vec<Node>,
}

/// One event inside a statement.
#[derive(Debug, Clone)]
pub enum Node {
    /// A lock/pin/intent acquisition site.
    Acquire(Acquire),
    /// A function or method call.
    Call(Call),
    /// `drop(<name>)` — releases the named bound guard.
    DropGuard(String),
    /// A statement-terminal `.ok()` — a `Result` discard.
    OkDiscard {
        /// 1-based line of the `.ok()`.
        line: u32,
    },
    /// A nested `{ … }` block (loop/if/match body, closure body, …).
    Block(Block),
}

/// One acquisition event.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Lock class (see [`crate::locks::classify`]).
    pub class: String,
    /// 1-based line.
    pub line: u32,
    /// Block-scoped (`let g = x.lock();`) vs statement-temporary.
    pub bound: bool,
}

/// One call event.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (`acquire`, `finish`, …).
    pub name: String,
    /// `Type::name(…)` qualifier, when path-called.
    pub qualifier: Option<String>,
    /// `recv.name(…)` receiver identifier, when recoverable.
    pub receiver: Option<String>,
    /// A `.name(…)` method call (even when the receiver could not be
    /// recovered from a chain).
    pub method: bool,
    /// 1-based line.
    pub line: u32,
}

/// Calls whose argument lists run *deferred* (another thread, or the
/// epoch registry's reclaim step, both outside the caller's locks):
/// events inside them must not inherit the caller's held set.
const DEFERRED_ARG_CALLS: &[&str] = &["retire", "spawn"];

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "move", "fn", "impl", "pub",
    "use", "mod", "struct", "enum", "const", "static", "type", "trait", "where", "unsafe", "async",
    "await", "break", "continue", "in", "as", "ref", "mut", "dyn", "box",
];

/// Parse every function in a tokenized file. `test_spans` are the
/// token-index ranges covered by `#[test]` / `#[cfg(test)]` (from
/// [`crate::source_lints::test_spans`]).
#[must_use]
pub fn parse_file(
    crate_name: &str,
    file: &str,
    toks: &[Tok],
    test_spans: &[(usize, usize)],
) -> Vec<FnDef> {
    let mut fns = Vec::new();
    // Stack of (impl type, index of the impl block's closing brace).
    let mut impls: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while impls.last().is_some_and(|&(_, close)| i > close) {
            impls.pop();
        }
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((ty, open)) = impl_header(toks, i) {
                if let Some(close) = matching_brace(toks, open) {
                    impls.push((ty, close));
                    i = open + 1;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some((def, next)) = parse_fn(crate_name, file, toks, i, &impls, test_spans) {
                fns.push(def);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parse the header of the `impl` at `i`: the implemented type name
/// and the index of the body's `{`.
fn impl_header(toks: &[Tok], i: usize) -> Option<(Option<String>, usize)> {
    let mut j = i + 1;
    let mut angle: i32 = 0;
    let mut ty: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && angle == 0 {
            return Some((ty, j));
        }
        if t.is_punct(';') {
            return None; // `impl Trait for Type;`-style oddity; skip
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` inside generic bounds (`impl<F: Fn() -> R>`) is an
            // arrow, not a closing angle.
            if !(j > 0 && toks[j - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if angle == 0 && t.kind == TokKind::Ident {
            if t.text == "for" {
                ty = None; // the trait path came first; the type follows
            } else if t.text != "dyn" && t.text != "mut" {
                ty = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parse the `fn` at index `i`. Returns the definition and the index
/// to resume scanning from.
fn parse_fn(
    crate_name: &str,
    file: &str,
    toks: &[Tok],
    i: usize,
    impls: &[(Option<String>, usize)],
    test_spans: &[(usize, usize)],
) -> Option<(FnDef, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Find the parameter list, skipping generics.
    let mut j = i + 2;
    let mut angle: i32 = 0;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') && angle == 0 {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            angle -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // not a function item after all
        }
        j += 1;
    }
    let params_close = matching_paren(toks, j)?;
    // Return type: tokens between the params and the body / `;`.
    let mut k = params_close + 1;
    let mut returns_result = false;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('{') {
            break;
        }
        if t.is_punct(';') {
            return None; // trait method declaration without a body
        }
        if t.is_ident("Result") {
            returns_result = true;
        }
        k += 1;
    }
    if k >= toks.len() {
        return None;
    }
    let (body, close) = parse_block(toks, k);
    let qual = impls
        .last()
        .and_then(|(ty, _)| ty.as_ref())
        .map(|ty| format!("{ty}::{name}"));
    let is_test = test_spans.iter().any(|&(s, e)| i >= s && i <= e);
    Some((
        FnDef {
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            name,
            qual,
            line: toks[i].line,
            returns_result,
            is_test,
            body,
        },
        close + 1,
    ))
}

/// One piece of a statement under construction: a token index or an
/// already-parsed nested block.
enum Piece {
    Tok(usize),
    Block(Block),
}

/// Parse the block whose `{` is at `open`. Returns the block and the
/// index of its closing `}`.
fn parse_block(toks: &[Tok], open: usize) -> (Block, usize) {
    let mut stmts = Vec::new();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut paren: i32 = 0;
    let mut i = open + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            let (inner, close) = parse_block(toks, i);
            pieces.push(Piece::Block(inner));
            i = close + 1;
            // A block expression ends its statement unless the next
            // token continues it (`.method()`, `?`, `else`) or a
            // delimiter the main loop already splits on follows. This
            // keeps `if let Some(v) = m.lock().get(k) { … }` from
            // merging with the statement after it — statement
            // temporaries must die at the `}`.
            if paren == 0 {
                let continues = toks
                    .get(i)
                    .is_some_and(|n| n.is_punct('.') || n.is_punct('?') || n.is_ident("else"));
                let delimited = toks
                    .get(i)
                    .is_none_or(|n| n.is_punct('}') || n.is_punct(';') || n.is_punct(','));
                if !continues && !delimited {
                    if let Some(stmt) = build_stmt(toks, &pieces, false) {
                        stmts.push(stmt);
                    }
                    pieces.clear();
                }
            }
            continue;
        }
        if t.is_punct('}') {
            // Inner braces are consumed by recursion, so this `}`
            // closes the current block (a block-tail value ends here
            // without `;`).
            if let Some(stmt) = build_stmt(toks, &pieces, false) {
                stmts.push(stmt);
            }
            return (Block { stmts }, i);
        }
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren = (paren - 1).max(0);
        } else if paren == 0 && (t.is_punct(';') || t.is_punct(',')) {
            if let Some(stmt) = build_stmt(toks, &pieces, t.is_punct(';')) {
                stmts.push(stmt);
            }
            pieces.clear();
            i += 1;
            continue;
        }
        pieces.push(Piece::Tok(i));
        i += 1;
    }
    if let Some(stmt) = build_stmt(toks, &pieces, false) {
        stmts.push(stmt);
    }
    (Block { stmts }, toks.len().saturating_sub(1))
}

/// Assemble one [`Stmt`] from its pieces.
fn build_stmt(toks: &[Tok], pieces: &[Piece], ends_semi: bool) -> Option<Stmt> {
    if pieces.is_empty() {
        return None;
    }
    let mut stmt = Stmt {
        ends_semi,
        ..Stmt::default()
    };
    for p in pieces {
        if let Piece::Tok(idx) = p {
            stmt.line = toks[*idx].line;
            stmt.starts_return = toks[*idx].is_ident("return") || toks[*idx].is_ident("break");
            break;
        }
    }
    scan_binding(toks, pieces, &mut stmt);

    // Event scan. Paren depth is tracked across token pieces so that
    // deferred-call argument lists can be suppressed as a span.
    let mut depth: i32 = 0;
    let mut suppress_below: Option<i32> = None;
    for (pi, p) in pieces.iter().enumerate() {
        match p {
            Piece::Block(b) => {
                if suppress_below.is_none() {
                    stmt.nodes.push(Node::Block(b.clone()));
                }
            }
            Piece::Tok(idx) => {
                let t = &toks[*idx];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if suppress_below.is_some_and(|d| depth <= d) {
                        suppress_below = None;
                    }
                } else if t.is_punct('?') && suppress_below.is_none() {
                    stmt.has_question = true;
                } else if t.is_punct('=') && depth == 0 && !eq_is_comparison(toks, *idx) {
                    stmt.has_assign = true;
                }
                if suppress_below.is_some() {
                    continue;
                }
                if t.kind == TokKind::Ident {
                    if let Some(node) = event_at(toks, pieces, pi, *idx, &stmt) {
                        let defer = matches!(
                            &node,
                            Node::Call(c) if DEFERRED_ARG_CALLS.contains(&c.name.as_str())
                        );
                        stmt.nodes.push(node);
                        if defer {
                            suppress_below = Some(depth);
                        }
                    }
                }
            }
        }
    }
    Some(stmt)
}

/// `=` that is part of `==`, `<=`, `>=`, `!=`, `+=`, `=>`, … rather
/// than a binder/assignment.
fn eq_is_comparison(toks: &[Tok], idx: usize) -> bool {
    let prev_op = idx > 0
        && matches!(
            toks[idx - 1].text.as_str(),
            "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
        )
        && toks[idx - 1].kind == TokKind::Punct;
    let next_op =
        idx + 1 < toks.len() && (toks[idx + 1].is_punct('=') || toks[idx + 1].is_punct('>'));
    prev_op || next_op
}

/// Detect `let [mut] <name> =` / `let _ =` at the head of a statement.
fn scan_binding(toks: &[Tok], pieces: &[Piece], stmt: &mut Stmt) {
    let head: Vec<usize> = pieces
        .iter()
        .filter_map(|p| match p {
            Piece::Tok(i) => Some(*i),
            Piece::Block(_) => None,
        })
        .take(8)
        .collect();
    if head.is_empty() || !toks[head[0]].is_ident("let") {
        return;
    }
    stmt.is_let = true;
    let mut h = 1;
    if head.get(h).is_some_and(|&i| toks[i].is_ident("mut")) {
        h += 1;
    }
    let Some(&name_idx) = head.get(h) else { return };
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokKind::Ident {
        return; // tuple / struct pattern
    }
    // The candidate must be followed by `=` (binder) or `:` (type
    // annotation, binder further right) — `let Some(v) = …` and
    // `let Ok(x) = …` destructure and bind nothing we track.
    match head.get(h + 1) {
        Some(&ni) if toks[ni].is_punct('=') && !eq_is_comparison(toks, ni) => {}
        Some(&ni) if toks[ni].is_punct(':') => {}
        _ => return,
    }
    if name_tok.text == "_" {
        stmt.let_underscore = true;
    } else {
        stmt.binds = Some(name_tok.text.clone());
    }
}

/// Blocking/acquisition/call event starting at ident `idx` (piece
/// index `pi`), if any.
fn event_at(toks: &[Tok], pieces: &[Piece], pi: usize, idx: usize, stmt: &Stmt) -> Option<Node> {
    let t = &toks[idx];
    let next_is = |c: char| toks.get(idx + 1).is_some_and(|n| n.is_punct(c));
    if !next_is('(') {
        return None;
    }
    let prev_dot = idx > 0 && toks[idx - 1].is_punct('.');
    let line = t.line;

    // `drop(name)` — an explicit guard release.
    if !prev_dot && t.text == "drop" {
        if let (Some(arg), Some(close)) = (toks.get(idx + 2), toks.get(idx + 3)) {
            if arg.kind == TokKind::Ident && close.is_punct(')') {
                return Some(Node::DropGuard(arg.text.clone()));
            }
        }
    }

    if prev_dot {
        let receiver = receiver_of(toks, idx - 1);
        match t.text.as_str() {
            // `.lock()` — classify by receiver field at analysis time.
            "lock" => {
                return receiver.map(|recv| {
                    Node::Acquire(Acquire {
                        class: format!("recv:{recv}"),
                        line,
                        bound: acquire_is_bound(toks, pieces, pi, idx, stmt),
                    })
                });
            }
            // LockTable::acquire / acquire_raw — the per-view lock.
            // (The table's brief internal inner-mutex hold is modelled
            // from LockTable's own body, not propagated to callers.)
            "acquire" | "acquire_raw" => {
                return Some(Node::Acquire(Acquire {
                    class: "view-lock".to_string(),
                    line,
                    bound: acquire_is_bound(toks, pieces, pi, idx, stmt),
                }));
            }
            // EpochRegistry::pin — a reclamation pin.
            "pin" if receiver.as_deref() == Some("epochs") => {
                return Some(Node::Acquire(Acquire {
                    class: "epoch-pin".to_string(),
                    line,
                    bound: acquire_is_bound(toks, pieces, pi, idx, stmt),
                }));
            }
            // WriteAheadLog::begin — a WAL intent, pending until the
            // commit clears it; modelled as held for the rest of the
            // function.
            "begin" if receiver.as_deref() == Some("wal") => {
                return Some(Node::Acquire(Acquire {
                    class: "wal-intent".to_string(),
                    line,
                    bound: true,
                }));
            }
            // Statement-terminal `.ok()` — a discard.
            "ok" => {
                let close_semi = toks.get(idx + 2).is_some_and(|c| c.is_punct(')'))
                    && toks.get(idx + 3).is_none_or(|s| s.is_punct(';'));
                if close_semi {
                    return Some(Node::OkDiscard { line });
                }
                return None;
            }
            _ => {}
        }
        return Some(Node::Call(Call {
            name: t.text.clone(),
            qualifier: None,
            receiver,
            method: true,
            line,
        }));
    }

    // `Qual::name(…)` path call.
    if idx >= 3 && toks[idx - 1].is_punct(':') && toks[idx - 2].is_punct(':') {
        if toks[idx - 3].kind == TokKind::Ident {
            return Some(Node::Call(Call {
                name: t.text.clone(),
                qualifier: Some(toks[idx - 3].text.clone()),
                receiver: None,
                method: false,
                line,
            }));
        }
        return None;
    }

    // Bare call. Skip keywords and tuple-struct constructors
    // (`Some(x)`, `Ok(v)` — uppercase initial).
    if NON_CALL_KEYWORDS.contains(&t.text.as_str())
        || t.text.chars().next().is_some_and(char::is_uppercase)
    {
        return None;
    }
    Some(Node::Call(Call {
        name: t.text.clone(),
        qualifier: None,
        receiver: None,
        method: false,
        line,
    }))
}

/// The receiver identifier of a method call, walking back from the `.`
/// at `dot`: `inner.cache.lock()` → `cache`;
/// `self.frames[f].lock()` → `frames`. Chained-call receivers
/// (`foo().lock()`) are unrecoverable.
fn receiver_of(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut k = dot - 1;
    if toks[k].is_punct(']') {
        // Index expression: back to the matching `[`.
        let mut depth = 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if toks[k].is_punct(']') {
                depth += 1;
            } else if toks[k].is_punct('[') {
                depth -= 1;
            }
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone())
}

/// Is the acquisition at `idx` bound to the statement's `let` binding
/// (block-scoped guard) rather than a statement temporary? True when
/// the statement binds a simple name and the acquisition's value is
/// not immediately method-chained onward.
fn acquire_is_bound(toks: &[Tok], pieces: &[Piece], pi: usize, idx: usize, stmt: &Stmt) -> bool {
    if stmt.binds.is_none() {
        return false;
    }
    // Only an acquisition at the statement's own level can be the bound
    // value; one inside an argument list is a temporary regardless.
    let mut depth = 0i32;
    for p in pieces.iter().take(pi) {
        if let Piece::Tok(i) = p {
            if toks[*i].is_punct('(') || toks[*i].is_punct('[') {
                depth += 1;
            } else if toks[*i].is_punct(')') || toks[*i].is_punct(']') {
                depth -= 1;
            }
        }
    }
    if depth > 0 {
        return false;
    }
    let Some(close) = matching_paren(toks, idx + 1) else {
        return false;
    };
    let mut after = close + 1;
    while toks.get(after).is_some_and(|t| t.is_punct('?')) {
        after += 1;
    }
    !toks.get(after).is_some_and(|t| t.is_punct('.'))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source_lints::test_spans;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> Vec<FnDef> {
        let ts = tokenize(src);
        let spans = test_spans(&ts.toks);
        parse_file("c", "f.rs", &ts.toks, &spans)
    }

    fn acquires(stmt: &Stmt) -> Vec<(&str, bool)> {
        stmt.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Acquire(a) => Some((a.class.as_str(), a.bound)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn fn_and_impl_structure() {
        let src = "impl fmt::Debug for Server { fn fmt(&self) -> Result<(), E> { ok() } }\n\
                   impl Pool { fn fetch(&self) {} }\nfn free() {}\n";
        let fns = parse(src);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].qual.as_deref(), Some("Server::fmt"));
        assert!(fns[0].returns_result);
        assert_eq!(fns[1].qual.as_deref(), Some("Pool::fetch"));
        assert!(!fns[1].returns_result);
        assert_eq!(fns[2].qual, None);
        assert_eq!(fns[2].name, "free");
    }

    #[test]
    fn bound_vs_temporary_guards() {
        let src = "fn f(&self) {\n\
                   let mut state = self.state.lock();\n\
                   let v = self.dbms.lock().version()?;\n\
                   let g = match self.locks.acquire(s, &[v]) { Ok(g) => g, Err(e) => return };\n\
                   self.cache.lock().purge(v);\n\
                   }\n";
        let fns = parse(src);
        let b = &fns[0].body;
        assert_eq!(acquires(&b.stmts[0]), vec![("recv:state", true)]);
        assert_eq!(acquires(&b.stmts[1]), vec![("recv:dbms", false)]);
        assert!(b.stmts[1].has_question);
        assert_eq!(acquires(&b.stmts[2]), vec![("view-lock", true)]);
        assert_eq!(b.stmts[2].binds.as_deref(), Some("g"));
        let purge = &b.stmts[3];
        assert_eq!(acquires(purge), vec![("recv:cache", false)]);
    }

    #[test]
    fn if_let_scrutinee_keeps_temporary_with_nested_block() {
        let src = "fn f() { if let Some(v) = m.lock().get(k) { finish(v); } }\n";
        let fns = parse(src);
        let stmt = &fns[0].body.stmts[0];
        assert_eq!(acquires(stmt), vec![("recv:m", false)]);
        // Acquire precedes the nested block in node order.
        let order: Vec<&str> = stmt
            .nodes
            .iter()
            .map(|n| match n {
                Node::Acquire(_) => "acq",
                Node::Call(_) => "call",
                Node::Block(_) => "block",
                _ => "other",
            })
            .collect();
        // The `.get(k)` call is recorded too (resolution drops it as
        // ambient); what matters is the acquire precedes the block.
        assert_eq!(order, vec!["acq", "call", "block"]);
    }

    #[test]
    fn let_underscore_and_drop_and_ok() {
        let src =
            "fn f() { let _ = dbms.abort_batch(b); drop(state); tell(x).ok(); v.ok().map(g); }\n";
        let fns = parse(src);
        let b = &fns[0].body;
        assert!(b.stmts[0].let_underscore);
        assert!(!b.stmts[0].has_question);
        assert!(matches!(&b.stmts[1].nodes[0], Node::DropGuard(n) if n == "state"));
        assert!(b.stmts[2]
            .nodes
            .iter()
            .any(|n| matches!(n, Node::OkDiscard { .. })));
        // `.ok().map(…)` is a value use, not a discard.
        assert!(!b.stmts[3]
            .nodes
            .iter()
            .any(|n| matches!(n, Node::OkDiscard { .. })));
    }

    #[test]
    fn deferred_retire_args_are_suppressed() {
        let src = "fn f(&mut self) { self.epochs.retire(move || { let _ = disk.deallocate(p); }); next(); }\n";
        let fns = parse(src);
        let b = &fns[0].body;
        let names: Vec<&str> = b
            .stmts
            .iter()
            .flat_map(|s| &s.nodes)
            .filter_map(|n| match n {
                Node::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"retire"));
        assert!(names.contains(&"next"));
        assert!(!names.contains(&"deallocate"));
        assert!(!b
            .stmts
            .iter()
            .flat_map(|s| &s.nodes)
            .any(|n| matches!(n, Node::Block(_))));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() { x.lock(); } }\nfn live() {}\n";
        let fns = parse(src);
        let helper = fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.is_test);
        assert!(!fns.iter().find(|f| f.name == "live").unwrap().is_test);
    }

    #[test]
    fn nested_block_guard_scopes() {
        let src =
            "fn f(rx: &M) { let job = { let guard = rx.lock(); guard.recv() }; use_it(job); }\n";
        let fns = parse(src);
        let outer = &fns[0].body.stmts[0];
        // The outer stmt has no top-level acquire; the nested block has
        // the bound guard and the recv call.
        assert!(acquires(outer).is_empty());
        let Node::Block(inner) = outer
            .nodes
            .iter()
            .find(|n| matches!(n, Node::Block(_)))
            .unwrap()
        else {
            unreachable!()
        };
        assert_eq!(acquires(&inner.stmts[0]), vec![("recv:rx", true)]);
        assert!(inner.stmts[1]
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Call(c) if c.name == "recv")));
    }
}
