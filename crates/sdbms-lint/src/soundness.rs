//! Semantic rule-soundness checks (Layer 2).
//!
//! Source lints read text; these checks *run the system's own
//! metadata*. They introspect the summary-function registry
//! ([`sdbms_summary::SummaryRegistry`]) and the Management Database's
//! derived-attribute [`sdbms_management::RuleStore`] and report:
//!
//! - [`crate::diagnostics::RULE_MISSING_STRATEGY`] — a
//!   `(function, update-kind)` pair with no declared maintenance
//!   strategy;
//! - [`crate::diagnostics::RULE_UNVERIFIED_MERGE`] — a function
//!   declared incremental whose auxiliary state fails the executable
//!   merge law ([`sdbms_summary::verify_merge_law`], the same oracle
//!   the parallel executor's property tests exercise);
//! - [`crate::diagnostics::RULE_DANGLING_INPUT`] — a derived-attribute
//!   rule that reads a column which is neither a declared base column
//!   nor itself a ruled derived attribute;
//! - [`crate::diagnostics::REPAIR_MISSING_AUTHORITY`] /
//!   [`crate::diagnostics::REPAIR_SELF_READ`] — a triage-ladder repair
//!   action ([`sdbms_repair::RepairLadder`]) that either names no
//!   authority for its replacement data, or reads from the very
//!   component it repairs (a circular read that would launder corrupt
//!   bytes back into the "repaired" state).
//!
//! Registry and rule findings carry pseudo-paths
//! (`<summary-registry>`, `<rule-store:view>`) — the defect lives in
//! registered metadata, not in a source line. Ladder findings anchor
//! at the real `file:line` of the offending registration, captured by
//! `RepairAction::new`'s `#[track_caller]`.

use crate::diagnostics::{
    Diagnostic, REPAIR_MISSING_AUTHORITY, REPAIR_SELF_READ, RULE_DANGLING_INPUT,
    RULE_MISSING_STRATEGY, RULE_UNVERIFIED_MERGE,
};
use sdbms_management::RuleStore;
use sdbms_repair::RepairLadder;
use sdbms_summary::{verify_merge_law, MergeLawStatus, SummaryRegistry, ALL_UPDATE_KINDS};
use std::collections::BTreeSet;

/// Audit a summary registry: every contract must cover every update
/// kind, and every declared-incremental function must pass the merge
/// law.
#[must_use]
pub fn check_registry(registry: &SummaryRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for contract in registry.contracts() {
        let name = contract.function.name();
        for kind in ALL_UPDATE_KINDS {
            if contract.strategy_for(kind).is_none() {
                out.push(Diagnostic::new(
                    RULE_MISSING_STRATEGY,
                    "<summary-registry>",
                    0,
                    format!(
                        "function `{name}` declares no maintenance strategy for {kind} updates"
                    ),
                ));
            }
        }
        if contract.declared_incremental {
            match verify_merge_law(&contract.function) {
                MergeLawStatus::Verified => {}
                MergeLawStatus::NoAuxiliaryState => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "function `{name}` is declared incremental but builds no auxiliary state"
                    ),
                )),
                MergeLawStatus::Unmergeable(why) => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "function `{name}` is declared incremental but its auxiliary state has no merge law: {why}"
                    ),
                )),
                MergeLawStatus::Mismatch(why) => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "function `{name}` is declared incremental but merging violates the law: {why}"
                    ),
                )),
            }
        }
    }
    // Maintained physical statistics (zone maps &c.) are audited under
    // the same rules as functions: full update-kind coverage, and a
    // passing merge law when one is claimed.
    for stat in registry.statistics() {
        let name = stat.name;
        for kind in ALL_UPDATE_KINDS {
            if stat.strategy_for(kind).is_none() {
                out.push(Diagnostic::new(
                    RULE_MISSING_STRATEGY,
                    "<summary-registry>",
                    0,
                    format!(
                        "statistic `{name}` declares no maintenance strategy for {kind} updates"
                    ),
                ));
            }
        }
        if stat.declared_incremental {
            match stat.verify_merge_law() {
                MergeLawStatus::Verified => {}
                MergeLawStatus::NoAuxiliaryState => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "statistic `{name}` is declared incremental but builds no auxiliary state"
                    ),
                )),
                MergeLawStatus::Unmergeable(why) => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "statistic `{name}` is declared incremental but its state has no merge law: {why}"
                    ),
                )),
                MergeLawStatus::Mismatch(why) => out.push(Diagnostic::new(
                    RULE_UNVERIFIED_MERGE,
                    "<summary-registry>",
                    0,
                    format!(
                        "statistic `{name}` is declared incremental but merging violates the law: {why}"
                    ),
                )),
            }
        }
    }
    out
}

/// Audit a rule store against the base columns of each view: every
/// input an active rule reads must resolve to a base column or to
/// another ruled derived attribute of the same view. `base_columns`
/// maps a view name to its base-relation column names.
#[must_use]
pub fn check_rules(
    rules: &RuleStore,
    base_columns: &dyn Fn(&str) -> Vec<String>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for view in rules.views() {
        let base: BTreeSet<String> = base_columns(view).into_iter().collect();
        let derived: BTreeSet<String> = rules
            .rules_for_view(view)
            .iter()
            .map(|(attr, _)| (*attr).to_string())
            .collect();
        for (attr, rule) in rules.rules_for_view(view) {
            for input in rule.input_attributes() {
                if !base.contains(&input) && !derived.contains(&input) {
                    out.push(Diagnostic::new(
                        RULE_DANGLING_INPUT,
                        &format!("<rule-store:{view}>"),
                        0,
                        format!(
                            "rule for derived attribute `{attr}` reads `{input}`, which is neither a base column of `{view}` nor a ruled derived attribute"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Audit a repair ladder: every registered action must name the
/// authority source it reads replacement data from, and that authority
/// must not be the component being repaired. Findings anchor at the
/// `(file, line)` each [`sdbms_repair::RepairAction`] captured when it
/// was registered, so the report points at the unsound registration
/// itself.
#[must_use]
pub fn check_ladder(ladder: &RepairLadder) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for action in ladder.actions() {
        let (file, line) = action.registered_at;
        if action.authority.is_none() {
            out.push(Diagnostic::new(
                REPAIR_MISSING_AUTHORITY,
                file,
                line,
                format!(
                    "repair action for {} (\"{}\") names no authority source",
                    action.target, action.description
                ),
            ));
        } else if action.is_self_read() {
            out.push(Diagnostic::new(
                REPAIR_SELF_READ,
                file,
                line,
                format!(
                    "repair action for {} (\"{}\") reads from the component it repairs",
                    action.target, action.description
                ),
            ));
        }
    }
    out
}

/// Run every semantic check against the system's *actual* registered
/// metadata: the standing summary registry and the standing repair
/// ladder that `StatDbms::repair_view` walks. (The workspace run wires
/// real rule stores in via [`check_rules`] from the driver.)
#[must_use]
pub fn check_standing() -> Vec<Diagnostic> {
    let mut out = check_registry(&SummaryRegistry::standing());
    out.extend(check_ladder(&RepairLadder::standard()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_summary::{FunctionContract, MaintenanceStrategy, StatFunction, UpdateKind};

    #[test]
    fn standing_registry_is_clean() {
        assert!(check_standing().is_empty(), "{:?}", check_standing());
    }

    #[test]
    fn standard_repair_ladder_is_sound() {
        assert!(check_ladder(&RepairLadder::standard()).is_empty());
    }

    #[test]
    fn unsound_ladder_actions_detected() {
        use sdbms_repair::{Authority, Component, RepairAction};
        let mut ladder = RepairLadder::new();
        ladder.register(RepairAction::new(Component::ZoneMap, None, "no authority"));
        let circular = RepairAction::new(Component::Segment, Some(Authority::SegmentData), "x");
        ladder.register(circular);
        ladder.register(RepairAction::new(
            Component::Cell,
            Some(Authority::Archive),
            "ok",
        ));
        let found = check_ladder(&ladder);
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].lint.id, "repair-missing-authority");
        assert_eq!(found[1].lint.id, "repair-self-read");
        // Both findings anchor in this test file, where the unsound
        // registrations actually live.
        assert!(found.iter().all(|d| d.file.ends_with("soundness.rs")));
    }

    #[test]
    fn missing_strategy_detected_per_kind() {
        let mut r = SummaryRegistry::new();
        r.register(
            FunctionContract::new(StatFunction::Sum, false)
                .with(UpdateKind::Insert, MaintenanceStrategy::IncrementalDelta),
        );
        let found = check_registry(&r);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.lint.id == "rule-missing-strategy"));
        assert!(found.iter().any(|d| d.message.contains("delete")));
        assert!(found.iter().any(|d| d.message.contains("overwrite")));
    }

    #[test]
    fn incremental_median_fails_merge_law() {
        // Median's window is order-dependent: declaring it incremental
        // is exactly the unsoundness the checker must catch.
        let mut r = SummaryRegistry::new();
        let mut c = FunctionContract::new(StatFunction::Median, true);
        for k in sdbms_summary::ALL_UPDATE_KINDS {
            c = c.with(k, MaintenanceStrategy::IncrementalDelta);
        }
        r.register(c);
        let found = check_registry(&r);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint.id, "rule-unverified-merge");
        assert!(found[0].message.contains("median"));
    }

    #[test]
    fn incremental_without_aux_fails() {
        let mut c = FunctionContract::new(StatFunction::TrimmedMean(50, 950), true);
        for k in sdbms_summary::ALL_UPDATE_KINDS {
            c = c.with(k, MaintenanceStrategy::IncrementalDelta);
        }
        let mut r = SummaryRegistry::new();
        r.register(c);
        let found = check_registry(&r);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("no auxiliary state"));
    }

    #[test]
    fn statistic_missing_strategy_and_broken_law_detected() {
        use sdbms_summary::{verify_zone_map_merge_law, StatisticContract};
        let mut r = SummaryRegistry::new();
        // Covers only inserts; overwrite and delete are undeclared.
        r.register_statistic(
            StatisticContract::new("half-covered", false, verify_zone_map_merge_law)
                .with(UpdateKind::Insert, MaintenanceStrategy::Regenerate),
        );
        // Claims a merge law whose oracle reports a mismatch.
        fn broken() -> sdbms_summary::MergeLawStatus {
            sdbms_summary::MergeLawStatus::Mismatch("synthetic".into())
        }
        let mut bad = StatisticContract::new("bad-law", true, broken);
        for k in sdbms_summary::ALL_UPDATE_KINDS {
            bad = bad.with(k, MaintenanceStrategy::Regenerate);
        }
        r.register_statistic(bad);
        let found = check_registry(&r);
        assert_eq!(found.len(), 3, "{found:?}");
        assert_eq!(
            found
                .iter()
                .filter(|d| d.lint.id == "rule-missing-strategy")
                .count(),
            2
        );
        assert!(found
            .iter()
            .any(|d| d.lint.id == "rule-unverified-merge" && d.message.contains("bad-law")));
    }

    #[test]
    fn dangling_rule_input_detected() {
        use sdbms_management::{DerivedRule, RuleStore};
        use sdbms_relational::Expr;
        let mut rules = RuleStore::new();
        rules.register(
            "v",
            "LOG_X",
            DerivedRule::Local {
                expr: Expr::col("X"),
            },
        );
        rules.register(
            "v",
            "GHOST",
            DerivedRule::MarkStale {
                inputs: vec!["NO_SUCH_COLUMN".into()],
            },
        );
        let base = |view: &str| -> Vec<String> {
            assert_eq!(view, "v");
            vec!["X".into(), "Y".into()]
        };
        let found = check_rules(&rules, &base);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].lint.id, "rule-dangling-input");
        assert!(found[0].message.contains("NO_SUCH_COLUMN"));
        assert!(found[0].file.contains("v"));
    }

    #[test]
    fn derived_attribute_chain_is_allowed() {
        use sdbms_management::{DerivedRule, RuleStore};
        use sdbms_relational::Expr;
        let mut rules = RuleStore::new();
        rules.register(
            "v",
            "A2",
            DerivedRule::Local {
                expr: Expr::col("A"),
            },
        );
        rules.register(
            "v",
            "A3",
            DerivedRule::Local {
                expr: Expr::col("A2"),
            },
        );
        let base = |_: &str| vec!["A".to_string()];
        assert!(check_rules(&rules, &base).is_empty());
    }
}
