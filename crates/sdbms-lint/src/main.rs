//! The `sdbms-lint` driver.
//!
//! ```text
//! cargo run -p sdbms-lint -- --deny-all            # CI gate
//! cargo run -p sdbms-lint -- --deny-all --allow missing-docs
//! cargo run -p sdbms-lint -- --list                # lint catalogue
//! cargo run -p sdbms-lint -- --root /path/to/repo
//! ```
//!
//! Exit codes: 0 clean (or findings while not in `--deny-all`),
//! 1 findings under `--deny-all`, 2 usage or I/O error.

use sdbms_lint::{filter_allowed, run, ALL_LINTS};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: sdbms-lint [--deny-all] [--allow <lint-id>]... [--root <dir>] [--list]"
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut list = false;
    let mut allowed: BTreeSet<String> = BTreeSet::new();
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--list" => list = true,
            "--allow" => match args.next() {
                Some(id) if ALL_LINTS.iter().any(|l| l.id == id) => {
                    allowed.insert(id);
                }
                Some(id) => {
                    eprintln!("error: unknown lint id `{id}` (see --list)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --allow needs a lint id\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for lint in ALL_LINTS {
            println!("{:<24} {}", lint.id, lint.description);
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace this binary was built in (so
    // `cargo run -p sdbms-lint` works from any subdirectory).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let findings = match run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = filter_allowed(findings, &allowed);

    for d in &findings {
        println!("{d}");
    }
    if findings.is_empty() {
        println!(
            "sdbms-lint: clean ({} lints)",
            ALL_LINTS.len() - allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("sdbms-lint: {} finding(s)", findings.len());
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
