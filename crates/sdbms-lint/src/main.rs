//! The `sdbms-lint` driver.
//!
//! ```text
//! cargo run -p sdbms-lint -- --deny-all            # CI gate
//! cargo run -p sdbms-lint -- --deny-all --allow missing-docs
//! cargo run -p sdbms-lint -- --list                # lint catalogue
//! cargo run -p sdbms-lint -- --format json        # machine output
//! cargo run -p sdbms-lint -- --root /path/to/repo
//! ```
//!
//! Exit codes: 0 clean (or findings while not in `--deny-all`),
//! 1 findings under `--deny-all`, 2 usage or I/O error.
//!
//! `--format json` emits one stable document on stdout:
//! `{"version":1,"findings":[{"rule","file","line","message","held":[…]}]}`
//! (held is the lock-class context of the concurrency passes, empty
//! for token and soundness lints). The summary lines are suppressed;
//! exit codes are unchanged.

use sdbms_lint::{filter_allowed, run, Diagnostic, ALL_LINTS};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: sdbms-lint [--deny-all] [--allow <lint-id>]... [--format <text|json>] [--root <dir>] [--list]"
}

/// Escape a string for a JSON string literal (the workspace carries no
/// JSON dependency; the schema needs only this).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings as the versioned JSON document.
fn render_json(findings: &[Diagnostic]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let held: Vec<String> = d
            .held
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"held\":[{}]}}",
            json_escape(d.lint.id),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            held.join(",")
        ));
    }
    out.push_str("]}");
    out
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut list = false;
    let mut json = false;
    let mut allowed: BTreeSet<String> = BTreeSet::new();
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--list" => list = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                Some(other) => {
                    eprintln!("error: unknown format `{other}` (text|json)\n{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --format needs text|json\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--allow" => match args.next() {
                Some(id) if ALL_LINTS.iter().any(|l| l.id == id) => {
                    allowed.insert(id);
                }
                Some(id) => {
                    eprintln!("error: unknown lint id `{id}` (see --list)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: --allow needs a lint id\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for lint in ALL_LINTS {
            println!("{:<24} {}", lint.id, lint.description);
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace this binary was built in (so
    // `cargo run -p sdbms-lint` works from any subdirectory).
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let findings = match run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = filter_allowed(findings, &allowed);

    if json {
        println!("{}", render_json(&findings));
        return if findings.is_empty() || !deny_all {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &findings {
        println!("{d}");
    }
    if findings.is_empty() {
        println!(
            "sdbms-lint: clean ({} lints)",
            ALL_LINTS.len() - allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("sdbms-lint: {} finding(s)", findings.len());
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
