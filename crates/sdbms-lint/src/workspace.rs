//! Workspace discovery: find every linted source file and decide
//! which lint set applies to it.
//!
//! Only `std::fs` — the crate has the same zero-external-dependency
//! discipline as the vendored stand-ins it lives beside.

use crate::source_lints::{lints_for, FileClass, FileLintSet};
use std::fs;
use std::path::{Path, PathBuf};

/// One source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Repo-relative path used in diagnostics.
    pub rel: String,
    /// Name of the owning crate (`sdbms-stats`, or `sdbms` for the
    /// workspace root package).
    pub crate_name: String,
    /// Library or binary target.
    pub class: FileClass,
    /// The lints enabled for this file.
    pub lints: FileLintSet,
}

/// Discover all lintable `.rs` files under the workspace root:
/// `crates/*/src/**` plus the root package's `src/**`. Crate-root
/// `tests/`, `benches/`, and `examples/` directories sit outside
/// `src/` and are never visited; `src/bin/**` and `src/main.rs` are
/// classified [`FileClass::Bin`].
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect(root, &dir.join("src"), &name, &mut out)?;
    }
    collect(root, &root.join("src"), "sdbms", &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn collect(
    root: &Path,
    src: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
                continue;
            }
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let class = if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
                FileClass::Bin
            } else {
                FileClass::Lib
            };
            let lints = lints_for(class, crate_name);
            out.push(SourceFile {
                path,
                rel,
                crate_name: crate_name.to_string(),
                class,
                lints,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/sdbms-lint -> crates -> repo root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    }

    #[test]
    fn discovers_known_crates_and_classifies() {
        let files = discover(&repo_root()).unwrap();
        assert!(files.len() > 40, "found only {} files", files.len());
        let crates: Vec<&str> = files.iter().map(|f| f.crate_name.as_str()).collect();
        for want in ["sdbms-stats", "sdbms-storage", "sdbms-summary", "sdbms"] {
            assert!(crates.contains(&want), "missing crate {want}");
        }
        let me = files
            .iter()
            .find(|f| f.rel == "crates/sdbms-lint/src/main.rs")
            .expect("own main.rs discovered");
        assert_eq!(me.class, FileClass::Bin);
        assert!(files
            .iter()
            .all(|f| !f.rel.contains("/tests/") && !f.rel.contains("/examples/")));
    }
}
