//! # sdbms-lint — workspace-wide static analysis
//!
//! Two layers, one driver:
//!
//! - **Layer 1** ([`source_lints`]) runs token-pattern lints over every
//!   workspace source file using a hand-written tokenizer
//!   ([`tokenizer`]) — no external parser, the same
//!   zero-new-dependency discipline as the vendored stand-ins.
//! - **Layer 2** ([`soundness`]) introspects the *running system's*
//!   metadata: the summary-function registry and the Management
//!   Database's maintenance rules, checking that every declared
//!   maintenance strategy is actually sound (the merge-law oracle is
//!   executed, not assumed).
//!
//! The binary (`cargo run -p sdbms-lint -- --deny-all`) prints
//! structured diagnostics (`file:line: deny[lint-id]: message`) and
//! exits nonzero when any non-allowed lint fires — CI runs it beside
//! clippy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagnostics;
pub mod soundness;
pub mod source_lints;
pub mod tokenizer;
pub mod workspace;

pub use diagnostics::{Diagnostic, Lint, ALL_LINTS};

use std::collections::BTreeSet;
use std::path::Path;

/// Run both layers over a workspace root and return every finding not
/// suppressed by an inline allow, sorted by file then line then id.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in workspace::discover(root)? {
        let src = std::fs::read_to_string(&file.path)?;
        let ts = tokenizer::tokenize(&src);
        out.extend(source_lints::lint_file(&file.rel, &ts, &file.lints));
    }
    out.extend(soundness::check_standing());
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.id).cmp(&(b.file.as_str(), b.line, b.lint.id))
    });
    Ok(out)
}

/// Filter findings by a set of allowed lint ids (from `--allow`).
#[must_use]
pub fn filter_allowed(findings: Vec<Diagnostic>, allowed: &BTreeSet<String>) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| !allowed.contains(d.lint.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_drops_allowed_ids() {
        let findings = vec![
            Diagnostic::new(diagnostics::NO_PANIC, "a.rs", 1, "x".into()),
            Diagnostic::new(diagnostics::LOSSY_CAST, "a.rs", 2, "y".into()),
        ];
        let allowed: BTreeSet<String> = ["no-panic".to_string()].into();
        let kept = filter_allowed(findings, &allowed);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint.id, "lossy-cast");
    }
}
