//! # sdbms-lint — workspace-wide static analysis
//!
//! Three layers, one driver:
//!
//! - **Layer 1** ([`source_lints`]) runs token-pattern lints over every
//!   workspace source file using a hand-written tokenizer
//!   ([`tokenizer`]) — no external parser, the same
//!   zero-new-dependency discipline as the vendored stand-ins.
//! - **Layer 1.5** (the concurrency passes) parses the same token
//!   streams into a function/statement tree ([`syntax`]), resolves a
//!   workspace call graph with per-function effect summaries
//!   ([`callgraph`]), and runs three interprocedural held-lock
//!   analyses: the global lock-order graph and blocking-under-lock
//!   ([`locks`]), and swallowed-error dataflow ([`flow`]).
//! - **Layer 2** ([`soundness`]) introspects the *running system's*
//!   metadata: the summary-function registry and the Management
//!   Database's maintenance rules, checking that every declared
//!   maintenance strategy is actually sound (the merge-law oracle is
//!   executed, not assumed).
//!
//! The binary (`cargo run -p sdbms-lint -- --deny-all`) prints
//! structured diagnostics (`file:line: deny[lint-id]: message`, or a
//! stable JSON schema under `--format json`) and exits nonzero when
//! any non-allowed lint fires — CI runs it beside clippy.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diagnostics;
pub mod flow;
pub mod locks;
pub mod soundness;
pub mod source_lints;
pub mod syntax;
pub mod tokenizer;
pub mod workspace;

pub use diagnostics::{Diagnostic, Lint, ALL_LINTS};

use std::collections::{BTreeSet, HashMap};
use std::path::Path;

use tokenizer::AllowDirective;

/// Run all layers over a workspace root and return every finding not
/// suppressed by an inline allow, sorted by file then line then id.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    let mut fns = Vec::new();
    let mut allow_map: HashMap<String, Vec<AllowDirective>> = HashMap::new();
    for file in workspace::discover(root)? {
        let src = std::fs::read_to_string(&file.path)?;
        let ts = tokenizer::tokenize(&src);
        out.extend(source_lints::lint_file(&file.rel, &ts, &file.lints));
        // The concurrency passes cover library code only: binaries and
        // the bench harness own their threads outright and hold no
        // shared engine locks worth ordering.
        if file.class == source_lints::FileClass::Lib {
            let spans = source_lints::test_spans(&ts.toks);
            fns.extend(syntax::parse_file(
                &file.crate_name,
                &file.rel,
                &ts.toks,
                &spans,
            ));
            allow_map.insert(file.rel.clone(), ts.allows);
        }
    }
    out.extend(apply_allows(analyze_fns(fns), &allow_map));
    out.extend(soundness::check_standing());
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.id).cmp(&(b.file.as_str(), b.line, b.lint.id))
    });
    Ok(out)
}

/// Run only the concurrency passes over in-memory sources, applying
/// inline allows the same way the live run does. Each entry is
/// `(crate_name, file_path, source)`. This is the fixture-test entry
/// point: it needs no filesystem.
#[must_use]
pub fn analyze_sources(files: &[(&str, &str, &str)]) -> Vec<Diagnostic> {
    let mut fns = Vec::new();
    let mut allow_map: HashMap<String, Vec<AllowDirective>> = HashMap::new();
    for (krate, rel, src) in files {
        let ts = tokenizer::tokenize(src);
        let spans = source_lints::test_spans(&ts.toks);
        fns.extend(syntax::parse_file(krate, rel, &ts.toks, &spans));
        allow_map.insert((*rel).to_string(), ts.allows);
    }
    let mut out = apply_allows(analyze_fns(fns), &allow_map);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.id).cmp(&(b.file.as_str(), b.line, b.lint.id))
    });
    out
}

/// Build the call graph over the parsed functions and run the three
/// concurrency passes.
fn analyze_fns(fns: Vec<syntax::FnDef>) -> Vec<Diagnostic> {
    let prog = callgraph::Program::build(fns, locks::local_effects);
    let mut out = locks::check(&prog);
    out.extend(flow::check(&prog));
    out
}

/// Suppress findings covered by a justified inline allow in their own
/// file (directive on the finding line or the line above) — the same
/// rule [`source_lints::lint_file`] applies to token lints.
fn apply_allows(
    findings: Vec<Diagnostic>,
    allow_map: &HashMap<String, Vec<AllowDirective>>,
) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| {
            allow_map.get(&d.file).is_none_or(|allows| {
                !allows.iter().any(|a| {
                    a.justified && a.id == d.lint.id && (a.line == d.line || a.line + 1 == d.line)
                })
            })
        })
        .collect()
}

/// Filter findings by a set of allowed lint ids (from `--allow`).
#[must_use]
pub fn filter_allowed(findings: Vec<Diagnostic>, allowed: &BTreeSet<String>) -> Vec<Diagnostic> {
    findings
        .into_iter()
        .filter(|d| !allowed.contains(d.lint.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_drops_allowed_ids() {
        let findings = vec![
            Diagnostic::new(diagnostics::NO_PANIC, "a.rs", 1, "x".into()),
            Diagnostic::new(diagnostics::LOSSY_CAST, "a.rs", 2, "y".into()),
        ];
        let allowed: BTreeSet<String> = ["no-panic".to_string()].into();
        let kept = filter_allowed(findings, &allowed);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint.id, "lossy-cast");
    }
}
