//! A minimal hand-written Rust lexer.
//!
//! `sdbms-lint` deliberately carries no external dependencies (same
//! vendoring discipline as `vendor/criterion`), so instead of `syn` it
//! lexes Rust source into a flat token stream that is just rich enough
//! for the pattern-based lints in [`crate::source_lints`]: identifiers,
//! punctuation, literals, and doc comments, each tagged with its source
//! line. Ordinary comments are not tokens, but any comment containing a
//! `lint: allow(<id>): <reason>` directive is captured as an
//! [`AllowDirective`] so lints can honor inline, per-line allowlists.
//!
//! The lexer understands the parts of the grammar that would otherwise
//! produce false matches: nested block comments, string/char/byte
//! literals (including raw strings with `#` fences), and the
//! lifetime-versus-char-literal ambiguity after `'`.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Ordering`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `!`, `[`, …).
    Punct,
    /// String / char / byte / numeric literal (content not preserved).
    Literal,
    /// Outer doc comment (`///` or `/** … */`) — documents the item
    /// that follows it.
    DocOuter,
    /// Inner doc comment (`//!` or `/*! … */`) — documents the
    /// enclosing module, not the next item.
    DocInner,
    /// Lifetime (`'a`) — kept distinct so `'a` is never confused with
    /// the start of a char literal.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// The identifier / punctuation text. Empty for literals and doc
    /// comments (lints never match on their content).
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// An inline allowlist directive parsed from a comment:
/// `// lint: allow(<id>): <reason>`. The directive suppresses findings
/// of `<id>` on its own line and on the line immediately after it, and
/// is only valid when a non-empty justification follows the id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The allowed lint id.
    pub id: String,
    /// Whether a non-empty justification followed the id. Directives
    /// without a justification are reported as findings themselves.
    pub justified: bool,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct TokenStream {
    /// The tokens, in source order.
    pub toks: Vec<Tok>,
    /// Inline allowlist directives found in comments.
    pub allows: Vec<AllowDirective>,
}

/// Lex `src` into a [`TokenStream`]. The lexer never fails: bytes it
/// does not understand are skipped (lints are best-effort pattern
/// matchers, not a compiler front end).
#[must_use]
pub fn tokenize(src: &str) -> TokenStream {
    let mut out = TokenStream::default();
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                let start_line = line;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                if text.starts_with("///") && !text.starts_with("////") {
                    out.toks.push(Tok {
                        kind: TokKind::DocOuter,
                        text: String::new(),
                        line: start_line,
                    });
                } else if text.starts_with("//!") {
                    out.toks.push(Tok {
                        kind: TokKind::DocInner,
                        text: String::new(),
                        line: start_line,
                    });
                } else if let Some(d) = parse_allow(&text, start_line) {
                    out.allows.push(d);
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = b[start..i.min(n)].iter().collect();
                if text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4 {
                    out.toks.push(Tok {
                        kind: TokKind::DocOuter,
                        text: String::new(),
                        line: start_line,
                    });
                } else if text.starts_with("/*!") {
                    out.toks.push(Tok {
                        kind: TokKind::DocInner,
                        text: String::new(),
                        line: start_line,
                    });
                } else if let Some(d) = parse_allow(&text, start_line) {
                    out.allows.push(d);
                }
            }
            // r"..."  r#"..."#  br#"..."#  b"..."
            'r' | 'b' if raw_string_fence(&b, i).is_some() => {
                let Some((hash_count, quote_at)) = raw_string_fence(&b, i) else {
                    // Unreachable (the arm guard checked), but advance
                    // rather than risk a spin.
                    i += 1;
                    continue;
                };
                let start_line = line;
                i = quote_at + 1;
                // Scan to closing quote followed by hash_count '#'s.
                while i < n {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    if b[i] == '"' {
                        let mut k = 0;
                        while k < hash_count && i + 1 + k < n && b[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hash_count {
                            i += 1 + hash_count;
                            break;
                        }
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime ('a) vs char literal ('x', '\n', '\'').
                let is_lifetime = i + 1 < n
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < n && b[i + 2] == '\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line,
                    });
                } else {
                    let start_line = line;
                    i += 1;
                    while i < n {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: start_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop before a range operator `..` or a method
                    // call on a literal.
                    if b[i] == '.' && i + 1 < n && (b[i + 1] == '.' || b[i + 1].is_alphabetic()) {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Detect a raw/byte string opener at `i`: `r"`, `r#…#"`, `b"`, `br#…"`.
/// Returns `(hash_count, index_of_opening_quote)`.
fn raw_string_fence(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
    } else if b[i] == 'b' {
        // Plain byte string b"..." — treat like a normal string with
        // zero hashes.
        return (j < b.len() && b[j] == '"').then_some((0, j));
    } else {
        return None;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    (j < b.len() && b[j] == '"').then_some((hashes, j))
}

/// Parse a `lint: allow(<id>): <reason>` directive out of a comment.
fn parse_allow(comment: &str, line: u32) -> Option<AllowDirective> {
    let at = comment.find("lint:")?;
    let rest = comment[at + "lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let id = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([':', '—', '-', ' '])
        .trim();
    Some(AllowDirective {
        line,
        id,
        justified: !reason.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_lines() {
        let ts = tokenize("fn a() {\n  b.unwrap()\n}\n");
        let unwrap = ts.toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn strings_hide_their_content() {
        assert_eq!(idents(r#"let x = "unwrap panic";"#), vec!["let", "x"]);
        assert_eq!(idents("let x = r#\"a.unwrap()\"#;"), vec!["let", "x"]);
        assert_eq!(
            idents(r"let c = '\'';  let d = 'x';"),
            vec!["let", "c", "let", "d"]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ts = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ts.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        // The `str` after `'a` must still lex as an ident.
        assert!(ts.toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn comments_are_skipped_but_docs_kept() {
        let ts = tokenize("/// doc\n// plain unwrap\nfn f() {}\n");
        assert!(ts.toks.iter().any(|t| t.kind == TokKind::DocOuter));
        assert!(!ts.toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_block_comments() {
        let ts = tokenize("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(
            ts.toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            2
        );
    }

    #[test]
    fn allow_directive_parsed() {
        let ts = tokenize("x.unwrap(); // lint: allow(no-panic): invariant upheld by caller\n");
        assert_eq!(ts.allows.len(), 1);
        assert_eq!(ts.allows[0].id, "no-panic");
        assert!(ts.allows[0].justified);
        assert_eq!(ts.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_is_unjustified() {
        let ts = tokenize("// lint: allow(no-panic)\n");
        assert_eq!(ts.allows.len(), 1);
        assert!(!ts.allows[0].justified);
    }
}
