//! Held-lock dataflow: the `swallowed-error` pass (Layer 1.5, pass 3).
//!
//! A discarded `Result` — `let _ = fallible(…)`, a statement-terminal
//! `.ok()`, or a bare `fallible(…);` statement — is tolerable on a
//! cold path, but on a path that holds a lock or a WAL intent it
//! usually means a critical section proceeds as if an invariant still
//! held after the operation that maintained it failed (an abort that
//! didn't abort, an invalidation that didn't invalidate). This pass
//! reports exactly those discards:
//!
//! - *Direct*: the discarding statement itself runs under a non-empty
//!   held-lock set (via the shared walk in [`crate::locks`]).
//! - *Bubbled*: the discard sits in a helper whose own path is
//!   lock-free, but some caller reaches the helper while holding a
//!   lock. The [`crate::callgraph::Effects`] fixpoint carries each
//!   lock-free discard site upward; the finding is reported at the
//!   discard site, naming the lock-holding entry point.
//!
//! `?` propagation, bound `.ok()` values (`if x.ok() …`), and
//! assignments are all uses, not discards, and never fire. Deliberate
//! discards carry a justified inline allow
//! (`// lint: allow(swallowed-error): <why>`), same as every other
//! lint in the catalogue.

use std::collections::BTreeMap;

use crate::callgraph::Program;
use crate::diagnostics::{Diagnostic, SWALLOWED_ERROR};
use crate::locks::{walk_program, Event};

/// Run the swallowed-error pass over a resolved program.
#[must_use]
pub fn check(prog: &Program) -> Vec<Diagnostic> {
    let mut out: BTreeMap<(String, u32), Diagnostic> = BTreeMap::new();
    walk_program(prog, &mut |ev| match ev {
        Event::Discard {
            f,
            line,
            desc,
            held,
        } => {
            if held.is_empty() {
                return;
            }
            let classes: Vec<String> = held.iter().map(|h| h.class.clone()).collect();
            out.entry((f.file.clone(), line)).or_insert_with(|| {
                Diagnostic::new(
                    SWALLOWED_ERROR,
                    &f.file,
                    line,
                    format!("{desc} while `{}` is held", classes.join("`, `")),
                )
                .with_held(classes.clone())
            });
        }
        Event::Call { f, call, held } => {
            if held.is_empty() {
                return;
            }
            let classes: Vec<String> = held.iter().map(|h| h.class.clone()).collect();
            for j in prog.resolve(call, f) {
                for (file, line, desc) in &prog.effects[j].discards {
                    out.entry((file.clone(), *line)).or_insert_with(|| {
                        Diagnostic::new(
                            SWALLOWED_ERROR,
                            file,
                            *line,
                            format!(
                                "{desc}, reached from `{}` ({}:{}) with `{}` held",
                                f.name,
                                f.file,
                                call.line,
                                classes.join("`, `")
                            ),
                        )
                        .with_held(classes.clone())
                    });
                }
            }
        }
        Event::Acquire { .. } => {}
    });
    out.into_values().collect()
}
