//! The front-line result cache: a TTL'd LRU above the Summary DB.
//!
//! The Summary DB (PR 1) is per-view and durable; this cache is
//! cross-request and cheap — the split matchy's caching guide
//! documents 2–10× wins from. Keys are
//! `(view, store version, summary generation, query)`:
//!
//! - A **batch commit** installs a new store version *and* bumps the
//!   summary generation, so every entry cached against the old pair
//!   becomes unreachable — commits invalidate by construction, no
//!   flush traffic, no stale reads.
//! - A **repair** may reset the Summary DB (its generation restarts),
//!   so the server additionally purges the repaired view's entries
//!   outright ([`ResultCache::purge_view`]) — the one transition the
//!   key cannot express monotonically.
//! - **Fallback results never enter.** A degraded view answers from
//!   the raw archive; those values are correct *now* but not tied to
//!   a store version, so admitting them could outlive their truth.
//!   Mirrors the PR 1 Summary-DB rule. The server enforces it and
//!   counts refusals here.
//!
//! Time is the server's **logical tick** (one tick per submitted
//! request), not wall time, so TTL expiry is deterministic and the
//! serving test harness can replay it exactly.

use std::collections::{BTreeMap, HashMap};

use crate::server::Payload;

/// The cache key. Two requests share an entry only when the view, the
/// pinned store version, the Summary-DB generation, *and* the
/// canonical query string all match.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// View name.
    pub view: String,
    /// Store version the result was computed at.
    pub version: u64,
    /// Summary-DB generation at compute time.
    pub generation: u64,
    /// Canonical query rendering, e.g. `"mean(INCOME)"`.
    pub query: String,
}

/// Counters the cache maintains; snapshot via
/// [`crate::Server::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to respect the capacity bound.
    pub lru_evictions: u64,
    /// Entries dropped because their TTL had lapsed at lookup time.
    pub ttl_evictions: u64,
    /// Results refused admission because they were computed as
    /// [`sdbms_core::ComputeSource::Fallback`] (degraded-view reads).
    pub fallback_rejections: u64,
    /// Entries dropped by an explicit per-view purge (repairs).
    pub purged: u64,
}

impl FrontCacheStats {
    /// Hit fraction over all lookups, 0.0 when none happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot {
    payload: Payload,
    /// Recency stamp; also the key into the recency index.
    seq: u64,
    /// First tick at which the entry is no longer servable.
    expires: u64,
}

/// The TTL'd LRU map. Recency is a `BTreeMap<seq, key>` side index, so
/// both touch and evict are `O(log n)` — no scans on the hot path.
pub struct ResultCache {
    capacity: usize,
    ttl: u64,
    map: HashMap<QueryKey, Slot>,
    recency: BTreeMap<u64, QueryKey>,
    next_seq: u64,
    stats: FrontCacheStats,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, each servable for
    /// `ttl` logical ticks after insertion. `capacity == 0` disables
    /// the cache entirely (every lookup misses, nothing is stored).
    #[must_use]
    pub fn new(capacity: usize, ttl: u64) -> Self {
        ResultCache {
            capacity,
            ttl,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            stats: FrontCacheStats::default(),
        }
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> FrontCacheStats {
        self.stats
    }

    /// Record a refusal to admit a Fallback-sourced result (the
    /// server enforces the rule; the cache keeps the count).
    pub fn note_fallback_rejection(&mut self) {
        self.stats.fallback_rejections += 1;
    }

    /// Look up `key` at logical time `now`. A live hit refreshes the
    /// entry's recency; an expired entry is dropped and counted as a
    /// TTL eviction plus a miss.
    pub fn get(&mut self, key: &QueryKey, now: u64) -> Option<Payload> {
        let Some(slot) = self.map.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        if now >= slot.expires {
            let seq = slot.seq;
            self.map.remove(key);
            self.recency.remove(&seq);
            self.stats.ttl_evictions += 1;
            self.stats.misses += 1;
            return None;
        }
        // Touch: move to the most-recent end of the index.
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(slot) = self.map.get_mut(key) {
            self.recency.remove(&slot.seq);
            slot.seq = seq;
            self.recency.insert(seq, key.clone());
            self.stats.hits += 1;
            return Some(slot.payload.clone());
        }
        None
    }

    /// Would a query over `view` rendered as `query` *likely* hit at
    /// logical time `now`? True when any unexpired entry matches the
    /// view and query string at **any** (version, generation) — the
    /// door's brownout check cannot know the pinned version without
    /// taking the engine lock, so this is deliberately a conservative
    /// over-approximation: a probe may admit a query that then misses
    /// (the version moved), never the reverse kind of harm. Touches no
    /// recency state and counts no stats — it is an admission
    /// heuristic, not a lookup.
    #[must_use]
    pub fn probe_fresh(&self, view: &str, query: &str, now: u64) -> bool {
        self.map
            .iter()
            .any(|(k, slot)| k.view == view && k.query == query && now < slot.expires)
    }

    /// Admit a freshly computed result at logical time `now`,
    /// evicting the least-recently-used entry if the cache is full.
    /// No-op when the cache is disabled (`capacity == 0`).
    pub fn insert(&mut self, key: QueryKey, payload: Payload, now: u64) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.map.insert(
            key.clone(),
            Slot {
                payload,
                seq,
                expires: now.saturating_add(self.ttl),
            },
        ) {
            self.recency.remove(&old.seq);
        }
        self.recency.insert(seq, key);
        self.stats.insertions += 1;
        while self.map.len() > self.capacity {
            let Some((&oldest, _)) = self.recency.iter().next() else {
                break;
            };
            if let Some(victim) = self.recency.remove(&oldest) {
                self.map.remove(&victim);
                self.stats.lru_evictions += 1;
            }
        }
    }

    /// Drop every entry belonging to `view`, whatever its version.
    /// Called on repair: a summary reset may restart the generation
    /// counter, which the monotone cache key cannot express.
    pub fn purge_view(&mut self, view: &str) {
        let victims: Vec<QueryKey> = self
            .map
            .keys()
            .filter(|k| k.view == view)
            .cloned()
            .collect();
        for k in victims {
            if let Some(slot) = self.map.remove(&k) {
                self.recency.remove(&slot.seq);
                self.stats.purged += 1;
            }
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.map.len())
            .field("capacity", &self.capacity)
            .field("ttl", &self.ttl)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdbms_core::SummaryValue;

    fn key(view: &str, version: u64, generation: u64, q: &str) -> QueryKey {
        QueryKey {
            view: view.into(),
            version,
            generation,
            query: q.into(),
        }
    }

    fn payload(x: f64) -> Payload {
        Payload::Summary(SummaryValue::Scalar(x))
    }

    #[test]
    fn hit_after_insert_miss_after_version_bump() {
        let mut c = ResultCache::new(8, 100);
        c.insert(key("v", 1, 1, "mean(INCOME)"), payload(5.0), 0);
        assert_eq!(
            c.get(&key("v", 1, 1, "mean(INCOME)"), 1),
            Some(payload(5.0))
        );
        // A commit bumps version+generation: the old entry is simply
        // unreachable under the new key.
        assert_eq!(c.get(&key("v", 2, 2, "mean(INCOME)"), 2), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn ttl_expires_entries_deterministically() {
        let mut c = ResultCache::new(8, 10);
        c.insert(key("v", 1, 1, "q"), payload(1.0), 100);
        assert!(c.get(&key("v", 1, 1, "q"), 109).is_some(), "tick 109 < 110");
        assert!(
            c.get(&key("v", 1, 1, "q"), 110).is_none(),
            "tick 110 expired"
        );
        assert_eq!(c.stats().ttl_evictions, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used_not_least_recently_inserted() {
        let mut c = ResultCache::new(2, 1000);
        c.insert(key("v", 1, 1, "a"), payload(1.0), 0);
        c.insert(key("v", 1, 1, "b"), payload(2.0), 1);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("v", 1, 1, "a"), 2).is_some());
        c.insert(key("v", 1, 1, "c"), payload(3.0), 3);
        assert!(c.get(&key("v", 1, 1, "a"), 4).is_some());
        assert!(c.get(&key("v", 1, 1, "b"), 5).is_none(), "b was evicted");
        assert!(c.get(&key("v", 1, 1, "c"), 6).is_some());
        assert_eq!(c.stats().lru_evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_replaces_without_leaking_recency() {
        let mut c = ResultCache::new(4, 1000);
        c.insert(key("v", 1, 1, "a"), payload(1.0), 0);
        c.insert(key("v", 1, 1, "a"), payload(2.0), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key("v", 1, 1, "a"), 2), Some(payload(2.0)));
        // The recency index must hold exactly one entry for the key.
        c.insert(key("v", 1, 1, "b"), payload(3.0), 3);
        c.insert(key("v", 1, 1, "c"), payload(4.0), 4);
        c.insert(key("v", 1, 1, "d"), payload(5.0), 5);
        c.insert(key("v", 1, 1, "e"), payload(6.0), 6);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn purge_view_is_scoped() {
        let mut c = ResultCache::new(8, 1000);
        c.insert(key("v", 1, 1, "a"), payload(1.0), 0);
        c.insert(key("v", 2, 2, "a"), payload(2.0), 1);
        c.insert(key("w", 1, 1, "a"), payload(3.0), 2);
        c.purge_view("v");
        assert!(c.get(&key("v", 1, 1, "a"), 3).is_none());
        assert!(c.get(&key("v", 2, 2, "a"), 4).is_none());
        assert!(
            c.get(&key("w", 1, 1, "a"), 5).is_some(),
            "other views keep entries"
        );
        assert_eq!(c.stats().purged, 2);
    }

    #[test]
    fn probe_fresh_matches_any_version_without_touching_stats() {
        let mut c = ResultCache::new(8, 10);
        c.insert(key("v", 3, 2, "mean(INCOME)"), payload(1.0), 100);
        let before = c.stats();
        assert!(
            c.probe_fresh("v", "mean(INCOME)", 105),
            "any version matches"
        );
        assert!(!c.probe_fresh("v", "mean(INCOME)", 110), "expired");
        assert!(!c.probe_fresh("w", "mean(INCOME)", 105), "other view");
        assert!(!c.probe_fresh("v", "max(INCOME)", 105), "other query");
        assert_eq!(c.stats(), before, "probing is invisible to the counters");
    }

    #[test]
    fn capacity_zero_disables_the_cache() {
        let mut c = ResultCache::new(0, 1000);
        c.insert(key("v", 1, 1, "a"), payload(1.0), 0);
        assert!(c.is_empty());
        assert!(c.get(&key("v", 1, 1, "a"), 1).is_none());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let mut c = ResultCache::new(4, 1000);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(key("v", 1, 1, "a"), payload(1.0), 0);
        c.get(&key("v", 1, 1, "a"), 1);
        c.get(&key("v", 1, 1, "a"), 2);
        c.get(&key("v", 1, 1, "zzz"), 3);
        let s = c.stats();
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
