//! A deterministic closed-loop traffic generator for the serving
//! layer.
//!
//! *Closed loop*: each simulated analyst is one thread issuing its
//! next request only after the previous response (or rejection)
//! arrives — the 1982 paper's interactive-analyst model, not an open
//! arrival process. Determinism comes from seeding: analyst `i` draws
//! from `SplitMix64::new(seed ^ i)`, query choice is a seeded Zipfian
//! over a fixed universe (statistical workloads are heavily skewed —
//! everyone asks for mean income), and writer analysts derive their
//! update batches from [`sdbms_testkit::seeded_income_update`]. Two
//! runs with the same config against equal fixtures issue the *same
//! logical request sequence per analyst*; only thread interleaving
//! differs, which is exactly the degree of freedom the differential
//! harness must prove irrelevant.

use std::collections::HashMap;
use std::time::Instant;

use sdbms_core::BatchOp;
use sdbms_testkit::{seeded_income_update, SplitMix64, Zipfian};

use crate::server::{Query, Response, Served, Server};

/// Traffic shape. [`TrafficConfig::new`] gives a small deterministic
/// default; builder methods override.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Simulated analysts (threads). Analyst 0 is the writer when
    /// `update_every > 0`.
    pub analysts: usize,
    /// Requests each analyst issues.
    pub requests_per_analyst: usize,
    /// Master seed; analyst `i` uses `seed ^ i`.
    pub seed: u64,
    /// Zipfian exponent over the query universe (≈1.1 is a realistic
    /// hot-query skew).
    pub zipf_exponent: f64,
    /// Analyst 0 issues a commit every this-many requests (0 = a pure
    /// read-only workload).
    pub update_every: usize,
    /// The view every analyst queries.
    pub view: String,
    /// One tenant name per analyst, cycled — `analysts` beyond the
    /// list reuse it modulo its length.
    pub tenants: Vec<String>,
    /// Honor the server's `retry_after_ms` hints: after a load-shaped
    /// rejection the analyst sleeps the hinted backoff (capped at
    /// [`MAX_HONORED_BACKOFF_MS`]) before its next request, instead of
    /// hammering the door in a tight loop.
    pub honor_retry_hints: bool,
}

/// Cap on one honored backoff, so a pathological hint cannot stall a
/// test run.
pub const MAX_HONORED_BACKOFF_MS: u64 = 20;

impl TrafficConfig {
    /// A small deterministic default over view `view`.
    #[must_use]
    pub fn new(view: &str) -> Self {
        TrafficConfig {
            analysts: 4,
            requests_per_analyst: 50,
            seed: 1982,
            zipf_exponent: 1.1,
            update_every: 10,
            view: view.to_string(),
            tenants: vec!["tenant".to_string()],
            honor_retry_hints: false,
        }
    }

    /// Set the analyst count.
    #[must_use]
    pub fn analysts(mut self, n: usize) -> Self {
        self.analysts = n;
        self
    }

    /// Set requests per analyst.
    #[must_use]
    pub fn requests_per_analyst(mut self, n: usize) -> Self {
        self.requests_per_analyst = n;
        self
    }

    /// Set the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the writer cadence (0 disables writes).
    #[must_use]
    pub fn update_every(mut self, n: usize) -> Self {
        self.update_every = n;
        self
    }

    /// Set the tenant cycle.
    #[must_use]
    pub fn tenants(mut self, tenants: &[&str]) -> Self {
        self.tenants = tenants.iter().map(|t| (*t).to_string()).collect();
        self
    }

    /// Enable or disable honoring the server's retry hints.
    #[must_use]
    pub fn honor_retry_hints(mut self, honor: bool) -> Self {
        self.honor_retry_hints = honor;
        self
    }

    fn tenant_for(&self, analyst: usize) -> &str {
        if self.tenants.is_empty() {
            "tenant"
        } else {
            &self.tenants[analyst % self.tenants.len()]
        }
    }
}

/// The fixed query universe the Zipfian ranks: summaries over the
/// census fixture's checked attributes, hottest first.
#[must_use]
pub fn census_query_universe() -> Vec<Query> {
    let mut universe = Vec::new();
    for attr in sdbms_testkit::CENSUS_ATTRS {
        for function in sdbms_testkit::checked_functions() {
            universe.push(Query::summary(attr, function));
        }
    }
    // A couple of point reads at the cold tail.
    universe.push(Query::Row { index: 0 });
    universe.push(Query::Row { index: 7 });
    universe
}

/// One analyst's recorded outcome for one request.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A successful response plus its latency in microseconds.
    Ok(Box<Response>, u64),
    /// A typed rejection (by display string, so the record is `Clone`)
    /// plus the server's advisory backoff hint, captured **before**
    /// the error is stringified — `None` for non-load rejections.
    Rejected {
        /// The error's display rendering.
        error: String,
        /// The `retry_after_ms` hint, if the rejection carried one.
        retry_after_ms: Option<u64>,
    },
}

/// What one traffic run produced, per analyst and in aggregate.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Every analyst's outcomes in issue order (`outcomes[i][j]` is
    /// analyst `i`'s `j`-th request).
    pub outcomes: Vec<Vec<Outcome>>,
    /// Successful-response latencies in microseconds, sorted.
    pub latencies_us: Vec<u64>,
    /// Successful responses.
    pub completed: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub overloaded: u64,
    /// Requests rejected with [`ServeError::QuotaExceeded`].
    pub quota_rejected: u64,
    /// Requests shed by brownout or a fast-failing circuit breaker.
    pub shed: u64,
    /// Requests that tripped their deadline or were cancelled.
    pub budget_tripped: u64,
    /// Backoffs the analysts actually honored (always 0 unless
    /// [`TrafficConfig::honor_retry_hints`] is set).
    pub backoffs_honored: u64,
    /// Responses served from the front cache.
    pub front_cache_hits: u64,
    /// Wall-clock duration of the whole run, microseconds.
    pub wall_us: u64,
    /// Responses per second of wall clock.
    pub throughput_rps: f64,
}

impl TrafficReport {
    /// Nearest-rank percentile over the successful latencies.
    #[must_use]
    pub fn latency_us(&self, pct: f64) -> u64 {
        sdbms_testkit::percentile(&self.latencies_us, pct)
    }

    /// Fraction of successful responses served from the front cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.front_cache_hits as f64 / self.completed as f64
        }
    }
}

/// One planned request in an analyst's schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A read query.
    Query(Query),
    /// An update batch (the writer analyst, on its cadence).
    Commit(Vec<BatchOp>),
}

/// The exact request sequence analyst `analyst` issues under `cfg`.
/// [`run_traffic`] executes precisely this schedule, so a differential
/// oracle can regenerate it to learn which logical request produced
/// each recorded outcome.
#[must_use]
pub fn request_schedule(cfg: &TrafficConfig, universe: &[Query], analyst: usize) -> Vec<Request> {
    let zipf = Zipfian::new(universe.len(), cfg.zipf_exponent);
    let mut rng = SplitMix64::new(cfg.seed ^ analyst as u64);
    (0..cfg.requests_per_analyst)
        .map(|step| next_request(cfg, universe, &zipf, &mut rng, analyst, step))
        .collect()
}

fn next_request(
    cfg: &TrafficConfig,
    universe: &[Query],
    zipf: &Zipfian,
    rng: &mut SplitMix64,
    analyst: usize,
    step: usize,
) -> Request {
    let writes =
        cfg.update_every > 0 && analyst == 0 && step % cfg.update_every == cfg.update_every - 1;
    if writes {
        let mut state = rng.next_u64();
        let update = seeded_income_update(&mut state);
        return Request::Commit(vec![update.batch_op()]);
    }
    Request::Query(universe[zipf.sample(rng)].clone())
}

/// Drive `server` with `cfg`'s closed-loop workload and collect the
/// report. Sessions are opened before and closed after; the server
/// keeps running.
#[must_use]
pub fn run_traffic(server: &Server, cfg: &TrafficConfig) -> TrafficReport {
    let universe = census_query_universe();
    let start = Instant::now();
    let mut per_analyst: HashMap<usize, Vec<Outcome>> = HashMap::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for analyst in 0..cfg.analysts {
            let schedule = request_schedule(cfg, &universe, analyst);
            let handle = scope.spawn(move || {
                let mut outcomes = Vec::with_capacity(schedule.len());
                let session = match server.open_session(cfg.tenant_for(analyst), &cfg.view) {
                    Ok(s) => s,
                    Err(e) => {
                        outcomes.push(Outcome::Rejected {
                            error: e.to_string(),
                            retry_after_ms: e.retry_after_ms(),
                        });
                        return (analyst, outcomes);
                    }
                };
                for request in schedule {
                    let issued = Instant::now();
                    let result = match request {
                        Request::Query(query) => server.query(session, query),
                        Request::Commit(ops) => server.commit(session, ops),
                    };
                    let latency_us = issued.elapsed().as_micros() as u64;
                    match result {
                        Ok(resp) => outcomes.push(Outcome::Ok(Box::new(resp), latency_us)),
                        Err(e) => {
                            // Capture the typed hint before stringifying.
                            let retry_after_ms = e.retry_after_ms();
                            if cfg.honor_retry_hints {
                                if let Some(ms) = retry_after_ms {
                                    std::thread::sleep(std::time::Duration::from_millis(
                                        ms.min(MAX_HONORED_BACKOFF_MS),
                                    ));
                                }
                            }
                            outcomes.push(Outcome::Rejected {
                                error: e.to_string(),
                                retry_after_ms,
                            });
                        }
                    }
                }
                let _ = server.close_session(session);
                (analyst, outcomes)
            });
            handles.push(handle);
        }
        for handle in handles {
            if let Ok((analyst, outcomes)) = handle.join() {
                per_analyst.insert(analyst, outcomes);
            }
        }
    });
    let wall_us = start.elapsed().as_micros() as u64;
    let mut outcomes = Vec::with_capacity(cfg.analysts);
    for analyst in 0..cfg.analysts {
        outcomes.push(per_analyst.remove(&analyst).unwrap_or_default());
    }
    summarize(outcomes, wall_us, cfg.honor_retry_hints)
}

fn summarize(outcomes: Vec<Vec<Outcome>>, wall_us: u64, honored_hints: bool) -> TrafficReport {
    let mut latencies_us = Vec::new();
    let mut completed = 0u64;
    let mut overloaded = 0u64;
    let mut quota_rejected = 0u64;
    let mut shed = 0u64;
    let mut budget_tripped = 0u64;
    let mut backoffs_honored = 0u64;
    let mut front_cache_hits = 0u64;
    for outcome in outcomes.iter().flatten() {
        match outcome {
            Outcome::Ok(resp, lat) => {
                completed += 1;
                latencies_us.push(*lat);
                if resp.served == Served::FrontCache {
                    front_cache_hits += 1;
                }
            }
            // Rejections are recorded by display string (the error is
            // not Clone); these fragments are fixed by the Display
            // impls in `error.rs`, which has tests pinning them.
            Outcome::Rejected {
                error,
                retry_after_ms,
            } => {
                if error.contains("queue full") {
                    overloaded += 1;
                } else if error.contains("out of quota") {
                    quota_rejected += 1;
                } else if error.contains("brownout") || error.contains("circuit breaker") {
                    shed += 1;
                } else if error.contains("deadline exceeded") || error.contains("cancelled") {
                    budget_tripped += 1;
                }
                if honored_hints && retry_after_ms.is_some() {
                    backoffs_honored += 1;
                }
            }
        }
    }
    latencies_us.sort_unstable();
    let throughput_rps = if wall_us == 0 {
        0.0
    } else {
        completed as f64 * 1_000_000.0 / wall_us as f64
    };
    TrafficReport {
        outcomes,
        latencies_us,
        completed,
        overloaded,
        quota_rejected,
        shed,
        budget_tripped,
        backoffs_honored,
        front_cache_hits,
        wall_us,
        throughput_rps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_is_stable_and_nonempty() {
        let u = census_query_universe();
        assert!(u.len() >= 10);
        assert_eq!(u, census_query_universe());
    }

    #[test]
    fn writer_schedule_is_deterministic() {
        let cfg = TrafficConfig::new("v")
            .update_every(5)
            .requests_per_analyst(20);
        let universe = census_query_universe();
        let a = request_schedule(&cfg, &universe, 0);
        let b = request_schedule(&cfg, &universe, 0);
        assert_eq!(a, b);
        for (step, request) in a.iter().enumerate() {
            let is_write = matches!(request, Request::Commit(_));
            assert_eq!(is_write, step % 5 == 4, "writes land on the cadence");
        }
        // A different analyst draws a different (but also stable) mix.
        let other = request_schedule(&cfg, &universe, 1);
        assert!(other.iter().all(|r| matches!(r, Request::Query(_))));
        assert_ne!(a, other);
    }

    #[test]
    fn report_percentiles_and_hit_rate() {
        let report = summarize(Vec::new(), 1, false);
        assert_eq!(report.completed, 0);
        assert_eq!(report.hit_rate(), 0.0);
        assert_eq!(report.latency_us(99.0), 0);
    }

    #[test]
    fn summarize_classifies_rejections_and_counts_honored_backoffs() {
        let rejected = |error: &str, hint: Option<u64>| Outcome::Rejected {
            error: error.to_string(),
            retry_after_ms: hint,
        };
        let outcomes = vec![vec![
            rejected("request queue full (4 slots); retry in ~2ms", Some(2)),
            rejected(
                "tenant \"t\" out of quota (balance -1 milli-units)",
                Some(7),
            ),
            rejected("shedding load (brownout tier 1); retry in ~3ms", Some(3)),
            rejected(
                "circuit breaker open for view \"v\"; retry in ~5ms",
                Some(5),
            ),
            rejected("deadline exceeded", None),
            rejected("request cancelled", None),
        ]];
        let honoring = summarize(outcomes.clone(), 1, true);
        assert_eq!(honoring.overloaded, 1);
        assert_eq!(honoring.quota_rejected, 1);
        assert_eq!(honoring.shed, 2);
        assert_eq!(honoring.budget_tripped, 2);
        assert_eq!(honoring.backoffs_honored, 4, "every hinted rejection");

        let ignoring = summarize(outcomes, 1, false);
        assert_eq!(ignoring.backoffs_honored, 0);
        assert_eq!(ignoring.shed, 2);
    }
}
