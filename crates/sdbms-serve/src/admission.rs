//! Per-tenant admission control: token buckets charged in exact
//! integer cost units through the existing I/O accounting.
//!
//! Each tenant owns a bucket of cost **milli-units** that refills at a
//! fixed rate per logical tick (one tick per submitted request,
//! server-wide — deterministic, no wall clock). Admission is checked
//! *before* a request is queued: a non-positive balance is a typed
//! [`ServeError::QuotaExceeded`], so a hot tenant is turned away at
//! the door instead of occupying queue slots and workers. After a
//! request executes, its *actual* cost — the [`CostModel`] price of
//! the [`IoSnapshot`] its scoped counters recorded — is debited, which
//! may overdraw the bucket (the next admission then fails until the
//! refill catches up). Charging actuals keeps the ledger honest:
//! the sum of per-response costs equals the tenant's debited total
//! exactly, which the quota tests assert to the milli-unit.

use std::collections::HashMap;

use sdbms_storage::{CostModel, IoSnapshot};

use crate::error::ServeError;

/// Token-bucket sizing for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity in cost milli-units (also the starting
    /// balance).
    pub capacity_milli: u64,
    /// Milli-units refilled per logical tick, capped at capacity.
    pub refill_per_tick_milli: u64,
    /// The minimum charge for a request the engine actually executed.
    /// The buffer pool makes resident reads register zero priced I/O
    /// (`pool_hits` are free in the [`CostModel`]), so without a floor
    /// a tenant hammering warm data would never drain its bucket.
    /// Front-cache hits stay free — cacheable behavior is rewarded.
    pub min_charge_milli: u64,
}

impl QuotaConfig {
    /// Effectively no quota: a bucket so deep no workload drains it.
    #[must_use]
    pub fn unlimited() -> Self {
        QuotaConfig {
            capacity_milli: u64::MAX / 4,
            refill_per_tick_milli: u64::MAX / 4,
            min_charge_milli: 100,
        }
    }
}

impl Default for QuotaConfig {
    /// A generous default: 2 000 cost units of burst, refilling 20
    /// units per request tick, 0.1 units minimum per executed request.
    fn default() -> Self {
        QuotaConfig {
            capacity_milli: 2_000_000,
            refill_per_tick_milli: 20_000,
            min_charge_milli: 100,
        }
    }
}

/// A tenant's running account, reported by
/// [`crate::Server::tenant_usage`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Exact merge of every admitted request's I/O counters.
    pub io: IoSnapshot,
    /// Total cost debited, in milli-units.
    pub charged_milli: u64,
    /// Requests admitted past the bucket check.
    pub admitted: u64,
    /// Requests rejected with [`ServeError::QuotaExceeded`].
    pub rejected: u64,
}

struct Bucket {
    balance_milli: i64,
    last_refill_tick: u64,
    usage: TenantUsage,
}

/// The admission controller: one token bucket and usage ledger per
/// tenant, created on first sight at full balance.
pub struct AdmissionController {
    quota: QuotaConfig,
    tenants: HashMap<String, Bucket>,
}

impl AdmissionController {
    /// A controller applying `quota` to every tenant.
    #[must_use]
    pub fn new(quota: QuotaConfig) -> Self {
        AdmissionController {
            quota,
            tenants: HashMap::new(),
        }
    }

    fn bucket(&mut self, tenant: &str) -> &mut Bucket {
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                balance_milli: self.quota.capacity_milli.min(i64::MAX as u64) as i64,
                last_refill_tick: 0,
                usage: TenantUsage::default(),
            })
    }

    fn refill(quota: &QuotaConfig, b: &mut Bucket, now: u64) {
        let elapsed = now.saturating_sub(b.last_refill_tick);
        b.last_refill_tick = b.last_refill_tick.max(now);
        if elapsed == 0 {
            return;
        }
        let refill = elapsed.saturating_mul(quota.refill_per_tick_milli);
        let cap = quota.capacity_milli.min(i64::MAX as u64) as i64;
        b.balance_milli = b
            .balance_milli
            .saturating_add(refill.min(i64::MAX as u64) as i64)
            .min(cap);
    }

    /// Admit or reject a request from `tenant` at logical time `now`.
    /// Refills first; rejects iff the refilled balance is non-positive.
    pub fn try_admit(&mut self, tenant: &str, now: u64) -> Result<(), ServeError> {
        let quota = self.quota;
        let b = self.bucket(tenant);
        Self::refill(&quota, b, now);
        if b.balance_milli <= 0 {
            b.usage.rejected += 1;
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.to_string(),
                balance_milli: b.balance_milli,
                // Ticks-to-positive is known here; the server rescales
                // it to wall milliseconds with its service-time EMA.
                retry_after_ms: Self::ticks_until_positive_from(&quota, b.balance_milli),
            });
        }
        b.usage.admitted += 1;
        Ok(())
    }

    /// Debit an executed request's actual cost and fold its counters
    /// into the tenant's ledger. May overdraw the bucket.
    pub fn charge(&mut self, tenant: &str, io: &IoSnapshot, cost_milli: u64) {
        let b = self.bucket(tenant);
        b.balance_milli = b
            .balance_milli
            .saturating_sub(cost_milli.min(i64::MAX as u64) as i64);
        b.usage.io.merge(io);
        b.usage.charged_milli += cost_milli;
    }

    /// Logical ticks of refill needed to bring `balance_milli` back
    /// above zero: `ceil((1 - balance) / refill)`. Saturates at a
    /// large bound when refill is zero (the bucket will never refill —
    /// "retry much later" is the honest hint).
    fn ticks_until_positive_from(quota: &QuotaConfig, balance_milli: i64) -> u64 {
        if balance_milli > 0 {
            return 0;
        }
        let deficit = 1u64.saturating_add(balance_milli.unsigned_abs());
        if quota.refill_per_tick_milli == 0 {
            return u64::MAX / 2;
        }
        deficit.div_ceil(quota.refill_per_tick_milli)
    }

    /// Logical ticks until `tenant`'s bucket refills past zero (0 for
    /// a positive balance or a never-seen tenant).
    #[must_use]
    pub fn ticks_until_positive(&self, tenant: &str) -> u64 {
        Self::ticks_until_positive_from(&self.quota, self.balance_milli(tenant))
    }

    /// A tenant's ledger (zeroed default for a never-seen tenant).
    #[must_use]
    pub fn usage(&self, tenant: &str) -> TenantUsage {
        self.tenants
            .get(tenant)
            .map(|b| b.usage.clone())
            .unwrap_or_default()
    }

    /// Current bucket balance in milli-units (full for a never-seen
    /// tenant).
    #[must_use]
    pub fn balance_milli(&self, tenant: &str) -> i64 {
        self.tenants
            .get(tenant)
            .map(|b| b.balance_milli)
            .unwrap_or(self.quota.capacity_milli.min(i64::MAX as u64) as i64)
    }

    /// Every tenant seen so far, sorted by name.
    #[must_use]
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("quota", &self.quota)
            .field("tenants", &self.tenants.len())
            .finish()
    }
}

/// Convenience: the default cost model priced against a snapshot.
#[must_use]
pub fn default_cost_milli(io: &IoSnapshot) -> u64 {
    CostModel::default().cost_milli(io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(pages: u64) -> IoSnapshot {
        IoSnapshot {
            page_reads: pages,
            ..IoSnapshot::default()
        }
    }

    #[test]
    fn fresh_tenant_starts_full_and_admits() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 5_000,
            refill_per_tick_milli: 0,
            min_charge_milli: 0,
        });
        assert!(ac.try_admit("t", 0).is_ok());
        assert_eq!(ac.balance_milli("t"), 5_000);
    }

    #[test]
    fn charges_drain_and_rejections_are_typed() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 2_500,
            refill_per_tick_milli: 0,
            min_charge_milli: 0,
        });
        assert!(ac.try_admit("t", 0).is_ok());
        ac.charge("t", &io(3), 3_000); // overdraw: 2500 - 3000 = -500
        match ac.try_admit("t", 1) {
            Err(ServeError::QuotaExceeded {
                tenant,
                balance_milli,
                ..
            }) => {
                assert_eq!(tenant, "t");
                assert_eq!(balance_milli, -500);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        let u = ac.usage("t");
        assert_eq!(u.admitted, 1);
        assert_eq!(u.rejected, 1);
        assert_eq!(u.charged_milli, 3_000);
        assert_eq!(u.io.page_reads, 3);
    }

    #[test]
    fn refill_restores_admission_deterministically() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 1_000,
            refill_per_tick_milli: 100,
            min_charge_milli: 0,
        });
        assert!(ac.try_admit("t", 0).is_ok());
        ac.charge("t", &io(2), 1_500); // balance -500
        assert!(ac.try_admit("t", 1).is_err(), "-500 + 100 = -400");
        assert!(ac.try_admit("t", 5).is_err(), "-400 + 400 = 0, still ≤ 0");
        assert!(ac.try_admit("t", 6).is_ok(), "one more tick goes positive");
        // Refill never exceeds capacity, however long the gap.
        assert!(ac.try_admit("t", 1_000_000).is_ok());
        assert_eq!(ac.balance_milli("t"), 1_000);
    }

    #[test]
    fn refill_caps_at_capacity() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 1_000,
            refill_per_tick_milli: 100,
            min_charge_milli: 0,
        });
        assert!(ac.try_admit("t", 0).is_ok());
        ac.charge("t", &io(1), 400);
        assert!(ac.try_admit("t", 50).is_ok());
        assert_eq!(ac.balance_milli("t"), 1_000, "capped, not 600 + 5000");
    }

    #[test]
    fn tenants_are_isolated() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 1_000,
            refill_per_tick_milli: 0,
            min_charge_milli: 0,
        });
        assert!(ac.try_admit("hot", 0).is_ok());
        ac.charge("hot", &io(9), 50_000);
        assert!(ac.try_admit("hot", 1).is_err());
        assert!(ac.try_admit("calm", 1).is_ok(), "another tenant unaffected");
        assert_eq!(ac.usage("calm").rejected, 0);
        assert_eq!(ac.tenants(), vec!["calm".to_string(), "hot".to_string()]);
    }

    #[test]
    fn retry_hint_counts_refill_ticks_to_positive() {
        let mut ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 1_000,
            refill_per_tick_milli: 100,
            min_charge_milli: 0,
        });
        assert_eq!(ac.ticks_until_positive("t"), 0, "full bucket needs none");
        assert!(ac.try_admit("t", 0).is_ok());
        ac.charge("t", &io(1), 1_500); // balance -500
                                       // Needs 501 milli-units → ceil(501/100) = 6 ticks.
        assert_eq!(ac.ticks_until_positive("t"), 6);
        match ac.try_admit("t", 0) {
            Err(ServeError::QuotaExceeded { retry_after_ms, .. }) => {
                assert_eq!(retry_after_ms, 6, "try_admit carries the tick count");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Zero refill: an honest "much later", not a divide-by-zero.
        let ac = AdmissionController::new(QuotaConfig {
            capacity_milli: 10,
            refill_per_tick_milli: 0,
            min_charge_milli: 0,
        });
        assert_eq!(ac.ticks_until_positive("never"), 0);
    }

    #[test]
    fn ledger_sums_exactly() {
        let mut ac = AdmissionController::new(QuotaConfig::unlimited());
        let mut total = IoSnapshot::default();
        let mut charged = 0u64;
        for i in 0..100 {
            assert!(ac.try_admit("t", i).is_ok());
            let s = io(i % 7);
            let c = default_cost_milli(&s);
            ac.charge("t", &s, c);
            total.merge(&s);
            charged += c;
        }
        let u = ac.usage("t");
        assert_eq!(u.io, total);
        assert_eq!(u.charged_milli, charged);
        assert_eq!(u.admitted, 100);
    }
}
