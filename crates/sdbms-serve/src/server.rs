//! The serving layer proper: a thread-pool request loop in front of
//! one [`StatDbms`].
//!
//! Architecture (no new runtime dependencies — a bounded channel and a
//! worker pool):
//!
//! ```text
//!   clients ──► Server::query/commit/repair
//!                 │  1. logical tick       (AtomicU64, one per request)
//!                 │  2. admission check    (token bucket, BEFORE queueing)
//!                 │  3. try_send           (bounded queue → Overloaded)
//!                 ▼
//!            [ sync_channel ] ──► worker threads
//!                                   ├─ reads:  pinned Snapshot + front cache
//!                                   ├─ writes: engine lock → batch commit
//!                                   └─ reply channel back to the caller
//! ```
//!
//! **Read work happens outside the engine lock.** The engine itself
//! ([`StatDbms`]) has single-writer interior caches, so it sits behind
//! a [`Mutex`] — but workers hold that lock only for metadata moments
//! (health/version checks, opening a snapshot) and for writes. Column
//! reads and statistics run against each session's `Arc<Snapshot>`,
//! which is `Send + Sync` and lock-free: a worker re-pins it (a cheap
//! locked version check) only when the view's version has moved. The
//! snapshot's own memo plus the front [`ResultCache`] keyed by
//! `(view, version, generation, query)` mean a commit invalidates by
//! construction — the next read simply keys differently.
//!
//! **Back-pressure is typed and happens at the door.** Admission
//! control rejects before a queue slot is taken
//! ([`ServeError::QuotaExceeded`]); a full queue rejects instead of
//! blocking ([`ServeError::Overloaded`]). Accepted requests always get
//! exactly one reply.
//!
//! **Accounting is exact.** Each request's engine I/O runs inside its
//! own [`IoScope`]; the recorded counters are priced through the
//! shared [`CostModel`] in integer milli-units and debited from the
//! tenant's bucket, subject to the quota's per-request floor
//! ([`QuotaConfig::min_charge_milli`]) — buffer-pool hits are free in
//! the cost model, so without a floor a tenant hammering resident data
//! would never drain its bucket. Front-cache hits alone are billed
//! zero. The sum of per-response `io`/`cost_milli` equals the tenant
//! ledger to the unit — the quota tests assert this under an 8-thread
//! hammer. Failed requests are not billed (the client never saw a
//! result).
//!
//! **Every request carries a budget.** A [`CancelToken`] is minted at
//! the door (the configured default op-budget deadline, or a
//! caller-supplied token via [`Server::query_with_token`]) and made
//! ambient inside the worker with a [`BudgetScope`], so every device
//! operation the engine performs charges it. A trip surfaces as
//! [`ServeError::DeadlineExceeded`] / [`ServeError::Cancelled`] —
//! never a partial result, never a cache entry, and a tripped commit
//! aborts to its exact pre-batch state. Around the budget sit the
//! lifecycle guards: a per-view **circuit breaker** (consecutive
//! deadline trips or engine faults open it; compute requests then
//! fast-fail with a `retry_after_ms` hint while cache hits and
//! degraded fallbacks keep serving) and a **brownout controller**
//! (sustained in-flight pressure sheds cold uncached reads first,
//! then non-priority tenants, never likely cache hits). DESIGN.md §16
//! has the full state diagrams.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use sdbms_core::{
    AccuracyPolicy, BatchOp, ComputeSource, CoreError, Snapshot, StatDbms, StatFunction,
    SummaryValue, ViewHealth,
};
use sdbms_data::Value;
use sdbms_storage::{BudgetScope, CancelToken, CostModel, IoScope, IoSnapshot, IoStats};

use crate::admission::{AdmissionController, QuotaConfig, TenantUsage};
use crate::breaker::{BreakerAdmit, BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
use crate::brownout::{
    should_shed, BrownoutConfig, BrownoutController, BrownoutStats, BrownoutTier,
};
use crate::cache::{FrontCacheStats, QueryKey, ResultCache};
use crate::error::{Result, ServeError};

/// Identifies one open analyst session on a [`Server`].
pub type SessionId = u64;

/// Server sizing knobs. [`Default`] gives a small in-process server
/// suitable for tests; production-shaped experiments override.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with
    /// [`ServeError::Overloaded`] rather than blocking the caller.
    pub queue_capacity: usize,
    /// Front-cache capacity in entries; `0` disables the cache.
    pub cache_capacity: usize,
    /// Front-cache TTL in logical ticks (one tick per submitted
    /// request, server-wide).
    pub cache_ttl: u64,
    /// Per-tenant admission quota.
    pub quota: QuotaConfig,
    /// Default per-request deadline as an **op budget** (deterministic
    /// device-operation units, see `sdbms_storage::budget`); `None`
    /// runs requests unbounded. Individual requests override via
    /// [`Server::query_with_token`].
    pub deadline_ops: Option<u64>,
    /// Tenants exempt from brownout shedding at every tier.
    pub priority_tenants: Vec<String>,
    /// Per-view circuit-breaker sizing (disabled by default).
    pub breaker: BreakerConfig,
    /// Brownout shed watermarks (disabled by default).
    pub brownout: BrownoutConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_ttl: 50_000,
            quota: QuotaConfig::default(),
            deadline_ops: None,
            priority_tenants: Vec::new(),
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The same configuration with the front cache disabled — the
    /// uncached baseline the serving experiment compares against.
    #[must_use]
    pub fn uncached(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }

    /// Worker count from the `SDBMS_WORKERS` environment variable
    /// (the same knob the executor and CI matrix use), else `default`.
    #[must_use]
    pub fn workers_from_env(mut self, default: usize) -> Self {
        self.workers = std::env::var("SDBMS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w > 0)
            .unwrap_or(default);
        self
    }

    /// Set the default per-request deadline, in op-budget units.
    #[must_use]
    pub fn deadline_ops(mut self, ops: u64) -> Self {
        self.deadline_ops = Some(ops);
        self
    }

    /// Set the per-view circuit-breaker sizing.
    #[must_use]
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Set the brownout shed watermarks.
    #[must_use]
    pub fn brownout(mut self, brownout: BrownoutConfig) -> Self {
        self.brownout = brownout;
        self
    }

    /// Set the tenants brownout never sheds.
    #[must_use]
    pub fn priority_tenants(mut self, tenants: &[&str]) -> Self {
        self.priority_tenants = tenants.iter().map(|t| (*t).to_string()).collect();
        self
    }
}

/// A read request. Its canonical rendering is the query component of
/// the front-cache key, so two textually different constructions of
/// the same logical query share an entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `function(attribute)` through the snapshot (and front cache).
    Summary {
        /// Attribute name.
        attribute: String,
        /// Statistical function to apply.
        function: StatFunction,
    },
    /// One full column of the pinned version.
    Column {
        /// Attribute name.
        attribute: String,
    },
    /// One full row of the pinned version.
    Row {
        /// Row index.
        index: usize,
    },
}

impl Query {
    /// Convenience constructor for the common summary form.
    #[must_use]
    pub fn summary(attribute: &str, function: StatFunction) -> Self {
        Query::Summary {
            attribute: attribute.to_string(),
            function,
        }
    }

    /// Canonical cache-key rendering, e.g. `"mean(INCOME)"`.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            Query::Summary {
                attribute,
                function,
            } => format!("{function}({attribute})"),
            Query::Column { attribute } => format!("column({attribute})"),
            Query::Row { index } => format!("row({index})"),
        }
    }
}

/// The data a response carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A summary statistic.
    Summary(SummaryValue),
    /// A full column.
    Column(Vec<Value>),
    /// A full row.
    Row(Vec<Value>),
    /// A committed update batch.
    Committed {
        /// Rows matched across the batch's operations.
        rows_matched: usize,
        /// Cells actually changed.
        cells_changed: usize,
    },
    /// A completed repair.
    Repaired {
        /// True when the store was regenerated from the archive.
        store_regenerated: bool,
        /// True when the Summary DB was reset (its generation counter
        /// restarted — the server purged the view's cache entries).
        summary_reset: bool,
    },
}

/// How a response was produced — the serving layer's provenance tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Straight from the front result cache: zero engine I/O.
    FrontCache,
    /// Computed against the session's pinned snapshot.
    Computed,
    /// Computed through the degraded path (raw archive); correct but
    /// never admitted to the front cache.
    Fallback,
    /// A write (commit or repair).
    Write,
}

/// One reply. `canonical_bytes` is what the differential harness
/// byte-compares against a serial uncached replay.
#[derive(Debug, Clone)]
pub struct Response {
    /// The result data.
    pub payload: Payload,
    /// Provenance: cache hit, fresh compute, degraded fallback, write.
    pub served: Served,
    /// View the request ran against.
    pub view: String,
    /// Store version the response reflects.
    pub version: u64,
    /// Summary-DB generation the response reflects.
    pub generation: u64,
    /// Engine I/O this request performed (zero for cache hits).
    pub io: IoSnapshot,
    /// The I/O priced through the cost model, in milli-units (raised
    /// to the quota's per-request floor for executed requests; zero
    /// for front-cache hits) — exactly what was debited from the
    /// tenant's bucket.
    pub cost_milli: u64,
    /// The logical tick assigned at submission.
    pub tick: u64,
}

impl Response {
    /// A canonical byte rendering of the payload, independent of how
    /// it was served. Two responses carrying the same logical result
    /// produce identical bytes — the equivalence the differential
    /// harness checks.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        format!("{:?}", self.payload).into_bytes()
    }
}

/// One committed batch, recorded in commit order. The log order equals
/// the store-version order because the record is appended while the
/// commit still holds the engine's write lock.
#[derive(Debug, Clone)]
pub struct CommitRecord {
    /// View committed to.
    pub view: String,
    /// The staged operations, in order.
    pub ops: Vec<BatchOp>,
    /// The view's store version after this commit.
    pub version_after: u64,
    /// Rows matched across the batch.
    pub rows_matched: usize,
    /// Cells changed across the batch.
    pub cells_changed: usize,
}

/// Aggregate server counters, via [`Server::metrics`]. Reading them
/// never touches the engine lock, so they stay observable while a
/// write or repair is in flight (epoch diagnostics, which do need the
/// engine, live in [`Server::epoch_status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Successful responses (all kinds).
    pub served: u64,
    /// Committed batches.
    pub commits: u64,
    /// Completed repairs.
    pub repairs: u64,
    /// Requests rejected because the queue was full.
    pub overload_rejections: u64,
    /// Requests rejected at admission (all tenants).
    pub quota_rejections: u64,
    /// Requests that tripped their deadline budget mid-execution.
    pub deadline_trips: u64,
    /// Requests cancelled by their caller mid-execution.
    pub cancelled: u64,
    /// Requests fast-failed by an open circuit breaker.
    pub breaker_fast_fails: u64,
    /// Circuit-breaker transition counters across all views.
    pub breaker: BreakerStats,
    /// Brownout shed and transition counters.
    pub brownout: BrownoutStats,
    /// Requests currently queued or executing.
    pub in_flight: u64,
    /// Currently open sessions.
    pub open_sessions: usize,
}

enum JobKind {
    Query(Query),
    Commit(Vec<BatchOp>),
    Repair,
}

struct Job {
    session: SessionId,
    tenant: String,
    view: String,
    tick: u64,
    kind: JobKind,
    /// The request's cooperative budget: carried from the door through
    /// the worker into every engine/storage operation the job runs.
    token: CancelToken,
    reply: SyncSender<Result<Response>>,
}

struct SessionState {
    tenant: String,
    view: String,
    /// The session's pinned snapshot; refreshed lazily when the view's
    /// version moves. `None` until the first read.
    snap: Option<Arc<Snapshot>>,
    /// Exact merge of this session's per-request I/O.
    io: IoSnapshot,
    served: u64,
}

#[derive(Default)]
struct MetricCounters {
    served: AtomicU64,
    commits: AtomicU64,
    repairs: AtomicU64,
    overloaded: AtomicU64,
    quota_rejected: AtomicU64,
    deadline_trips: AtomicU64,
    cancelled: AtomicU64,
    breaker_fast_fails: AtomicU64,
}

struct Inner {
    dbms: Mutex<StatDbms>,
    cache: Mutex<ResultCache>,
    admission: Mutex<AdmissionController>,
    sessions: Mutex<HashMap<SessionId, SessionState>>,
    commit_log: Mutex<Vec<CommitRecord>>,
    breaker: Mutex<CircuitBreaker>,
    brownout: Mutex<BrownoutController>,
    /// Logical clock: one tick per submitted request (including
    /// rejected ones — offered load drives quota refill).
    clock: AtomicU64,
    next_session: AtomicU64,
    /// Requests queued or executing right now — the brownout
    /// controller's pressure signal (the mpsc queue's depth is not
    /// observable directly).
    in_flight: AtomicU64,
    /// Exponential moving average of per-request service time in
    /// microseconds; feeds the advisory `retry_after_ms` hints. A
    /// hint, not a behavior input: responses are identical whatever
    /// this reads.
    ema_service_us: AtomicU64,
    cost_model: CostModel,
    /// Minimum debit for an engine-executed request (see
    /// [`QuotaConfig::min_charge_milli`]).
    min_charge_milli: u64,
    queue_capacity: usize,
    workers: usize,
    deadline_ops: Option<u64>,
    priority_tenants: Vec<String>,
    metrics: MetricCounters,
}

/// The serving front end. Construct with [`Server::start`]; requests
/// are synchronous from the caller's perspective (submit, block on the
/// reply channel) while the worker pool overlaps their execution.
pub struct Server {
    inner: Arc<Inner>,
    /// `None` once shutdown began; dropping the last sender
    /// disconnects the channel and the workers drain and exit.
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Start a server owning `dbms`, spawning `config.workers` worker
    /// threads over a bounded queue of `config.queue_capacity`.
    #[must_use]
    pub fn start(dbms: StatDbms, config: ServeConfig) -> Self {
        let queue_capacity = config.queue_capacity.max(1);
        let inner = Arc::new(Inner {
            dbms: Mutex::new(dbms),
            cache: Mutex::new(ResultCache::new(config.cache_capacity, config.cache_ttl)),
            admission: Mutex::new(AdmissionController::new(config.quota)),
            sessions: Mutex::new(HashMap::new()),
            commit_log: Mutex::new(Vec::new()),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker)),
            brownout: Mutex::new(BrownoutController::new(config.brownout)),
            clock: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
            in_flight: AtomicU64::new(0),
            ema_service_us: AtomicU64::new(0),
            cost_model: CostModel::default(),
            min_charge_milli: config.quota.min_charge_milli,
            queue_capacity,
            workers: config.workers.max(1),
            deadline_ops: config.deadline_ops,
            priority_tenants: config.priority_tenants.clone(),
            metrics: MetricCounters::default(),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&inner, &rx))
            })
            .collect();
        Server {
            inner,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        }
    }

    // ---- sessions --------------------------------------------------------

    /// Open a session for `tenant` against `view`. Fails if the view
    /// does not exist. The session pins no snapshot until its first
    /// read.
    pub fn open_session(&self, tenant: &str, view: &str) -> Result<SessionId> {
        // Validate the view up front so a typo fails at open, not on
        // the first query.
        self.inner.dbms.lock().view_version(view)?;
        let id = self.inner.next_session.fetch_add(1, Ordering::SeqCst);
        self.inner.sessions.lock().insert(
            id,
            SessionState {
                tenant: tenant.to_string(),
                view: view.to_string(),
                snap: None,
                io: IoSnapshot::default(),
                served: 0,
            },
        );
        Ok(id)
    }

    /// Close a session, dropping its snapshot pin (releasing its epoch
    /// for reclamation).
    pub fn close_session(&self, session: SessionId) -> Result<()> {
        self.inner
            .sessions
            .lock()
            .remove(&session)
            .map(|_| ())
            .ok_or(ServeError::NoSuchSession(session))
    }

    /// The exact merge of a session's per-request I/O counters.
    pub fn session_io(&self, session: SessionId) -> Result<IoSnapshot> {
        self.inner
            .sessions
            .lock()
            .get(&session)
            .map(|s| s.io)
            .ok_or(ServeError::NoSuchSession(session))
    }

    // ---- requests --------------------------------------------------------

    /// Run a read query on the session's view, under the server's
    /// default deadline (if one is configured).
    pub fn query(&self, session: SessionId, query: Query) -> Result<Response> {
        self.request(session, JobKind::Query(query), self.default_token())
    }

    /// Run a read query under a caller-supplied budget. The caller
    /// keeps a clone of `token` and may `cancel()` it at any point —
    /// the worker observes the trip at the next morsel / device
    /// operation and returns [`ServeError::Cancelled`] instead of a
    /// partial result.
    pub fn query_with_token(
        &self,
        session: SessionId,
        query: Query,
        token: CancelToken,
    ) -> Result<Response> {
        self.request(session, JobKind::Query(query), token)
    }

    /// Commit an update batch on the session's view: the staged ops
    /// are applied transactionally (all or nothing) and the commit is
    /// appended to the server's commit log in version order.
    pub fn commit(&self, session: SessionId, ops: Vec<BatchOp>) -> Result<Response> {
        self.request(session, JobKind::Commit(ops), self.default_token())
    }

    /// Commit under a caller-supplied budget. A trip at any point
    /// before the install swap aborts the batch cleanly — the view
    /// keeps its exact pre-batch state and the lock is released; a
    /// cancelled commit is indistinguishable from an aborted one.
    pub fn commit_with_token(
        &self,
        session: SessionId,
        ops: Vec<BatchOp>,
        token: CancelToken,
    ) -> Result<Response> {
        self.request(session, JobKind::Commit(ops), token)
    }

    /// Repair the session's view and purge its front-cache entries
    /// (repair may reset the Summary-DB generation, the one transition
    /// the monotone cache key cannot express). Repairs always run
    /// unbounded: half-finished recovery work is the one thing a
    /// deadline must not create.
    pub fn repair(&self, session: SessionId) -> Result<Response> {
        self.request(session, JobKind::Repair, CancelToken::unbounded())
    }

    fn default_token(&self) -> CancelToken {
        match self.inner.deadline_ops {
            Some(ops) => CancelToken::with_op_budget(ops),
            None => CancelToken::unbounded(),
        }
    }

    fn request(&self, session: SessionId, kind: JobKind, token: CancelToken) -> Result<Response> {
        let tick = self.inner.clock.fetch_add(1, Ordering::SeqCst);
        let (tenant, view) = {
            let sessions = self.inner.sessions.lock();
            let st = sessions
                .get(&session)
                .ok_or(ServeError::NoSuchSession(session))?;
            (st.tenant.clone(), st.view.clone())
        };
        // Admission happens BEFORE a queue slot is taken: an
        // out-of-quota tenant is turned away at the door and cannot
        // crowd the queue other tenants share.
        if let Err(mut e) = self.inner.admission.lock().try_admit(&tenant, tick) {
            self.inner
                .metrics
                .quota_rejected
                .fetch_add(1, Ordering::SeqCst);
            if let ServeError::QuotaExceeded { retry_after_ms, .. } = &mut e {
                // try_admit filled the field with refill *ticks*;
                // rescale to wall milliseconds with the service EMA.
                *retry_after_ms = self.ticks_to_ms_hint(*retry_after_ms);
            }
            return Err(e);
        }
        // Brownout: under sustained pressure, shed the least valuable
        // work at the door. Likely cache hits always pass (they cost
        // no engine work); priority tenants always pass.
        let in_flight = self.inner.in_flight.load(Ordering::SeqCst);
        let tier = self.inner.brownout.lock().observe(in_flight as usize);
        if tier != BrownoutTier::Normal {
            let priority = self.inner.priority_tenants.contains(&tenant);
            let (is_query, likely_cached) = match &kind {
                JobKind::Query(q) => (
                    true,
                    self.inner
                        .cache
                        .lock()
                        .probe_fresh(&view, &q.canonical(), tick),
                ),
                _ => (false, false),
            };
            if should_shed(tier, priority, is_query, likely_cached) {
                self.inner.brownout.lock().count_shed(tier);
                return Err(ServeError::Brownout {
                    tier: match tier {
                        BrownoutTier::Normal => 0,
                        BrownoutTier::SheddingCold => 1,
                        BrownoutTier::SheddingTenants => 2,
                    },
                    retry_after_ms: self.drain_ms_hint(),
                });
            }
        }
        let tx = self.tx.lock().clone().ok_or(ServeError::ShuttingDown)?;
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            session,
            tenant,
            view,
            tick,
            kind,
            token,
            reply: reply_tx,
        };
        // Reserve the in-flight slot BEFORE the job is visible to a
        // worker: if the increment came after `try_send`, a worker
        // could finish the job and decrement first, wrapping the
        // counter to u64::MAX and tripping the brownout watermarks.
        self.inner.in_flight.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                self.inner.metrics.overloaded.fetch_add(1, Ordering::SeqCst);
                return Err(ServeError::Overloaded {
                    capacity: self.inner.queue_capacity,
                    retry_after_ms: self.drain_ms_hint(),
                });
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(ServeError::ShuttingDown);
            }
        }
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Advisory wall-clock estimate for draining the current backlog:
    /// `in_flight × EMA service time ÷ workers`, floored at 1 ms.
    fn drain_ms_hint(&self) -> u64 {
        let in_flight = self.inner.in_flight.load(Ordering::SeqCst).max(1);
        let ema_us = self.inner.ema_service_us.load(Ordering::SeqCst).max(1);
        (in_flight.saturating_mul(ema_us) / self.inner.workers as u64 / 1_000).max(1)
    }

    /// Advisory conversion of logical refill ticks to wall
    /// milliseconds. One tick advances roughly once per served request,
    /// so the EMA service time divided by the worker count approximates
    /// the tick interval.
    fn ticks_to_ms_hint(&self, ticks: u64) -> u64 {
        let ema_us = self.inner.ema_service_us.load(Ordering::SeqCst).max(1);
        (ticks.saturating_mul(ema_us / self.inner.workers as u64) / 1_000).max(1)
    }

    // ---- observation -----------------------------------------------------

    /// Aggregate counters. Never takes the engine lock, so it is safe
    /// to poll while writes (or a deliberately wedged
    /// [`Server::with_dbms_mut`]) are in flight.
    #[must_use]
    pub fn metrics(&self) -> ServerMetrics {
        let m = &self.inner.metrics;
        ServerMetrics {
            served: m.served.load(Ordering::SeqCst),
            commits: m.commits.load(Ordering::SeqCst),
            repairs: m.repairs.load(Ordering::SeqCst),
            overload_rejections: m.overloaded.load(Ordering::SeqCst),
            quota_rejections: m.quota_rejected.load(Ordering::SeqCst),
            deadline_trips: m.deadline_trips.load(Ordering::SeqCst),
            cancelled: m.cancelled.load(Ordering::SeqCst),
            breaker_fast_fails: m.breaker_fast_fails.load(Ordering::SeqCst),
            breaker: self.inner.breaker.lock().stats(),
            brownout: self.inner.brownout.lock().stats(),
            in_flight: self.inner.in_flight.load(Ordering::SeqCst),
            open_sessions: self.inner.sessions.lock().len(),
        }
    }

    /// The circuit breaker's current state for `view`.
    #[must_use]
    pub fn breaker_state(&self, view: &str) -> BreakerState {
        self.inner.breaker.lock().state(view)
    }

    /// The brownout controller's tier as of its last admission
    /// decision.
    #[must_use]
    pub fn brownout_tier(&self) -> BrownoutTier {
        self.inner.brownout.lock().tier()
    }

    /// The engine's current reclamation epoch and the oldest epoch a
    /// session snapshot still pins; their difference is the pin lag
    /// slow readers impose on store reclamation. Takes the engine
    /// lock briefly.
    #[must_use]
    pub fn epoch_status(&self) -> (u64, Option<u64>) {
        self.inner.dbms.lock().epoch_status()
    }

    /// Front-cache counter snapshot.
    #[must_use]
    pub fn cache_stats(&self) -> FrontCacheStats {
        self.inner.cache.lock().stats()
    }

    /// A tenant's admission ledger.
    #[must_use]
    pub fn tenant_usage(&self, tenant: &str) -> TenantUsage {
        self.inner.admission.lock().usage(tenant)
    }

    /// A tenant's current bucket balance in milli-units.
    #[must_use]
    pub fn tenant_balance_milli(&self, tenant: &str) -> i64 {
        self.inner.admission.lock().balance_milli(tenant)
    }

    /// The commit log so far, in version order.
    #[must_use]
    pub fn commit_log(&self) -> Vec<CommitRecord> {
        self.inner.commit_log.lock().clone()
    }

    /// Run `f` with shared access to the engine (diagnostics and test
    /// oracles; does not go through admission or the queue).
    pub fn with_dbms<R>(&self, f: impl FnOnce(&StatDbms) -> R) -> R {
        f(&self.inner.dbms.lock())
    }

    /// Run `f` with exclusive access to the engine — a maintenance
    /// escape hatch (fault injection, scrubbing, test setup). Any
    /// out-of-band mutation that does not bump the view's version
    /// must be followed by [`Server::purge_view_cache`], or stale
    /// front-cache entries may be served.
    pub fn with_dbms_mut<R>(&self, f: impl FnOnce(&mut StatDbms) -> R) -> R {
        f(&mut self.inner.dbms.lock())
    }

    /// Drop every front-cache entry for `view`, whatever its version.
    pub fn purge_view_cache(&self, view: &str) {
        self.inner.cache.lock().purge_view(view);
    }

    // ---- lifecycle -------------------------------------------------------

    /// Stop accepting requests, drain the queue, join the workers, and
    /// return the engine. Returns `None` only if an outstanding clone
    /// of the server's internals keeps it alive — impossible through
    /// the public API.
    pub fn shutdown(self) -> Option<StatDbms> {
        // Dropping the sender disconnects the channel; workers finish
        // the jobs already queued, then exit.
        *self.tx.lock() = None;
        let handles = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
        // Sessions hold snapshot pins into the engine's epoch
        // registry; release them before handing the engine back.
        self.inner.sessions.lock().clear();
        let Server { inner, .. } = self;
        match Arc::try_unwrap(inner) {
            Ok(inner) => Some(inner.dbms.into_inner()),
            Err(_) => None,
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("queue_capacity", &self.inner.queue_capacity)
            .field("open_sessions", &self.inner.sessions.lock().len())
            .finish()
    }
}

// ---- worker side ---------------------------------------------------------

fn worker_loop(inner: &Arc<Inner>, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself; jobs
        // execute with the queue free for other workers.
        let job = {
            let guard = rx.lock();
            // lint: allow(blocking-under-lock): idling in recv() here is the designed handoff — the lock guards only this receiver, and every worker blocked on it is exactly the idle pool
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel disconnected: shutdown
        };
        let started = Instant::now();
        let result = match &job.kind {
            JobKind::Query(q) => process_query(inner, &job, q),
            JobKind::Commit(ops) => process_commit(inner, &job, ops),
            JobKind::Repair => process_repair(inner, &job),
        };
        // Service-time EMA feeds the retry_after hints only — the
        // wall clock never influences what a response contains.
        update_ema(
            &inner.ema_service_us,
            started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
        match &result {
            Err(ServeError::DeadlineExceeded) => {
                inner.metrics.deadline_trips.fetch_add(1, Ordering::SeqCst);
            }
            Err(ServeError::Cancelled) => {
                inner.metrics.cancelled.fetch_add(1, Ordering::SeqCst);
            }
            _ => {}
        }
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        // A caller that gave up waiting just drops the receiver; the
        // send failure is not an error for the server.
        let _ = job.reply.send(result);
    }
}

/// Fold one service-time sample into the EMA (α = 1/8). Load/store
/// rather than CAS: a lost sample under a race skews a hint by
/// microseconds, which is cheaper than contending on the hot path.
fn update_ema(cell: &AtomicU64, sample_us: u64) {
    let old = cell.load(Ordering::SeqCst);
    let new = if old == 0 {
        sample_us.max(1)
    } else {
        old - old / 8 + sample_us / 8
    };
    cell.store(new.max(1), Ordering::SeqCst);
}

/// Finish a successful request: price its I/O, debit the tenant, fold
/// the counters into the session ledger, and build the response.
fn finish(
    inner: &Inner,
    job: &Job,
    payload: Payload,
    served: Served,
    version: u64,
    generation: u64,
    io: IoSnapshot,
) -> Result<Response> {
    // Front-cache hits are free; anything the engine executed pays at
    // least the quota's floor (resident reads register only pool hits,
    // which the cost model prices at zero).
    let cost_milli = if served == Served::FrontCache {
        0
    } else {
        inner.cost_model.cost_milli(&io).max(inner.min_charge_milli)
    };
    inner.admission.lock().charge(&job.tenant, &io, cost_milli);
    {
        let mut sessions = inner.sessions.lock();
        if let Some(st) = sessions.get_mut(&job.session) {
            st.io.merge(&io);
            st.served += 1;
        }
    }
    inner.metrics.served.fetch_add(1, Ordering::SeqCst);
    Ok(Response {
        payload,
        served,
        view: job.view.clone(),
        version,
        generation,
        io,
        cost_milli,
        tick: job.tick,
    })
}

/// Return the session's pinned snapshot, re-pinning if the view's
/// version has moved since it was taken.
fn refresh_snapshot(inner: &Inner, job: &Job) -> Result<Arc<Snapshot>> {
    let pinned = inner
        .sessions
        .lock()
        .get(&job.session)
        .and_then(|s| s.snap.clone());
    let current = inner.dbms.lock().view_version(&job.view)?;
    if let Some(snap) = pinned {
        if snap.version() == current {
            return Ok(snap);
        }
    }
    let fresh = Arc::new(inner.dbms.lock().snapshot(&job.view)?);
    // A session closed mid-flight just skips the re-pin; the snapshot
    // still answers this one request consistently.
    if let Some(st) = inner.sessions.lock().get_mut(&job.session) {
        st.snap = Some(Arc::clone(&fresh));
    }
    Ok(fresh)
}

fn process_query(inner: &Inner, job: &Job, query: &Query) -> Result<Response> {
    // The request budget governs everything this job does: the scope
    // makes the token ambient, so every device operation the engine
    // performs on this thread charges it.
    let _budget = BudgetScope::enter(job.token.clone());
    // A request that spent its whole budget waiting in the queue stops
    // here, before touching the engine.
    job.token.check().map_err(CoreError::from)?;
    // A fallback-eligible (degraded/repairing) view takes the archive
    // recompute path, which never consults the circuit breaker: the
    // degraded route *is* the safe fallback the breaker would other-
    // wise be protecting us toward. Unrecoverable views go the same
    // way so the engine can surface its typed error.
    let health = inner.dbms.lock().health(&job.view)?;
    if health.can_serve_fallback() || health == ViewHealth::Unrecoverable {
        return process_degraded_query(inner, job, query);
    }
    let snap = refresh_snapshot(inner, job)?;
    let key = QueryKey {
        view: job.view.clone(),
        version: snap.version(),
        generation: snap.summary_generation(),
        query: query.canonical(),
    };
    if let Some(payload) = inner.cache.lock().get(&key, job.tick) {
        // A front-cache hit does zero engine I/O and is billed zero.
        // It also never touches the breaker: a hit proves nothing
        // about the engine's health.
        return finish(
            inner,
            job,
            payload,
            Served::FrontCache,
            snap.version(),
            snap.summary_generation(),
            IoSnapshot::default(),
        );
    }
    // The breaker guards exactly the engine-compute path: cache hits
    // were served above, and an unhealthy view already branched to the
    // degraded path (which keeps serving — ComputeSource::Fallback is
    // the breaker-open answer when health is impaired).
    match inner.breaker.lock().admit(&job.view, job.tick) {
        BreakerAdmit::FastFail { retry_after_ticks } => {
            inner
                .metrics
                .breaker_fast_fails
                .fetch_add(1, Ordering::SeqCst);
            let ema_us = inner.ema_service_us.load(Ordering::SeqCst).max(1);
            return Err(ServeError::BreakerOpen {
                view: job.view.clone(),
                retry_after_ms: (retry_after_ticks.saturating_mul(ema_us / inner.workers as u64)
                    / 1_000)
                    .max(1),
            });
        }
        BreakerAdmit::Allow | BreakerAdmit::Probe => {}
    }
    // Miss: compute against the pinned snapshot inside a per-request
    // I/O scope. The snapshot's raw column/row reads are used (not its
    // memo) so the uncached baseline does the real work every time —
    // the front cache above is what this layer measures.
    let stats = Arc::new(IoStats::default());
    let computed: Result<Payload> = {
        let _scope = IoScope::enter(Arc::clone(&stats));
        compute_payload(&snap, query)
    };
    // The compute's outcome drives the breaker: deadline trips and
    // engine faults count against the view, client cancellations and
    // client mistakes are neutral (see ServeError::is_breaker_failure).
    match &computed {
        Ok(_) => inner.breaker.lock().record_success(&job.view, job.tick),
        Err(e) if e.is_breaker_failure() => {
            inner.breaker.lock().record_failure(&job.view, job.tick);
        }
        Err(_) => {}
    }
    // A budget-tripped compute propagates here: the cache insert below
    // is never reached, so a cancelled request can never poison the
    // front cache with a partial result.
    let payload = computed?;
    inner.cache.lock().insert(key, payload.clone(), job.tick);
    finish(
        inner,
        job,
        payload,
        Served::Computed,
        snap.version(),
        snap.summary_generation(),
        stats.snapshot(),
    )
}

/// The engine compute for one query against a pinned snapshot, run
/// inside the caller's budget and I/O scopes. Split out as a function
/// so its `Result` comes back whole: a `?` inline in `process_query`
/// would return before the breaker could record the outcome.
fn compute_payload(snap: &Snapshot, query: &Query) -> Result<Payload> {
    match query {
        Query::Summary {
            attribute,
            function,
        } => {
            let col = snap.column(attribute)?;
            Ok(Payload::Summary(
                function.compute(&col).map_err(CoreError::from)?,
            ))
        }
        Query::Column { attribute } => Ok(Payload::Column(snap.column(attribute)?)),
        Query::Row { index } => Ok(Payload::Row(snap.row(*index)?)),
    }
}

/// The impaired-view path: route through the engine's own degraded
/// read machinery under the write lock. Whatever comes back is never
/// admitted to the front cache — a fallback answer is correct *now*
/// but not tied to a store version.
fn process_degraded_query(inner: &Inner, job: &Job, query: &Query) -> Result<Response> {
    // Usually entered from process_query with the budget scope already
    // installed; re-entering with the same token is a harmless shadow,
    // and it keeps this function honest if it is ever called directly.
    let _budget = BudgetScope::enter(job.token.clone());
    job.token.check().map_err(CoreError::from)?;
    let stats = Arc::new(IoStats::default());
    let (payload, source, version, generation) = {
        let mut dbms = inner.dbms.lock();
        let _scope = IoScope::enter(Arc::clone(&stats));
        let (payload, source) = match query {
            Query::Summary {
                attribute,
                function,
            } => {
                let (value, source) =
                    dbms.compute(&job.view, attribute, function, AccuracyPolicy::Exact)?;
                (Payload::Summary(value), source)
            }
            Query::Column { attribute } => (
                Payload::Column(dbms.column(&job.view, attribute)?),
                ComputeSource::Computed,
            ),
            Query::Row { index } => (
                Payload::Row(dbms.row(&job.view, *index)?),
                ComputeSource::Computed,
            ),
        };
        (
            payload,
            source,
            dbms.view_version(&job.view)?,
            dbms.view_summary_generation(&job.view)?,
        )
    };
    let served = if source == ComputeSource::Fallback {
        inner.cache.lock().note_fallback_rejection();
        Served::Fallback
    } else {
        Served::Computed
    };
    finish(
        inner,
        job,
        payload,
        served,
        version,
        generation,
        stats.snapshot(),
    )
}

fn process_commit(inner: &Inner, job: &Job, ops: &[BatchOp]) -> Result<Response> {
    // The budget covers staging and the shadow apply. A trip anywhere
    // before the install swap surfaces as a typed error from
    // commit_batch's clean-abort path: pre-batch state intact, lock
    // released, nothing recorded in the commit log.
    let _budget = BudgetScope::enter(job.token.clone());
    job.token.check().map_err(CoreError::from)?;
    let stats = Arc::new(IoStats::default());
    let (report, version_after, generation) = {
        let mut dbms = inner.dbms.lock();
        let _scope = IoScope::enter(Arc::clone(&stats));
        let batch = dbms.begin_batch(&job.view)?;
        for op in ops {
            if let Err(e) = dbms.batch_stage(batch, op.clone()) {
                // A failed abort leaves the batch wedged in the
                // engine — graver than the stage error, so it takes
                // precedence when both fail.
                dbms.abort_batch(batch)?;
                return Err(e.into());
            }
        }
        let report = dbms.commit_batch(batch)?;
        let version_after = dbms.view_version(&job.view)?;
        let generation = dbms.view_summary_generation(&job.view)?;
        // Record while still holding the write lock so commit-log
        // order equals store-version order — the property the
        // differential harness replays against.
        inner.commit_log.lock().push(CommitRecord {
            view: job.view.clone(),
            ops: ops.to_vec(),
            version_after,
            rows_matched: report.rows_matched,
            cells_changed: report.cells_changed,
        });
        (report, version_after, generation)
    };
    inner.metrics.commits.fetch_add(1, Ordering::SeqCst);
    finish(
        inner,
        job,
        Payload::Committed {
            rows_matched: report.rows_matched,
            cells_changed: report.cells_changed,
        },
        Served::Write,
        version_after,
        generation,
        stats.snapshot(),
    )
}

fn process_repair(inner: &Inner, job: &Job) -> Result<Response> {
    // Repairs carry an unbounded token (see Server::repair), so the
    // scope is installed for uniformity — and for the deadline-bypass
    // lint, which wants every IoScope paired with a BudgetScope.
    let _budget = BudgetScope::enter(job.token.clone());
    job.token.check().map_err(CoreError::from)?;
    let stats = Arc::new(IoStats::default());
    let (report, version, generation) = {
        let mut dbms = inner.dbms.lock();
        let _scope = IoScope::enter(Arc::clone(&stats));
        let report = dbms.repair_view(&job.view)?;
        (
            report,
            dbms.view_version(&job.view)?,
            dbms.view_summary_generation(&job.view)?,
        )
    };
    // Repair may reset the Summary-DB generation counter, which the
    // monotone cache key cannot express — purge the view outright.
    inner.cache.lock().purge_view(&job.view);
    inner.metrics.repairs.fetch_add(1, Ordering::SeqCst);
    finish(
        inner,
        job,
        Payload::Repaired {
            store_regenerated: report.store_regenerated,
            summary_reset: report.summary_reset,
        },
        Served::Write,
        version,
        generation,
        stats.snapshot(),
    )
}
