//! # sdbms-serve — the multi-analyst serving layer
//!
//! The 1982 framework paper's Figure-1 stack ends at a single analyst
//! session; this crate is the front door that lets *many* analysts
//! (and many paying tenants) share one [`sdbms_core::StatDbms`]:
//!
//! - **Request loop** ([`Server`]): a thread-pool event loop over a
//!   bounded queue — no new runtime dependencies. Reads run against
//!   per-session pinned [`sdbms_core::Snapshot`]s; writes take the
//!   engine's write lock and commit transactional batches.
//! - **Front result cache** ([`ResultCache`]): a TTL'd LRU *above*
//!   the per-view Summary DB, keyed by
//!   `(view, store version, summary generation, query)` so a commit
//!   invalidates by construction. Fallback (degraded-view) results
//!   are never admitted; repairs purge their view outright.
//! - **Admission control** ([`AdmissionController`]): per-tenant token
//!   buckets denominated in the storage layer's integer cost
//!   milli-units and debited with each request's *actual* metered
//!   I/O, with typed back-pressure ([`ServeError::Overloaded`],
//!   [`ServeError::QuotaExceeded`]) issued before any work happens.
//! - **Request lifecycle** ([`server::Server`] + [`breaker`] +
//!   [`brownout`]): every request carries a cooperative
//!   deadline/cancellation budget threaded down to the storage layer;
//!   per-view circuit breakers fast-fail compute against failing
//!   views; a tiered brownout controller sheds cold reads, then
//!   non-priority tenants, under sustained pressure. Load rejections
//!   carry computed `retry_after_ms` hints (DESIGN.md §16).
//! - **Deterministic traffic** ([`run_traffic`]): a closed-loop
//!   seeded-Zipfian analyst mix with occasional update batches, the
//!   workload behind the serving experiment and the differential /
//!   coherence / starvation test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod brownout;
pub mod cache;
pub mod error;
pub mod server;
pub mod traffic;

pub use admission::{default_cost_milli, AdmissionController, QuotaConfig, TenantUsage};
pub use breaker::{BreakerAdmit, BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use brownout::{should_shed, BrownoutConfig, BrownoutController, BrownoutStats, BrownoutTier};
pub use cache::{FrontCacheStats, QueryKey, ResultCache};
pub use error::{Result, ServeError};
pub use server::{
    CommitRecord, Payload, Query, Response, ServeConfig, Served, Server, ServerMetrics, SessionId,
};
pub use traffic::{
    census_query_universe, request_schedule, run_traffic, Outcome, Request, TrafficConfig,
    TrafficReport,
};
