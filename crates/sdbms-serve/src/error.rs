//! The serving layer's typed back-pressure contract.
//!
//! A request is refused *before* any work happens, with an error that
//! tells the client exactly what to do next:
//!
//! - [`ServeError::Overloaded`] — the bounded request queue is full.
//!   The server never queues without bound; retry after a backoff.
//! - [`ServeError::QuotaExceeded`] — this tenant's token bucket is
//!   empty. Other tenants are unaffected; retry after the bucket
//!   refills.
//! - [`ServeError::NoSuchSession`] / [`ServeError::ShuttingDown`] —
//!   client-side lifecycle mistakes; do not retry.
//!
//! Everything that goes wrong *inside* the engine surfaces unchanged
//! as [`ServeError::Core`].

use sdbms_core::CoreError;

use crate::server::SessionId;

/// Errors returned by [`crate::Server`] request methods.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue is full; the request was rejected at
    /// the door rather than queued without bound. Retry later.
    Overloaded {
        /// The queue's capacity (requests in flight + waiting).
        capacity: usize,
    },
    /// The tenant's token bucket is exhausted. The balance can be
    /// negative: a request is admitted on a positive balance and then
    /// charged its *actual* cost, which may overdraw the bucket.
    QuotaExceeded {
        /// The tenant whose bucket is empty.
        tenant: String,
        /// The bucket balance at rejection time, in cost milli-units.
        balance_milli: i64,
    },
    /// No open session with this id (never opened, or already closed).
    NoSuchSession(SessionId),
    /// The server is shutting down; no further requests are accepted.
    ShuttingDown,
    /// The engine itself failed; the inner error is unchanged.
    Core(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "request queue full ({capacity} slots); retry later")
            }
            ServeError::QuotaExceeded {
                tenant,
                balance_milli,
            } => write!(
                f,
                "tenant {tenant:?} is out of quota (balance {balance_milli} milli-units)"
            ),
            ServeError::NoSuchSession(id) => write!(f, "no open session {id}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded { capacity: 8 };
        assert!(e.to_string().contains("8 slots"));
        let e = ServeError::QuotaExceeded {
            tenant: "alice".into(),
            balance_milli: -250,
        };
        assert!(e.to_string().contains("alice"));
        assert!(e.to_string().contains("-250"));
        let e = ServeError::NoSuchSession(9);
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn core_errors_pass_through_with_source() {
        use std::error::Error;
        let e = ServeError::from(CoreError::NoSuchView("v".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("engine error"));
    }
}
