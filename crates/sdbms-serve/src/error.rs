//! The serving layer's typed back-pressure contract.
//!
//! A request is refused *before* any work happens, with an error that
//! tells the client exactly what to do next:
//!
//! - [`ServeError::Overloaded`] — the bounded request queue is full.
//!   The server never queues without bound; retry after the carried
//!   `retry_after_ms` hint.
//! - [`ServeError::QuotaExceeded`] — this tenant's token bucket is
//!   empty. Other tenants are unaffected; retry after the hint, which
//!   is computed from the bucket's refill rate.
//! - [`ServeError::Brownout`] — the server is shedding load in tiers;
//!   this request fell in the current tier's shed class.
//! - [`ServeError::BreakerOpen`] — the view's circuit breaker is
//!   fast-failing compute requests after consecutive failures.
//! - [`ServeError::DeadlineExceeded`] / [`ServeError::Cancelled`] —
//!   the request's own budget ran out (or its caller cancelled it)
//!   mid-execution. A cooperative stop: no partial result was
//!   produced, nothing was cached, storage state is intact.
//! - [`ServeError::NoSuchSession`] / [`ServeError::ShuttingDown`] —
//!   client-side lifecycle mistakes; do not retry.
//!
//! Everything that goes wrong *inside* the engine surfaces unchanged
//! as [`ServeError::Core`] — except the engine's own
//! `Cancelled`/`DeadlineExceeded`, which are lifted to the serving
//! variants so a client sees one shape however deep the trip happened.
//!
//! Every *load*-shaped rejection carries a **`retry_after_ms` hint**
//! ([`ServeError::retry_after_ms`]): an advisory backoff derived from
//! observed service times and queue/bucket state. Honoring it is
//! optional but converts tight client retry loops into paced ones —
//! the traffic generator's `honor_retry_hints` mode exercises exactly
//! that.

use sdbms_core::CoreError;
use sdbms_data::DataError;
use sdbms_summary::SummaryError;

use crate::server::SessionId;

/// Errors returned by [`crate::Server`] request methods.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue is full; the request was rejected at
    /// the door rather than queued without bound. Retry later.
    Overloaded {
        /// The queue's capacity (requests in flight + waiting).
        capacity: usize,
        /// Advisory backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's token bucket is exhausted. The balance can be
    /// negative: a request is admitted on a positive balance and then
    /// charged its *actual* cost, which may overdraw the bucket.
    QuotaExceeded {
        /// The tenant whose bucket is empty.
        tenant: String,
        /// The bucket balance at rejection time, in cost milli-units.
        balance_milli: i64,
        /// Advisory backoff until the refill goes positive, in
        /// milliseconds.
        retry_after_ms: u64,
    },
    /// The server is browning out: sustained queue pressure put it in
    /// a shedding tier and this request fell in the shed class (cold
    /// uncached read, or non-priority tenant at the higher tier).
    Brownout {
        /// The shedding tier (1 = cold reads, 2 = non-priority
        /// tenants).
        tier: u8,
        /// Advisory backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The view's circuit breaker is open after consecutive failures:
    /// the request fast-failed without touching the engine.
    BreakerOpen {
        /// The view whose breaker is open.
        view: String,
        /// Advisory backoff until the breaker half-opens, in
        /// milliseconds.
        retry_after_ms: u64,
    },
    /// The request ran out of its deadline budget mid-execution. No
    /// partial result was produced and nothing was cached; an
    /// in-flight commit aborted cleanly.
    DeadlineExceeded,
    /// The request's caller cancelled it mid-execution. Same
    /// guarantees as [`ServeError::DeadlineExceeded`].
    Cancelled,
    /// No open session with this id (never opened, or already closed).
    NoSuchSession(SessionId),
    /// The server is shutting down; no further requests are accepted.
    ShuttingDown,
    /// The engine itself failed; the inner error is unchanged.
    Core(CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "request queue full ({capacity} slots); retry in ~{retry_after_ms}ms"
                )
            }
            ServeError::QuotaExceeded {
                tenant,
                balance_milli,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant:?} is out of quota (balance {balance_milli} milli-units); \
                 retry in ~{retry_after_ms}ms"
            ),
            ServeError::Brownout {
                tier,
                retry_after_ms,
            } => write!(
                f,
                "shedding load (brownout tier {tier}); retry in ~{retry_after_ms}ms"
            ),
            ServeError::BreakerOpen {
                view,
                retry_after_ms,
            } => write!(
                f,
                "circuit breaker open for view {view:?}; retry in ~{retry_after_ms}ms"
            ),
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::NoSuchSession(id) => write!(f, "no open session {id}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl ServeError {
    /// The advisory backoff hint, for the load-shaped rejections
    /// (`Overloaded`, `QuotaExceeded`, `Brownout`, `BreakerOpen`);
    /// `None` for everything else — lifecycle mistakes and engine
    /// errors are not retryable-by-waiting.
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Overloaded { retry_after_ms, .. }
            | ServeError::QuotaExceeded { retry_after_ms, .. }
            | ServeError::Brownout { retry_after_ms, .. }
            | ServeError::BreakerOpen { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// True for the cooperative-stop errors — the request's own budget
    /// tripped, not the engine.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        matches!(self, ServeError::DeadlineExceeded | ServeError::Cancelled)
    }

    /// Does this error indict the *engine* (and so count against a
    /// view's circuit breaker)? Deadline trips do — the view's compute
    /// blew the budget. Storage faults anywhere in the error chain do.
    /// Client cancellations, client mistakes (bad attribute names),
    /// and the serving layer's own rejections do not.
    #[must_use]
    pub fn is_breaker_failure(&self) -> bool {
        match self {
            ServeError::DeadlineExceeded => true,
            ServeError::Core(e) => matches!(
                e,
                CoreError::Storage(_)
                    | CoreError::Data(DataError::Storage(_))
                    | CoreError::Summary(
                        SummaryError::Storage(_) | SummaryError::Data(DataError::Storage(_)),
                    )
            ),
            _ => false,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        // Budget trips are normalised at every layer boundary: a
        // client matching on the serving variants never needs to dig
        // through the Core wrapper.
        match e {
            CoreError::Cancelled => ServeError::Cancelled,
            CoreError::DeadlineExceeded => ServeError::DeadlineExceeded,
            other => ServeError::Core(other),
        }
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            capacity: 8,
            retry_after_ms: 3,
        };
        assert!(e.to_string().contains("8 slots"));
        assert!(e.to_string().contains("queue full"));
        let e = ServeError::QuotaExceeded {
            tenant: "alice".into(),
            balance_milli: -250,
            retry_after_ms: 12,
        };
        assert!(e.to_string().contains("alice"));
        assert!(e.to_string().contains("-250"));
        assert!(e.to_string().contains("out of quota"));
        let e = ServeError::NoSuchSession(9);
        assert!(e.to_string().contains('9'));
        let e = ServeError::Brownout {
            tier: 1,
            retry_after_ms: 2,
        };
        assert!(e.to_string().contains("brownout tier 1"));
        let e = ServeError::BreakerOpen {
            view: "v".into(),
            retry_after_ms: 7,
        };
        assert!(e.to_string().contains("circuit breaker open"));
    }

    #[test]
    fn core_errors_pass_through_with_source() {
        use std::error::Error;
        let e = ServeError::from(CoreError::NoSuchView("v".into()));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("engine error"));
    }

    #[test]
    fn budget_trips_are_lifted_out_of_the_core_wrapper() {
        assert!(matches!(
            ServeError::from(CoreError::Cancelled),
            ServeError::Cancelled
        ));
        assert!(matches!(
            ServeError::from(CoreError::DeadlineExceeded),
            ServeError::DeadlineExceeded
        ));
        assert!(ServeError::from(CoreError::Cancelled).is_budget());
    }

    #[test]
    fn retry_after_is_present_exactly_on_load_rejections() {
        assert_eq!(
            ServeError::Overloaded {
                capacity: 4,
                retry_after_ms: 9
            }
            .retry_after_ms(),
            Some(9)
        );
        assert_eq!(
            ServeError::BreakerOpen {
                view: "v".into(),
                retry_after_ms: 5
            }
            .retry_after_ms(),
            Some(5)
        );
        assert_eq!(ServeError::Cancelled.retry_after_ms(), None);
        assert_eq!(ServeError::ShuttingDown.retry_after_ms(), None);
        assert_eq!(
            ServeError::Core(CoreError::NoSuchView("v".into())).retry_after_ms(),
            None
        );
    }

    #[test]
    fn breaker_failure_predicate_separates_engine_faults_from_client_errors() {
        use sdbms_storage::StorageError;
        assert!(ServeError::DeadlineExceeded.is_breaker_failure());
        assert!(
            ServeError::Core(CoreError::Storage(StorageError::PoolExhausted)).is_breaker_failure()
        );
        assert!(!ServeError::Cancelled.is_breaker_failure());
        assert!(!ServeError::Core(CoreError::NoSuchView("v".into())).is_breaker_failure());
        assert!(!ServeError::BreakerOpen {
            view: "v".into(),
            retry_after_ms: 1
        }
        .is_breaker_failure());
    }
}
