//! Per-view circuit breakers for the serving layer.
//!
//! A view whose engine computes keep failing (deadline trips, storage
//! faults) stops being asked: after `failure_threshold` *consecutive*
//! failures the view's breaker opens and compute requests fast-fail
//! with a typed [`crate::ServeError::BreakerOpen`] carrying a
//! retry-after hint — the queue and workers stay free for views that
//! still answer. After `open_ticks` logical ticks the breaker moves to
//! half-open and admits `half_open_probes` probe requests: if they all
//! succeed the breaker closes; one failure re-opens it for another
//! full window.
//!
//! ```text
//!            failure × threshold                 open_ticks elapse
//!   Closed ───────────────────────► Open ───────────────────────► HalfOpen
//!     ▲                              ▲                               │
//!     │  probes × half_open_probes   │          any failure          │
//!     └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! Time is the server's **logical tick** (one per submitted request),
//! so every transition is deterministic and replayable — no wall
//! clock. What counts as a failure is the *server's* decision (see
//! `process_query`): deadline trips and engine faults do, client
//! cancellations and client mistakes (bad attribute names) do not, and
//! front-cache hits never touch the breaker at all — a hit proves
//! nothing about the engine, and closing a breaker on one would let an
//! unprobed engine back into rotation.

use std::collections::HashMap;

/// Breaker sizing. [`BreakerConfig::disabled`] (threshold 0) turns the
/// mechanism off entirely — every admit is `Allow`, nothing is
/// recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker; `0` disables it.
    pub failure_threshold: u32,
    /// Logical ticks an open breaker fast-fails before probing.
    pub open_ticks: u64,
    /// Successful probes required to close from half-open.
    pub half_open_probes: u32,
}

impl BreakerConfig {
    /// No breaker: every request is admitted, nothing is tracked.
    #[must_use]
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            open_ticks: 0,
            half_open_probes: 0,
        }
    }
}

impl Default for BreakerConfig {
    /// Disabled. The breaker changes which requests reach the engine,
    /// so turning it on is an explicit serving-policy decision
    /// (`ServeConfig::breaker`); the engine-correctness suites run
    /// without it.
    fn default() -> Self {
        BreakerConfig::disabled()
    }
}

/// A view's breaker state, for observability ([`crate::Server`]
/// exposes it per view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; tracks consecutive failures.
    Closed,
    /// Fast-failing until the reopen tick.
    Open,
    /// Admitting a limited number of probe requests.
    HalfOpen,
}

/// What the breaker says about one compute request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAdmit {
    /// Closed (or disabled): run it.
    Allow,
    /// Half-open: run it, and its outcome decides the breaker's fate.
    Probe,
    /// Open: do not run it; retry after this many logical ticks.
    FastFail {
        /// Ticks until the breaker will go half-open.
        retry_after_ticks: u64,
    },
}

/// Transition counters, folded into [`crate::ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed → Open transitions (threshold reached).
    pub opened: u64,
    /// HalfOpen → Open transitions (a probe failed).
    pub reopened: u64,
    /// HalfOpen → Closed transitions (probes succeeded).
    pub closed: u64,
    /// Requests fast-failed while open.
    pub fast_fails: u64,
    /// Probe requests admitted while half-open.
    pub probes: u64,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until_tick: u64 },
    HalfOpen { successes: u32 },
}

/// One breaker per view, keyed lazily on first sight.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    views: HashMap<String, State>,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A breaker bank applying `cfg` to every view.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            views: HashMap::new(),
            stats: BreakerStats::default(),
        }
    }

    fn enabled(&self) -> bool {
        self.cfg.failure_threshold > 0
    }

    fn state_mut(&mut self, view: &str) -> &mut State {
        self.views.entry(view.to_string()).or_insert(State::Closed {
            consecutive_failures: 0,
        })
    }

    /// Should a compute request against `view` run at logical time
    /// `now`? An open breaker whose window has elapsed transitions to
    /// half-open here and admits the caller as its first probe.
    pub fn admit(&mut self, view: &str, now: u64) -> BreakerAdmit {
        if !self.enabled() {
            return BreakerAdmit::Allow;
        }
        let st = self.state_mut(view);
        match *st {
            State::Closed { .. } => BreakerAdmit::Allow,
            State::Open { until_tick } if now >= until_tick => {
                *st = State::HalfOpen { successes: 0 };
                self.stats.probes += 1;
                BreakerAdmit::Probe
            }
            State::Open { until_tick } => {
                self.stats.fast_fails += 1;
                BreakerAdmit::FastFail {
                    retry_after_ticks: until_tick - now,
                }
            }
            State::HalfOpen { .. } => {
                self.stats.probes += 1;
                BreakerAdmit::Probe
            }
        }
    }

    /// Record a successful compute against `view`.
    pub fn record_success(&mut self, view: &str, _now: u64) {
        if !self.enabled() {
            return;
        }
        let probes_needed = self.cfg.half_open_probes;
        let st = self.state_mut(view);
        match st {
            State::Closed {
                consecutive_failures,
            } => *consecutive_failures = 0,
            State::HalfOpen { successes } => {
                *successes += 1;
                if *successes >= probes_needed.max(1) {
                    *st = State::Closed {
                        consecutive_failures: 0,
                    };
                    self.stats.closed += 1;
                }
            }
            // A success racing the transition to Open (another worker
            // tripped the threshold first) does not close the window:
            // the view just proved flaky.
            State::Open { .. } => {}
        }
    }

    /// Record a failed compute (deadline trip or engine fault) against
    /// `view` at logical time `now`.
    pub fn record_failure(&mut self, view: &str, now: u64) {
        if !self.enabled() {
            return;
        }
        let threshold = self.cfg.failure_threshold;
        let open_until = now.saturating_add(self.cfg.open_ticks.max(1));
        let st = self.state_mut(view);
        match st {
            State::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= threshold {
                    *st = State::Open {
                        until_tick: open_until,
                    };
                    self.stats.opened += 1;
                }
            }
            State::HalfOpen { .. } => {
                *st = State::Open {
                    until_tick: open_until,
                };
                self.stats.reopened += 1;
            }
            State::Open { .. } => {}
        }
    }

    /// The view's current state (Closed for a never-seen view).
    #[must_use]
    pub fn state(&self, view: &str) -> BreakerState {
        match self.views.get(view) {
            None | Some(State::Closed { .. }) => BreakerState::Closed,
            Some(State::Open { .. }) => BreakerState::Open,
            Some(State::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// Transition counters so far.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_ticks: 10,
            half_open_probes: 2,
        }
    }

    #[test]
    fn stays_closed_below_threshold_and_success_resets() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure("v", 0);
        b.record_failure("v", 1);
        assert_eq!(b.state("v"), BreakerState::Closed);
        b.record_success("v", 2); // resets the consecutive count
        b.record_failure("v", 3);
        b.record_failure("v", 4);
        assert_eq!(b.state("v"), BreakerState::Closed);
        assert_eq!(b.admit("v", 5), BreakerAdmit::Allow);
        assert_eq!(b.stats().opened, 0);
    }

    #[test]
    fn opens_on_consecutive_failures_and_fast_fails_with_hint() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure("v", t);
        }
        assert_eq!(b.state("v"), BreakerState::Open);
        assert_eq!(b.stats().opened, 1);
        // Opened at tick 2, window 10 → fast-fail until tick 12.
        assert_eq!(
            b.admit("v", 5),
            BreakerAdmit::FastFail {
                retry_after_ticks: 7
            }
        );
        assert_eq!(b.stats().fast_fails, 1);
    }

    #[test]
    fn half_open_after_window_then_closes_on_enough_probes() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure("v", t);
        }
        assert_eq!(b.admit("v", 12), BreakerAdmit::Probe);
        assert_eq!(b.state("v"), BreakerState::HalfOpen);
        b.record_success("v", 12);
        assert_eq!(b.state("v"), BreakerState::HalfOpen, "needs 2 probes");
        assert_eq!(b.admit("v", 13), BreakerAdmit::Probe);
        b.record_success("v", 13);
        assert_eq!(b.state("v"), BreakerState::Closed);
        assert_eq!(b.stats().closed, 1);
        assert_eq!(b.stats().probes, 2);
    }

    #[test]
    fn half_open_failure_reopens_for_a_full_window() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure("v", t);
        }
        assert_eq!(b.admit("v", 12), BreakerAdmit::Probe);
        b.record_failure("v", 12);
        assert_eq!(b.state("v"), BreakerState::Open);
        assert_eq!(b.stats().reopened, 1);
        assert_eq!(
            b.admit("v", 13),
            BreakerAdmit::FastFail {
                retry_after_ticks: 9
            }
        );
    }

    #[test]
    fn views_are_independent() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure("sick", t);
        }
        assert_eq!(b.state("sick"), BreakerState::Open);
        assert_eq!(b.state("well"), BreakerState::Closed);
        assert_eq!(b.admit("well", 4), BreakerAdmit::Allow);
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for t in 0..100 {
            b.record_failure("v", t);
        }
        assert_eq!(b.admit("v", 100), BreakerAdmit::Allow);
        assert_eq!(b.state("v"), BreakerState::Closed);
        assert_eq!(b.stats(), BreakerStats::default());
    }

    #[test]
    fn success_while_open_does_not_close_the_window() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure("v", t);
        }
        b.record_success("v", 5); // raced in after the open
        assert_eq!(b.state("v"), BreakerState::Open);
    }
}
