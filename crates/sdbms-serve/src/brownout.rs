//! Brownout load-shedding: tiered degradation under sustained queue
//! pressure.
//!
//! When the server's in-flight count (queued + executing requests)
//! climbs past configured watermarks, the door starts shedding the
//! *least valuable* work first instead of letting every request queue
//! until the hard [`crate::ServeError::Overloaded`] wall:
//!
//! | tier | entered at            | sheds                                   |
//! |------|-----------------------|-----------------------------------------|
//! | 0    | —                     | nothing (normal operation)               |
//! | 1    | `tier1_inflight`      | cold reads: queries unlikely to hit the  |
//! |      |                       | front cache, from non-priority tenants   |
//! | 2    | `tier2_inflight`      | everything from non-priority tenants     |
//! |      |                       | except likely front-cache hits           |
//!
//! Likely front-cache hits are **always admitted** in every tier —
//! they cost no engine work and keep well-behaved analysts productive
//! through the brownout. Priority tenants are never shed.
//!
//! Transitions have hysteresis: a tier entered at watermark *W* is
//! left only when the in-flight count falls to `W - hysteresis`, so
//! the controller cannot flap on every enqueue/dequeue. All state is
//! driven by the observed in-flight count — deterministic given a
//! request interleaving, no wall clock.

/// Brownout watermarks. [`Default`] disables shedding entirely
/// (watermarks at `usize::MAX`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// In-flight count that enters tier 1 (shed cold reads).
    pub tier1_inflight: usize,
    /// In-flight count that enters tier 2 (shed non-priority tenants).
    pub tier2_inflight: usize,
    /// How far below a tier's watermark the in-flight count must fall
    /// before the tier is left.
    pub hysteresis: usize,
}

impl BrownoutConfig {
    /// No shedding at any load.
    #[must_use]
    pub fn disabled() -> Self {
        BrownoutConfig {
            tier1_inflight: usize::MAX,
            tier2_inflight: usize::MAX,
            hysteresis: 0,
        }
    }
}

impl Default for BrownoutConfig {
    /// Disabled: shedding work is a serving-policy decision
    /// (`ServeConfig::brownout`), never a silent default.
    fn default() -> Self {
        BrownoutConfig::disabled()
    }
}

/// The controller's current degradation tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BrownoutTier {
    /// Admit everything (modulo quota and queue bounds).
    Normal,
    /// Shed cold uncached reads from non-priority tenants.
    SheddingCold,
    /// Shed all non-priority work except likely front-cache hits.
    SheddingTenants,
}

/// Shed counters, folded into [`crate::ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrownoutStats {
    /// Requests shed at tier 1 (cold uncached reads).
    pub shed_cold: u64,
    /// Requests shed at tier 2 (non-priority tenants).
    pub shed_tenant: u64,
    /// Normal → tier-1 (or higher) transitions.
    pub entered: u64,
    /// Transitions back to Normal.
    pub recovered: u64,
}

/// The watermark-with-hysteresis state machine. One per server, fed
/// the in-flight count at every admission decision.
#[derive(Debug)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    tier: BrownoutTier,
    stats: BrownoutStats,
}

impl BrownoutController {
    /// A controller applying `cfg`.
    #[must_use]
    pub fn new(cfg: BrownoutConfig) -> Self {
        BrownoutController {
            cfg,
            tier: BrownoutTier::Normal,
            stats: BrownoutStats::default(),
        }
    }

    /// Feed the current in-flight count; returns the tier that governs
    /// this admission decision. Upgrades happen at the watermarks,
    /// downgrades only `hysteresis` below them.
    pub fn observe(&mut self, in_flight: usize) -> BrownoutTier {
        let was = self.tier;
        let exit1 = self.cfg.tier1_inflight.saturating_sub(self.cfg.hysteresis);
        let exit2 = self.cfg.tier2_inflight.saturating_sub(self.cfg.hysteresis);
        self.tier = match self.tier {
            BrownoutTier::Normal if in_flight >= self.cfg.tier2_inflight => {
                BrownoutTier::SheddingTenants
            }
            BrownoutTier::Normal if in_flight >= self.cfg.tier1_inflight => {
                BrownoutTier::SheddingCold
            }
            BrownoutTier::SheddingCold if in_flight >= self.cfg.tier2_inflight => {
                BrownoutTier::SheddingTenants
            }
            BrownoutTier::SheddingCold if in_flight < exit1 => BrownoutTier::Normal,
            BrownoutTier::SheddingTenants if in_flight < exit1 => BrownoutTier::Normal,
            BrownoutTier::SheddingTenants if in_flight < exit2 => BrownoutTier::SheddingCold,
            t => t,
        };
        if was == BrownoutTier::Normal && self.tier > BrownoutTier::Normal {
            self.stats.entered += 1;
        }
        if was > BrownoutTier::Normal && self.tier == BrownoutTier::Normal {
            self.stats.recovered += 1;
        }
        self.tier
    }

    /// Count one shed decision made under the current tier.
    pub fn count_shed(&mut self, tier: BrownoutTier) {
        match tier {
            BrownoutTier::Normal => {}
            BrownoutTier::SheddingCold => self.stats.shed_cold += 1,
            BrownoutTier::SheddingTenants => self.stats.shed_tenant += 1,
        }
    }

    /// The tier as of the last observation.
    #[must_use]
    pub fn tier(&self) -> BrownoutTier {
        self.tier
    }

    /// Shed and transition counters so far.
    #[must_use]
    pub fn stats(&self) -> BrownoutStats {
        self.stats
    }
}

/// The per-request shed decision, pure so it can be unit-tested
/// exhaustively: given the governing tier, whether the tenant is
/// priority, whether the request is a read query, and whether that
/// query is likely already in the front cache — shed it?
#[must_use]
pub fn should_shed(
    tier: BrownoutTier,
    priority_tenant: bool,
    is_query: bool,
    likely_cached: bool,
) -> bool {
    if priority_tenant || (is_query && likely_cached) {
        return false;
    }
    match tier {
        BrownoutTier::Normal => false,
        // Tier 1 sheds only cold reads; writes still land (they carry
        // analyst state the read path cannot reconstruct).
        BrownoutTier::SheddingCold => is_query,
        BrownoutTier::SheddingTenants => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BrownoutConfig {
        BrownoutConfig {
            tier1_inflight: 10,
            tier2_inflight: 20,
            hysteresis: 4,
        }
    }

    #[test]
    fn disabled_never_leaves_normal() {
        let mut c = BrownoutController::new(BrownoutConfig::disabled());
        assert_eq!(c.observe(usize::MAX - 1), BrownoutTier::Normal);
        assert_eq!(c.stats().entered, 0);
    }

    #[test]
    fn tiers_enter_at_watermarks_and_exit_with_hysteresis() {
        let mut c = BrownoutController::new(cfg());
        assert_eq!(c.observe(9), BrownoutTier::Normal);
        assert_eq!(c.observe(10), BrownoutTier::SheddingCold);
        // Dropping just below the watermark is NOT enough to exit.
        assert_eq!(c.observe(8), BrownoutTier::SheddingCold);
        assert_eq!(c.observe(6), BrownoutTier::SheddingCold, "10-4=6 still in");
        assert_eq!(c.observe(5), BrownoutTier::Normal);
        assert_eq!(c.stats().entered, 1);
        assert_eq!(c.stats().recovered, 1);
    }

    #[test]
    fn tier2_escalates_and_de_escalates_stepwise() {
        let mut c = BrownoutController::new(cfg());
        assert_eq!(c.observe(12), BrownoutTier::SheddingCold);
        assert_eq!(c.observe(20), BrownoutTier::SheddingTenants);
        assert_eq!(c.observe(17), BrownoutTier::SheddingTenants, "20-4=16");
        assert_eq!(c.observe(15), BrownoutTier::SheddingCold);
        assert_eq!(c.observe(5), BrownoutTier::Normal);
    }

    #[test]
    fn normal_jumps_straight_to_tier2_under_a_spike() {
        let mut c = BrownoutController::new(cfg());
        assert_eq!(c.observe(25), BrownoutTier::SheddingTenants);
        assert_eq!(c.stats().entered, 1);
    }

    #[test]
    fn shed_decision_table() {
        use BrownoutTier::*;
        // Normal sheds nothing.
        assert!(!should_shed(Normal, false, true, false));
        // Tier 1: cold reads shed, cached reads and writes admitted.
        assert!(should_shed(SheddingCold, false, true, false));
        assert!(!should_shed(SheddingCold, false, true, true));
        assert!(!should_shed(SheddingCold, false, false, false));
        // Tier 2: everything non-priority except cached reads.
        assert!(should_shed(SheddingTenants, false, true, false));
        assert!(should_shed(SheddingTenants, false, false, false));
        assert!(!should_shed(SheddingTenants, false, true, true));
        // Priority tenants are never shed at any tier.
        assert!(!should_shed(SheddingTenants, true, true, false));
        assert!(!should_shed(SheddingCold, true, true, false));
    }

    #[test]
    fn count_shed_routes_to_the_right_counter() {
        let mut c = BrownoutController::new(cfg());
        c.count_shed(BrownoutTier::SheddingCold);
        c.count_shed(BrownoutTier::SheddingTenants);
        c.count_shed(BrownoutTier::SheddingTenants);
        assert_eq!(c.stats().shed_cold, 1);
        assert_eq!(c.stats().shed_tenant, 2);
    }
}
