//! # sdbms — a statistical database management system
//!
//! A full implementation of the architecture proposed in *"A Framework
//! for Research in Database Management for Statistical Analysis"*
//! (Boral, DeWitt, Bates — University of Wisconsin–Madison, 1982):
//! per-analyst **concrete views** materialized from a raw database on
//! slow archive storage, a per-view **Summary Database** that caches
//! statistical function results and maintains them incrementally under
//! updates, and a single **Management Database** holding view lineage,
//! update histories (undo/rollback/publishing), and maintenance rules —
//! all over transposed-file or row-file storage with exact I/O
//! accounting.
//!
//! ## Quick start
//!
//! ```
//! use sdbms::core::{paper_demo_dbms, AccuracyPolicy, StatFunction, ViewDefinition};
//!
//! // A DBMS pre-loaded with the paper's Figure 1 data set.
//! let mut dbms = paper_demo_dbms(256).unwrap();
//!
//! // Materialize a concrete view from the raw database (tape).
//! dbms.materialize(ViewDefinition::scan("census", "figure1"), "analyst")
//!     .unwrap();
//!
//! // First median: computed and cached in the Summary Database.
//! let (median, _) = dbms
//!     .compute("census", "AVE_SALARY", &StatFunction::Median, AccuracyPolicy::Exact)
//!     .unwrap();
//! // The true median of Figure 1's AVE_SALARY column. (The paper's
//! // Figure 4 prints 29,933, which is not the median of its own
//! // Figure 1 data — see EXPERIMENTS.md, experiment F4.)
//! assert_eq!(median.as_scalar(), Some(29_402.0));
//!
//! // Second median: a cache hit — no data access.
//! let (_, source) = dbms
//!     .compute("census", "AVE_SALARY", &StatFunction::Median, AccuracyPolicy::Exact)
//!     .unwrap();
//! assert_eq!(source, sdbms::core::ComputeSource::Cache);
//! ```
//!
//! ## Crate map
//!
//! | Module | Implements |
//! |---|---|
//! | [`storage`] | WiSS-style substrate: simulated disk, buffer pool, heap files, B+trees, tape archive |
//! | [`data`] | values / schemas / flat files / code books / census generators / metadata graph / raw DB |
//! | [`columnar`] | transposed files (§2.6), RLE & dictionary compression, row-store baseline |
//! | [`relational`] | select/project/join/aggregate + predicates and view-definition lineage |
//! | [`stats`] | the statistical functions: descriptive, quantiles, histograms, tests, regression, sampling |
//! | [`summary`] | the Summary Database (§3.2) with incremental maintenance and the §4.2 median window |
//! | [`management`] | the Management Database: catalog, histories/undo, rules, finite differencing |
//! | [`repair`] | self-healing: health registry, scrub cursors, corruption triage ladder |
//! | [`txn`] | multi-analyst concurrency: epoch registry/pins for snapshot reclamation, the per-view lock table |
//! | [`core`] | the DBMS façade tying it all together (paper Figure 3) |
//! | [`serve`] | the serving layer: thread-pool request loop, front result cache, per-tenant admission control |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sdbms_columnar as columnar;
pub use sdbms_core as core;
pub use sdbms_data as data;
pub use sdbms_exec as exec;
pub use sdbms_management as management;
pub use sdbms_relational as relational;
pub use sdbms_repair as repair;
pub use sdbms_serve as serve;
pub use sdbms_stats as stats;
pub use sdbms_storage as storage;
pub use sdbms_summary as summary;
pub use sdbms_txn as txn;
