//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this tiny shim
//! provides the subset of `parking_lot` the workspace uses: a [`Mutex`]
//! and [`RwLock`] with the *non-poisoning* semantics of the real crate
//! (a panic while holding the lock does not poison it for later users).

use std::sync;

/// A mutex that, like `parking_lot::Mutex`, never poisons: if a thread
/// panics while holding the lock, later lockers simply see the data as
/// it was left.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with non-poisoning semantics.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die while holding");
        })
        .join();
        // A poisoned std mutex would panic here; parking_lot semantics
        // recover the guard.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
