//! Offline stand-in for the `rand` crate.
//!
//! Provides deterministic xoshiro256**-based generators behind the
//! subset of the `rand` 0.8 API this workspace uses: `StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and the `Rng` extension
//! methods `gen`, `gen_range`, and `gen_bool`. Not cryptographically
//! secure — it exists so simulations and benchmarks run without
//! network access to crates.io.

use std::ops::{Bound, RangeBounds};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over a range (the `SampleUniform`
/// family of real `rand`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`hi` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor of `v`, for converting inclusive upper bounds.
    fn successor(v: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Rejection sampling for an unbiased draw.
                let zone = u128::from(u64::MAX) + 1;
                let limit = zone - zone % span;
                loop {
                    let raw = u128::from(rng.next_u64());
                    if raw < limit {
                        return (lo as i128 + (raw % span) as i128) as $t;
                    }
                }
            }
            fn successor(v: Self) -> Self {
                v.checked_add(1).expect("gen_range: inclusive bound at type max")
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let span = u128::from(hi - lo);
        let zone = u128::from(u64::MAX) + 1;
        let limit = zone - zone % span;
        loop {
            let raw = u128::from(rng.next_u64());
            if raw < limit {
                return lo + (raw % span) as u64;
            }
        }
    }
    fn successor(v: Self) -> Self {
        v.checked_add(1)
            .expect("gen_range: inclusive bound at type max")
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn successor(v: Self) -> Self {
        v
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => T::successor(v),
            Bound::Unbounded => panic!("gen_range: unbounded start"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => T::successor(v),
            Bound::Excluded(&v) => v,
            Bound::Unbounded => panic!("gen_range: unbounded end"),
        };
        T::sample_range(self, lo, hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_hi = false;
        for _ in 0..200 {
            let v = rng.gen_range(0..5);
            assert!((0..5).contains(&v));
            let w = rng.gen_range(0..=3);
            assert!((0..=3).contains(&w));
            seen_hi |= w == 3;
            let u: usize = rng.gen_range(0..10usize);
            assert!(u < 10);
        }
        assert!(seen_hi, "inclusive upper bound must be reachable");
    }

    #[test]
    fn float_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn negative_int_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let v: i64 = rng.gen_range(-500i64..500);
            assert!((-500..500).contains(&v));
        }
    }
}
