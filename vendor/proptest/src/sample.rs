//! Sampling helpers (`Index`).

/// An index into a not-yet-known-length collection: store raw entropy,
/// scale it when the length is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    pub(crate) fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Project onto `[0, len)`.
    ///
    /// # Panics
    /// Panics if `len == 0` (as in real proptest).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}
