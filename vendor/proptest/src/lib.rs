//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim supplies
//! the subset of proptest this workspace uses: the [`proptest!`] macro
//! (both `name: type` and `pattern in strategy` argument forms, with an
//! optional `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, numeric range strategies, tuple
//! strategies, a character-class string strategy (`"[a-z]{0,8}"`),
//! [`collection::vec`], [`sample::Index`], and `any::<T>()`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG (seeded by test name), there is **no
//! shrinking** (failures report the case number and message only), and
//! `.proptest-regressions` files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import: strategies, config, macros, and the
/// `prop` alias for the crate root.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a proptest body; failure fails only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two expressions are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Assert two expressions differ inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests. Supports the two argument forms real proptest
/// accepts (`name: Type` via [`arbitrary::Arbitrary`], and
/// `pattern in strategy`), with an optional
/// `#![proptest_config(expr)]` first token.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rejected: u32 = 0;
            let mut __case: u64 = 0;
            let mut __ran: u32 = 0;
            while __ran < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                __case += 1;
                $crate::__proptest_bind!(__rng; $($args)*);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __ran += 1; }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        __rejected += 1;
                        if __rejected > __config.cases * 16 + 256 {
                            panic!(
                                "proptest {}: too many rejected cases ({})",
                                stringify!($name), __rejected
                            );
                        }
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}:\n{}",
                            stringify!($name), __case - 1, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat_param in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat_param in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_args_generate(a: i64, b: bool, c: u8) {
            // Touch every binding; ranges of the types are unconstrained.
            let _ = (a, b, c);
            prop_assert!(u16::from(c) <= 255);
        }

        #[test]
        fn range_strategies_respect_bounds(
            x in -50i64..50,
            y in 0.0f64..1.0,
            n in 1usize..10
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            items in prop::collection::vec((any::<u16>(), 0i64..5), 2..20)
        ) {
            prop_assert!(items.len() >= 2 && items.len() < 20);
            for (_, v) in items {
                prop_assert!((0..5).contains(&v));
            }
        }

        #[test]
        fn string_class_strategy(s in "[a-z]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn index_scales(idx in any::<prop::sample::Index>()) {
            let i = idx.index(7);
            prop_assert!(i < 7);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0i64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x", 3);
        let mut b = crate::test_runner::TestRng::deterministic("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
