//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Permitted lengths for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `vec(element, 0..100)`: a vector whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
