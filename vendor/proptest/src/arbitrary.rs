//! The [`Arbitrary`] trait and `any::<T>()`.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical unconstrained generator.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as i128
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix plain uniform values with raw-bit reinterpretations so
        // subnormals, infinities, and NaN all appear (callers guard
        // with prop_assume! as with real proptest).
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.unit_f64() - 0.5) * 2e18,
            _ => (rng.unit_f64() - 0.5) * 2e3,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.next_u64() % 4 {
            0 => f32::from_bits(rng.next_u64() as u32),
            1 => ((rng.unit_f64() - 0.5) * 2e9) as f32,
            _ => ((rng.unit_f64() - 0.5) * 2e3) as f32,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.next_u64() % 8 == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or('?')
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u16>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
