//! Deterministic case generation and configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades a little
        // coverage for test-suite latency.
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject(String),
    /// An assertion failed: the property is falsified.
    Fail(String),
}

/// The per-case generator: xoshiro256** seeded from (test name, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed deterministically from a test identifier and case number.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix(&mut state);
        }
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection sampling for an unbiased draw.
        let limit = u64::MAX - u64::MAX % n;
        loop {
            let raw = self.next_u64();
            if raw < limit {
                return raw % n;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
