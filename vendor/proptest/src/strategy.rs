//! The [`Strategy`] trait and the built-in strategies the workspace
//! uses: numeric ranges, tuples, and character-class string literals.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest, strategies here produce plain values (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- numeric ranges -------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = if span > u128::from(u64::MAX) {
                    // i128 span wider than 64 bits: compose two draws.
                    let hi = u128::from(rng.next_u64());
                    let lo = u128::from(rng.next_u64());
                    ((hi << 64) | lo) % span
                } else {
                    u128::from(rng.below(span as u64))
                };
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = if span > u128::from(u64::MAX) {
                    let h = u128::from(rng.next_u64());
                    let l = u128::from(rng.next_u64());
                    ((h << 64) | l) % span
                } else {
                    u128::from(rng.below(span as u64))
                };
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- constant -------------------------------------------------------------

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---- string-literal regex subset ------------------------------------------

/// A `&'static str` strategy interpreting a subset of regex syntax:
/// concatenations of literal characters and character classes
/// (`[a-z0-9 ]`), each optionally quantified with `{n}`, `{m,n}`, `?`,
/// `*` (max 8), or `+` (max 8).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min_reps
                + if atom.max_reps > atom.min_reps {
                    rng.below((atom.max_reps - atom.min_reps + 1) as u64) as usize
                } else {
                    0
                };
            for _ in 0..n {
                let choices = &atom.chars;
                let c = choices[rng.below(choices.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pat.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in it.by_ref() {
                    match d {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Mark a pending range with a sentinel.
                            set.push('\u{0}');
                        }
                        d => {
                            if set.last() == Some(&'\u{0}') {
                                set.pop();
                                let lo = prev.expect("range start");
                                for u in (lo as u32 + 1)..=(d as u32) {
                                    if let Some(ch) = char::from_u32(u) {
                                        set.push(ch);
                                    }
                                }
                            } else {
                                set.push(d);
                            }
                            prev = Some(d);
                        }
                    }
                }
                if set.is_empty() {
                    set.push('?');
                }
                set
            }
            '\\' => vec![it.next().unwrap_or('\\')],
            c => vec![c],
        };
        // Optional quantifier.
        let (min_reps, max_reps) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push(Atom {
            chars,
            min_reps,
            max_reps,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests", 0)
    }

    #[test]
    fn int_range_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (-5i64..5).new_value(&mut r);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn pattern_class_with_ranges() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-cx]{2,4}".new_value(&mut r);
            assert!(s.len() >= 2 && s.len() <= 4);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')));
        }
    }

    #[test]
    fn literal_prefix_pattern() {
        let mut r = rng();
        let s = "ab[01]".new_value(&mut r);
        assert!(s == "ab0" || s == "ab1");
    }
}
