//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim supplies
//! the slice of criterion's API the workspace benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! `Bencher::iter`). It runs each closure a small, fixed number of
//! timed iterations and prints mean wall time — enough to compare
//! alternatives by eye, with none of criterion's statistics.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to bench closures; `iter` times the provided routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; only the routine
    /// is timed, matching criterion's `iter_batched`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Input-allocation strategy for [`Bencher::iter_batched`] (accepted
/// and ignored by this shim — every iteration gets a fresh input).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A named collection of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-case iteration count (criterion's sample size knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Criterion API surface; this shim ignores throughput settings.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iterations > 0 {
            b.elapsed / (b.iterations as u32)
        } else {
            Duration::ZERO
        };
        println!(
            "bench {:<50} {:>12.3?}/iter ({} iters)",
            format!("{}/{}", self.name, id),
            per_iter,
            b.iterations
        );
        self.criterion.benches_run += 1;
    }

    /// Run one named case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Run one parameterized case.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Throughput declaration (accepted and ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
pub struct Criterion {
    benches_run: usize,
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            benches_run: 0,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run one stand-alone case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("base", f);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
